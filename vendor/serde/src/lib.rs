//! Offline drop-in subset of the `serde` API.
//!
//! The real serde is a zero-copy serialization *framework*; the
//! workspace only ever moves data through JSON (`serde_json`), so this
//! vendored stand-in collapses the data model to one tree type,
//! [`Value`]. [`Serialize`] renders into a `Value`, [`Deserialize`]
//! reads back out of one, and the derive macros (feature `derive`,
//! crate `serde_derive`) generate both impls with the upstream JSON
//! encoding conventions: structs as objects, newtype/`transparent`
//! structs as their inner value, unit enum variants as strings, and
//! data-carrying variants as single-key objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serialization tree: exactly the JSON data model.
///
/// Objects preserve insertion order so serialized output is a pure
/// function of the value (the determinism tests compare bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number (non-finite values serialize as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object field by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An arbitrary-message error.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError {
            message: format!(
                "expected {what} while deserializing {context}, found {}",
                found.kind()
            ),
        }
    }

    /// A required field was absent.
    pub fn missing(field: &str, context: &str) -> DeError {
        DeError {
            message: format!("missing field `{field}` while deserializing {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Render into the serialization tree.
pub trait Serialize {
    /// Build the [`Value`] representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild from the serialization tree.
pub trait Deserialize: Sized {
    /// Read `self` back out of a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Hook for absent object fields: errors for every type except
    /// `Option`, which treats a missing field as `None`.
    fn missing_field(field: &str, context: &str) -> Result<Self, DeError> {
        Err(DeError::missing(field, context))
    }
}

/// Deserialize a struct field: present → [`Deserialize::from_value`],
/// absent → [`Deserialize::missing_field`]. The derive macros call
/// this so field types drive the behavior by inference.
pub fn from_field<T: Deserialize>(
    entries: &[(String, Value)],
    field: &str,
    context: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v),
        None => T::missing_field(field, context),
    }
}

// ---- primitive impls ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let raw = match *value {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t), value)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let raw: i64 = match *value {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))?,
                    _ => return Err(DeError::expected("integer", stringify!($t), value)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, DeError> {
        match *value {
            Value::Float(x) => Ok(x),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            // Non-finite floats serialize as null (the JSON convention
            // serde_json uses); read them back as NaN.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", "bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char", value)),
        }
    }
}

// ---- container impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str, _context: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec", value)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<($($t,)+), DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", value))?;
                let expected = [$( $n, )+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap", value)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, like maps feeding hashers.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integers_cross_convert() {
        assert_eq!(f64::from_value(&Value::UInt(3)), Ok(3.0));
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(i64::from_value(&Value::UInt(5)), Ok(5));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let val = v.to_value();
        assert_eq!(Vec::<(u32, f64)>::from_value(&val), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::UInt(1)), Ok(Some(1)));
    }

    #[test]
    fn missing_fields_default_only_for_option() {
        let entries: Vec<(String, Value)> = vec![];
        assert!(from_field::<u32>(&entries, "x", "T").is_err());
        assert_eq!(from_field::<Option<u32>>(&entries, "x", "T"), Ok(None));
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get_field("b"), None);
        assert_eq!(v.kind(), "object");
    }
}
