//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The workspace pins its random-number dependency to this vendored
//! implementation through `[patch.crates-io]` so builds succeed with
//! no registry access (see `vendor/README.md`). Only the surface the
//! workspace actually uses is provided: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] /
//! [`Rng::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ with SplitMix64 seeding — not the
//! same stream as upstream `StdRng` (ChaCha12), which upstream
//! explicitly documents as a non-portable implementation detail.
//! Everything in the workspace derives determinism from explicit
//! seeds, so the only requirement is that the stream is fixed, which
//! it is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type: `f64`/`f32`
    /// in `[0, 1)`, integers over their full range, fair `bool`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a `bool` that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `hi > lo` is the caller's
    /// responsibility.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `hi >= lo` is the caller's
    /// responsibility.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draw a uniform value in `[0, span)` by rejection from the top of
/// the 64-bit range, so every value is exactly equally likely.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` not exceeding 2^64.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v < hi {
            v
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64::midpoint(lo, hi)
        }
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(rng, lo, hi)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ (Blackman & Vigna), SplitMix64-seeded.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The full xoshiro256++ state, for checkpointing. Restoring
        /// via [`StdRng::from_state`] continues the sequence exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(crate::uniform_u64_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs, (0..32).map(|_| c.random::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[r.random_range(3..=6usize) - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice unchanged"
        );
    }

    #[test]
    fn choose_and_bool() {
        let mut r = StdRng::seed_from_u64(5);
        assert!([1, 2, 3].choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let heads = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2700..3300).contains(&heads), "heads {heads}");
    }
}
