//! Offline drop-in subset of the `proptest` API.
//!
//! Property tests here are plain randomized tests: a [`Strategy`]
//! produces values from a deterministic per-case RNG, the body runs,
//! and `prop_assert*` failures abort the case with the case index and
//! seed in the panic message. There is **no shrinking** — a failing
//! case reports the seed so it can be replayed, but is not minimized.
//! Case counts come from [`ProptestConfig`] (default 256, or the
//! `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    assert!(self.start < self.end, "empty range strategy");
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            use rand::Rng;
            // Finite full-ish range; NaN/inf would make most property
            // bodies vacuously fail for uninteresting reasons.
            rng.random_range(-1e12..1e12)
        }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.random_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set, so bound the attempts in
            // case the element domain is smaller than the target.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A set of values from `element` with size (up to domain
    /// exhaustion) in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The per-test driver behind the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Fixed base seed: runs are deterministic; a failing case's seed
    /// is printed for replay.
    const BASE_SEED: u64 = 0x9E3779B97F4A7C15;

    /// Run `body` for each case with a per-case deterministic RNG.
    pub fn run(config: ProptestConfig, mut body: impl FnMut(&mut TestRng) -> Result<(), String>) {
        for case in 0..config.cases {
            let seed = BASE_SEED.wrapping_add(u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F));
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(msg) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{} failed (seed {seed:#x}): {msg}",
                    config.cases
                );
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __strategies = ($($strat,)+);
            $crate::test_runner::run($cfg, |__rng| {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, __rng);
                let __res: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                __res
            });
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}
