//! Offline drop-in subset of the `criterion` API.
//!
//! Implements the builder + `criterion_group!`/`criterion_main!`
//! surface the workspace benches use, with a simple measurement loop:
//! per sample, run the closure in a timed batch sized from the warm-up
//! phase, and report min / median / max per-iteration time. No HTML
//! reports, no statistical regression analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver; one per group run.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Set the warm-up time before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark: warm up, estimate iteration cost, then take
    /// timed samples and print a summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: repeatedly run until the warm-up budget elapses,
        // which also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = if warm_iters > 0 {
            warm_start.elapsed().as_secs_f64() / warm_iters as f64
        } else {
            1e-9
        };

        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            format_time(samples[0]),
            format_time(median),
            format_time(*samples.last().unwrap()),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

/// Timing handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group, in either the `name =`/`config =`/
/// `targets =` form or the plain list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Define the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
