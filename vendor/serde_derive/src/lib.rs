//! Offline drop-in subset of the `serde_derive` macros.
//!
//! The real derive rests on `syn`/`quote`; neither is available
//! offline, so this walks the raw [`proc_macro::TokenTree`] stream
//! (item attributes → `struct`/`enum` keyword → name → body) and
//! renders the generated impl as source text parsed back through
//! [`std::str::FromStr`]. Field *types* are never parsed: generated
//! code leans on inference (`serde::from_field(..)?` in struct-literal
//! position), which is what lets the parser stay this small.
//!
//! Supported shapes — the full set used in this workspace:
//! named structs, tuple structs (single-field ones and
//! `#[serde(transparent)]` serialize as the inner value, like
//! upstream), unit structs, and enums with unit / tuple / struct
//! variants using upstream serde_json's "externally tagged" encoding.
//! Field attribute `#[serde(skip)]` omits a field on serialize and
//! fills it from `Default::default()` on deserialize. Named-struct
//! fields also support `#[serde(skip_serializing_if = "path")]`: the
//! entry is omitted when `path(&self.field)` is true, and an absent
//! key deserializes to `Default::default()`. Generic types are not
//! supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => serialize_named_struct(&item, fields),
        Shape::TupleStruct(n) => serialize_tuple_struct(&item, *n),
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => serialize_enum(variants),
    };
    let src = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}",
        name = item.name
    );
    src.parse().unwrap()
}

/// Derive `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => deserialize_named_struct(&item, fields),
        Shape::TupleStruct(n) => deserialize_tuple_struct(&item, *n),
        Shape::UnitStruct => format!("let _ = value; Ok({name})"),
        Shape::Enum(variants) => deserialize_enum(&item, variants),
    };
    let src = format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> Result<{name}, serde::DeError> {{\n{body}\n}}\n}}"
    );
    src.parse().unwrap()
}

// ---- item model ----

struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    /// Predicate path from `skip_serializing_if = "path"`: the entry
    /// is omitted when `path(&self.field)` holds, and deserialization
    /// treats a missing key as `Default::default()`.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes: `#` followed by a bracket group. Record
    // `#[serde(transparent)]`, skip everything else (doc comments...).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if serde_attr_contains(g.stream(), "transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde_derive (vendored): expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive (vendored): expected type name, found {other}"),
    };
    i += 1;

    let shape = match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive (vendored): generic types are not supported ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g.stream()))
            } else {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => Shape::UnitStruct,
        other => panic!("serde_derive (vendored): unsupported item body for {name}: {other:?}"),
    };

    Item {
        name,
        transparent,
        shape,
    }
}

/// Does a `[serde(...)]` attribute group body mention `word`?
fn serde_attr_contains(attr_body: TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

/// Value of a `key = "literal"` entry in a `[serde(...)]` attribute
/// group body, with the surrounding quotes stripped.
fn serde_attr_value(attr_body: TokenStream, key: &str) -> Option<String> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            for (i, t) in args.iter().enumerate() {
                let is_key = matches!(t, TokenTree::Ident(w) if w.to_string() == key);
                if !is_key {
                    continue;
                }
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (args.get(i + 1), args.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        return Some(lit.to_string().trim_matches('"').to_string());
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Parse `{ attrs vis name: Type, ... }` keeping names + skip flags.
/// Types are skipped by tracking `<`/`>` angle depth so commas inside
/// `BTreeMap<K, V>` don't end the field early (function-pointer types
/// with `->` are not supported).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut skip_if = None;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(path) = serde_attr_value(g.stream(), "skip_serializing_if") {
                            skip_if = Some(path);
                        } else if serde_attr_contains(g.stream(), "skip") {
                            skip = true;
                        }
                    }
                    i += 2;
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive (vendored): expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive (vendored): expected `:` after field name, found {other}")
            }
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            skip_if,
        });
    }
    fields
}

/// Count fields of a tuple struct / tuple variant: top-level commas
/// (outside `<>`) + 1, or 0 for an empty body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (doc comments).
        while let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive (vendored): expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant is unsupported; expect `,` or end.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde_derive (vendored): unexpected token after variant: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- code generation: Serialize ----

fn serialize_named_struct(item: &Item, fields: &[Field]) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    if item.transparent {
        assert_eq!(
            live.len(),
            1,
            "serde_derive (vendored): transparent struct {} must have exactly one unskipped field",
            item.name
        );
        return format!("serde::Serialize::to_value(&self.{})", live[0].name);
    }
    if live.iter().any(|f| f.skip_if.is_some()) {
        // Conditional entries force the imperative form; the common
        // all-unconditional case keeps the original static vec.
        let mut stmts =
            vec!["let mut entries: Vec<(String, serde::Value)> = Vec::new();".to_string()];
        for f in &live {
            let push = format!(
                "entries.push(({:?}.to_string(), serde::Serialize::to_value(&self.{})));",
                f.name, f.name
            );
            match &f.skip_if {
                Some(path) => stmts.push(format!("if !{path}(&self.{}) {{ {push} }}", f.name)),
                None => stmts.push(push),
            }
        }
        stmts.push("serde::Value::Object(entries)".to_string());
        return format!("{{\n{}\n}}", stmts.join("\n"));
    }
    let entries: Vec<String> = live
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), serde::Serialize::to_value(&self.{}))",
                f.name, f.name
            )
        })
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

fn serialize_tuple_struct(item: &Item, n: usize) -> String {
    // Upstream serializes one-field tuple structs (newtypes) as the
    // inner value whether or not marked transparent.
    if n == 1 || item.transparent {
        assert_eq!(
            n, 1,
            "serde_derive (vendored): transparent tuple struct {} must have one field",
            item.name
        );
        return "serde::Serialize::to_value(&self.0)".to_string();
    }
    let entries: Vec<String> = (0..n)
        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
        .collect();
    format!("serde::Value::Array(vec![{}])", entries.join(", "))
}

fn serialize_enum(variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push(format!(
                    "Self::{vn} => serde::Value::Str({vn:?}.to_string()),"
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push(format!(
                    "Self::{vn}(x0) => serde::Value::Object(vec![({vn:?}.to_string(), \
                     serde::Serialize::to_value(x0))]),"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(x{i})"))
                    .collect();
                arms.push(format!(
                    "Self::{vn}({binds}) => serde::Value::Object(vec![({vn:?}.to_string(), \
                     serde::Value::Array(vec![{items}]))]),",
                    binds = binds.join(", "),
                    items = items.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let entries: Vec<String> = live
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), serde::Serialize::to_value({}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                arms.push(format!(
                    "Self::{vn} {{ {binds} }} => serde::Value::Object(vec![({vn:?}.to_string(), \
                     serde::Value::Object(vec![{entries}]))]),",
                    binds = binds.join(", "),
                    entries = entries.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

// ---- code generation: Deserialize ----

fn deserialize_named_struct(item: &Item, fields: &[Field]) -> String {
    let name = &item.name;
    if item.transparent {
        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
        assert_eq!(
            live.len(),
            1,
            "serde_derive (vendored): transparent struct {name} must have exactly one unskipped field"
        );
        let inner = &live[0].name;
        let skipped: Vec<String> = fields
            .iter()
            .filter(|f| f.skip)
            .map(|f| format!("{}: Default::default(),", f.name))
            .collect();
        return format!(
            "Ok({name} {{ {inner}: serde::Deserialize::from_value(value)?, {} }})",
            skipped.join(" ")
        );
    }
    let inits: Vec<String> = fields.iter().map(|f| field_init(f, name)).collect();
    format!(
        "let entries = value.as_object().ok_or_else(|| \
         serde::DeError::expected(\"object\", {name:?}, value))?;\n\
         Ok({name} {{ {} }})",
        inits.join(" ")
    )
}

/// One `field: <expr>,` initializer against a bound `entries` object.
fn field_init(f: &Field, type_name: &str) -> String {
    if f.skip {
        format!("{}: Default::default(),", f.name)
    } else if f.skip_if.is_some() {
        // The entry may legitimately be absent (it was skipped on the
        // serialize side); fall back to the default value.
        format!(
            "{fld}: match entries.iter().find(|(k, _)| k == {fld:?}) {{ \
             Some((_, v)) => serde::Deserialize::from_value(v)?, \
             None => Default::default(), }},",
            fld = f.name
        )
    } else {
        format!(
            "{fld}: serde::from_field(entries, {fld:?}, {type_name:?})?,",
            fld = f.name
        )
    }
}

fn deserialize_tuple_struct(item: &Item, n: usize) -> String {
    let name = &item.name;
    if n == 1 || item.transparent {
        return format!("Ok({name}(serde::Deserialize::from_value(value)?))");
    }
    let elems: Vec<String> = (0..n)
        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "let items = value.as_array().ok_or_else(|| \
         serde::DeError::expected(\"array\", {name:?}, value))?;\n\
         if items.len() != {n} {{ return Err(serde::DeError::custom(format!(\
         \"expected {n} elements for {name}, found {{}}\", items.len()))); }}\n\
         Ok({name}({}))",
        elems.join(", ")
    )
}

fn deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push(format!("{vn:?} => return Ok({name}::{vn}),"));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push(format!(
                    "{vn:?} => return Ok({name}::{vn}(serde::Deserialize::from_value(content)?)),"
                ));
            }
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "{vn:?} => {{\n\
                     let items = content.as_array().ok_or_else(|| \
                     serde::DeError::expected(\"array\", {name:?}, content))?;\n\
                     if items.len() != {n} {{ return Err(serde::DeError::custom(format!(\
                     \"expected {n} elements for {name}::{vn}, found {{}}\", items.len()))); }}\n\
                     return Ok({name}::{vn}({elems}));\n}}",
                    elems = elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields.iter().map(|f| field_init(f, name)).collect();
                tagged_arms.push(format!(
                    "{vn:?} => {{\n\
                     let entries = content.as_object().ok_or_else(|| \
                     serde::DeError::expected(\"object\", {name:?}, content))?;\n\
                     return Ok({name}::{vn} {{ {inits} }});\n}}",
                    inits = inits.join(" ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
         serde::Value::Str(s) => match s.as_str() {{\n\
         {units}\n\
         _ => {{}}\n\
         }},\n\
         serde::Value::Object(entries) if entries.len() == 1 => {{\n\
         let (tag, content) = &entries[0];\n\
         match tag.as_str() {{\n\
         {tagged}\n\
         _ => {{}}\n\
         }}\n\
         }}\n\
         _ => {{}}\n\
         }}\n\
         Err(serde::DeError::expected(\"a {name} variant\", {name:?}, value))",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n")
    )
}
