//! Offline drop-in subset of the `serde_json` API.
//!
//! Bridges the vendored `serde` [`Value`] tree to JSON text: a
//! recursive-descent parser on one side, compact and pretty writers on
//! the other. Numbers keep the integer/float distinction `Value`
//! carries; non-finite floats serialize as `null`, matching upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---- writer ----

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a trailing `.0` so floats stay floats across a
        // roundtrip, as upstream does.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared `self.pos += 1` below.
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if negative {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v: Vec<(u32, f64)> = vec![(1, 2.5), (3, 4.0)];
        let pretty = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, f64)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
