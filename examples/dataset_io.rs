//! Dataset IO tour: synthesize a dataset, validate it, save it to
//! JSON and CSV, reload it, and re-run an analysis on the loaded copy.
//!
//! ```sh
//! cargo run --release --example dataset_io [seed] [out_dir]
//! ```
//!
//! This is the workflow a downstream user follows to generate a
//! reusable synthetic Digg dataset once and analyse it many times
//! without re-simulating.

use digg_core::experiments::fig4;
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_small, SynthConfig};
use digg_data::{io, validate};
use digg_sim::scenario::PROMOTION_THRESHOLD;
use digg_sim::time::DAY;
use std::path::PathBuf;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2006);
    let out_dir: PathBuf = std::env::args()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    println!("== synthesize ==");
    let cfg = SynthConfig {
        seed,
        scrape: ScrapeConfig {
            front_page_stories: 80,
            upcoming_stories: 300,
            top_users: 300,
            ..ScrapeConfig::default()
        },
        min_promotions: 80,
        min_scrape_days: 2,
        saturation_days: 3,
        max_minutes: 30 * DAY,
    };
    let synthesis = synthesize_small(&cfg);
    let ds = &synthesis.dataset;
    println!(
        "   {} front-page / {} upcoming stories, {} users, {} edges",
        ds.front_page.len(),
        ds.upcoming.len(),
        ds.network.user_count(),
        ds.network.edge_count()
    );

    println!("== validate ==");
    let violations = validate::validate(ds, PROMOTION_THRESHOLD);
    println!(
        "   {} structural violations{}",
        violations.len(),
        if violations.is_empty() {
            " (clean)"
        } else {
            ""
        }
    );
    for v in violations.iter().take(5) {
        println!("   {v}");
    }
    let stats = validate::stats(ds);
    println!(
        "   {} distinct voters; fp <500: {:.2}, >1500: {:.2}",
        stats.distinct_voters, stats.fp_below_500, stats.fp_above_1500
    );

    println!("== save ==");
    let json_path = out_dir.join(format!("digg-dataset-{seed}.json"));
    let csv_path = out_dir.join(format!("digg-dataset-{seed}.csv"));
    io::save(ds, &json_path).expect("write json");
    std::fs::write(&csv_path, io::to_csv(ds)).expect("write csv");
    let json_kb = std::fs::metadata(&json_path)
        .map(|m| m.len() / 1024)
        .unwrap_or(0);
    println!("   {} ({json_kb} KiB)", json_path.display());
    println!("   {}", csv_path.display());

    println!("== reload and re-analyse ==");
    let loaded = io::load(&json_path).expect("read json");
    assert_eq!(loaded.front_page, ds.front_page, "lossless roundtrip");
    let panel = fig4::run_panel(&loaded, 10);
    println!(
        "   Fig-4 panel from the loaded copy: {} stories, spearman(v10, final) = {}",
        panel.stories,
        panel
            .spearman
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "n/a".into())
    );

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&csv_path).ok();
    println!("   (temporary files removed)");
}
