//! Epidemic playground: the paper's §6 future-work program, runnable.
//!
//! ```sh
//! cargo run --release --example epidemic_playground [seed]
//! ```
//!
//! Three mini-experiments on synthetic social graphs:
//!
//! 1. SIR epidemic thresholds: Erdős–Rényi vs scale-free (preferential
//!    attachment) at equal mean degree — the vanishing-threshold
//!    effect of refs [16, 17];
//! 2. threshold ("complex contagion") cascades on a modular graph —
//!    the community-boundary transient of ref [5];
//! 3. community detection on the simulated Digg fan graph itself.

use digg_epidemics::{cascade_model, community, threshold};
use digg_sim::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_graph::generators;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("== 1. epidemic thresholds: ER vs scale-free (n=3000, <k>=6) ==");
    let n = 3000;
    let er = generators::erdos_renyi(&mut rng, n, 6.0 / n as f64);
    let sf = generators::preferential_attachment(&mut rng, n, 3, 1.0);
    let betas = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2];
    for (name, g) in [("erdos-renyi", &er), ("scale-free ", &sf)] {
        let mf = threshold::mean_field_threshold(g).unwrap();
        let pts = threshold::sweep(&mut rng, g, &betas, 1.0, 30, 0.05);
        print!("  {name}  mean-field λc {mf:.4}  attack rates:");
        for p in &pts {
            print!(" {:.3}", p.mean_attack_rate);
        }
        let emp = threshold::empirical_threshold(&pts, 0.01);
        println!(
            "  → empirical ≈ {}",
            emp.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into())
        );
    }
    println!("  (the scale-free curve lifts off earlier: hubs carry marginal contagions)");

    println!("\n== 2. complex contagion on a 2-community modular graph ==");
    let n = 400;
    let g = generators::modular(&mut rng, n, 2, 0.15, 0.01);
    let blocks = cascade_model::block_members(n, 2);
    for phi in [0.05, 0.1, 0.2, 0.3] {
        let out = cascade_model::run(&g, &blocks[0][..20], phi, 300);
        println!(
            "  phi={phi:.2}: home community {:.0}% active, other community {}",
            100.0 * out.saturation(&blocks[0]),
            match out.invasion_time(&blocks[1]) {
                Some(t) => format!(
                    "invaded at step {t} ({:.0}% active)",
                    100.0 * out.saturation(&blocks[1])
                ),
                None => "never invaded".to_string(),
            }
        );
    }
    println!("  (higher thresholds trap cascades inside their home community)");

    println!("\n== 3. community structure of a simulated Digg fan graph ==");
    let (_, pop) = scenario::june2006_small(seed);
    let labels = community::label_propagation(&mut rng, &pop.graph, 20);
    let q = community::modularity(&pop.graph, &labels);
    println!(
        "  {} users, {} watch edges -> {} communities, modularity Q = {q:.3}",
        pop.graph.user_count(),
        pop.graph.edge_count(),
        community::community_count(&labels),
    );
    println!(
        "  (the activity-attractiveness population has a dense core rather than\n\
          planted blocks, so Q stays modest — compare a planted modular graph:)"
    );
    let planted = generators::modular(&mut rng, 300, 3, 0.25, 0.005);
    let labels = community::label_propagation(&mut rng, &planted, 20);
    println!(
        "  planted 3-block graph: {} communities found, Q = {:.3}",
        community::community_count(&labels),
        community::modularity(&planted, &labels),
    );
}
