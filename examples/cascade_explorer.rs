//! Cascade explorer: how interest in individual stories spreads
//! through the fan network.
//!
//! ```sh
//! cargo run --release --example cascade_explorer [seed]
//! ```
//!
//! For a handful of simulated stories this prints, vote by vote,
//! whether each vote came from inside the network (a fan of a prior
//! voter — the paper's cascade definition), the story's influence
//! trajectory, and the resulting spread-mode classification; then the
//! population-level Fig. 3 style histograms.

use digg_core::cascade;
use digg_core::influence;
use digg_core::spread::{self, SpreadMode};
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_small, SynthConfig};
use digg_sim::time::DAY;
use digg_stats::ascii;
use digg_stats::histogram::Histogram;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cfg = SynthConfig {
        seed,
        scrape: ScrapeConfig {
            front_page_stories: 60,
            upcoming_stories: 200,
            top_users: 200,
            ..ScrapeConfig::default()
        },
        min_promotions: 60,
        min_scrape_days: 2,
        saturation_days: 2,
        max_minutes: 30 * DAY,
    };
    let synthesis = synthesize_small(&cfg);
    let ds = &synthesis.dataset;
    let g = &ds.network;

    println!("== per-story spread anatomy (first 3 front-page stories) ==");
    for r in ds.front_page.iter().take(3) {
        let flags = cascade::in_network_flags(g, &r.voters);
        let trace: String = flags
            .iter()
            .take(30)
            .map(|&f| if f { 'N' } else { '.' })
            .collect();
        let profile = spread::profile(g, &r.voters, 10);
        let mode = match profile.mode(0.6) {
            SpreadMode::NetworkDriven => "network-driven (narrow community)",
            SpreadMode::InterestDriven => "interest-driven (broad appeal)",
            SpreadMode::Mixed => "mixed",
        };
        println!(
            "story {:>5} by {} ({} fans): final votes {:?}",
            r.story.0,
            r.submitter,
            g.fan_count(r.submitter),
            r.final_votes,
        );
        println!("  votes  (N = in-network, . = independent): {trace}");
        println!(
            "  first-10 profile: {}/{} in-network, longest run {}, mode: {mode}",
            profile.in_network, profile.votes, profile.longest_network_run
        );
        let traj = influence::influence_trajectory(g, &r.voters);
        let floats: Vec<f64> = traj.iter().take(40).map(|&v| v as f64).collect();
        println!(
            "  influence trajectory (users who can see it): {}",
            ascii::sparkline(&floats)
        );
    }

    println!("\n== population view: early in-network votes vs final votes ==");
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for r in &ds.front_page {
        if !cascade::has_enough_votes(&r.voters, 10) {
            continue;
        }
        let Some(fin) = r.final_votes else { continue };
        let v10 = cascade::in_network_count_within(g, &r.voters, 10);
        if v10 <= 2 {
            lo.push(f64::from(fin));
        } else if v10 >= 6 {
            hi.push(f64::from(fin));
        }
    }
    let med = |v: &[f64]| digg_stats::descriptive::median(v).unwrap_or(f64::NAN);
    println!(
        "median final votes: v10<=2 -> {:.0} ({} stories)   v10>=6 -> {:.0} ({} stories)",
        med(&lo),
        lo.len(),
        med(&hi),
        hi.len()
    );
    println!("(the paper's claim: the second number is much smaller)");

    println!("\n== final-vote histogram of front-page stories ==");
    let finals: Vec<f64> = ds
        .front_page
        .iter()
        .filter_map(|r| r.final_votes)
        .map(f64::from)
        .collect();
    let h = Histogram::of(0.0, 2500.0, 10, &finals);
    print!("{}", ascii::histogram_bars(&h, 40));
}
