//! Quickstart: simulate a small Digg, scrape it, and predict story
//! interestingness from the first ten votes.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```
//!
//! This walks the full pipeline of the reproduction in miniature:
//!
//! 1. generate a heavy-tailed user population with a fan graph;
//! 2. run the platform simulator (queue → promotion → front page);
//! 3. scrape it with the paper's fidelity limits;
//! 4. extract `(v10, fans1)` features and train the C4.5 tree;
//! 5. predict on fresh stories and compare with their actual outcome.

use digg_core::features::INTERESTINGNESS_THRESHOLD;
use digg_core::pipeline::{run_pipeline, PipelineConfig};
use digg_data::scrape::ScrapeConfig;
use digg_data::synth::{synthesize_small, SynthConfig};
use digg_sim::time::DAY;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("== 1-3. simulate + scrape (reduced-scale June-2006 scenario) ==");
    let cfg = SynthConfig {
        seed,
        scrape: ScrapeConfig {
            front_page_stories: 80,
            upcoming_stories: 300,
            top_users: 300,
            ..ScrapeConfig::default()
        },
        min_promotions: 80,
        min_scrape_days: 2,
        saturation_days: 3,
        max_minutes: 30 * DAY,
    };
    let t0 = std::time::Instant::now();
    let synthesis = synthesize_small(&cfg);
    let ds = &synthesis.dataset;
    println!(
        "   simulated {} days in {:.1?}; scraped {} front-page + {} upcoming stories, {} users, {} watch edges",
        synthesis.sim.now().as_days().round(),
        t0.elapsed(),
        ds.front_page.len(),
        ds.upcoming.len(),
        ds.network.user_count(),
        ds.network.edge_count(),
    );

    println!("\n== 4. train the early-vote predictor ==");
    let pipeline_cfg = PipelineConfig {
        top_user_rank: 300,
        ..PipelineConfig::default()
    };
    let sim = &synthesis.sim;
    let Some(result) = run_pipeline(ds, &pipeline_cfg, &|r| sim.story(r.story).is_front_page())
    else {
        println!("   not enough data at this scale; try another seed");
        return;
    };
    println!(
        "   trained on {} stories; 10-fold CV {}/{} correct",
        result.training_stories,
        result.cv_correct,
        result.cv_correct + result.cv_errors
    );
    println!("   learned tree:\n{}", indent(&result.tree_text, 6));

    println!("== 5. holdout: upcoming stories by well-connected users ==");
    println!(
        "   {} stories: {} (interesting = >{} final votes)",
        result.holdout_stories, result.holdout, INTERESTINGNESS_THRESHOLD
    );
    match (result.digg_precision(), result.classifier_precision()) {
        (Some(digg), Some(clf)) => println!(
            "   precision on the promoted subset: platform {digg:.2} vs early-vote classifier {clf:.2}"
        ),
        _ => println!("   promoted subset too small for a precision comparison"),
    }
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}
