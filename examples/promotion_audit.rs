//! Promotion audit: the "tyranny of the minority" question.
//!
//! ```sh
//! cargo run --release --example promotion_audit [seed]
//! ```
//!
//! The paper's §5 discusses the September 2006 controversy: top users
//! dominated the front page, and Digg responded by adding "unique
//! digging diversity" to the promotion algorithm. This example runs
//! the same platform twice — once with the raw vote-count threshold,
//! once with the diversity-weighted rule — and audits the resulting
//! front pages: who gets promoted, how network-driven their stories
//! are, and what happens to genuinely broad stories.

use digg_core::cascade::in_network_count_within;
use digg_sim::scenario;
use digg_sim::time::DAY;
use digg_sim::Sim;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let days = 3;

    for (name, promoter) in [
        (
            "raw threshold (pre-2006-09)",
            scenario::june2006(seed).promoter,
        ),
        (
            "diversity-weighted (post-2006-09)",
            scenario::september2006(seed).promoter,
        ),
    ] {
        let (mut cfg, pop) = scenario::june2006_small(seed);
        cfg.promoter = promoter;
        let graph = pop.graph.clone();
        let top100: std::collections::HashSet<_> = pop.ranking().into_iter().take(100).collect();
        let mut sim = Sim::new(cfg, pop);
        let t0 = std::time::Instant::now();
        sim.run(days * DAY);
        let promoted: Vec<_> = sim.stories().iter().filter(|s| s.is_front_page()).collect();
        println!(
            "== {name} ==  ({days} days simulated in {:.1?})",
            t0.elapsed()
        );
        println!(
            "  promotions: {} ({:.1}/day)",
            promoted.len(),
            promoted.len() as f64 / days as f64
        );
        if promoted.is_empty() {
            println!();
            continue;
        }
        let by_top = promoted
            .iter()
            .filter(|s| top100.contains(&s.submitter))
            .count();
        println!(
            "  submitted by top-100 users: {} ({:.0}%)",
            by_top,
            100.0 * by_top as f64 / promoted.len() as f64
        );
        let v10s: Vec<f64> = promoted
            .iter()
            .map(|s| in_network_count_within(&graph, &s.voters_chronological(), 10) as f64)
            .collect();
        println!(
            "  mean in-network votes among first 10: {:.2}",
            digg_stats::descriptive::mean(&v10s).unwrap_or(0.0)
        );
        let qualities: Vec<f64> = promoted.iter().map(|s| s.quality).collect();
        println!(
            "  mean latent quality of promoted stories: {:.3} (ground truth the platform cannot see)",
            digg_stats::descriptive::mean(&qualities).unwrap_or(0.0)
        );
        let broad = promoted.iter().filter(|s| s.quality >= 0.55).count();
        println!(
            "  broadly appealing stories promoted: {} ({:.0}%)\n",
            broad,
            100.0 * broad as f64 / promoted.len() as f64
        );
    }
    println!(
        "Reading: the diversity rule trades promotion volume for quality —\n\
         it discounts fan votes, so network-driven stories need broader\n\
         support, raising the mean quality of what reaches the front page."
    );
}
