//! Umbrella crate re-exporting the Digg-reproduction workspace.
pub use digg_core as core;
pub use digg_data as data;
pub use digg_epidemics as epidemics;
pub use digg_ml as ml;
pub use digg_sim as sim;
pub use digg_stats as stats;
pub use social_graph as graph;
