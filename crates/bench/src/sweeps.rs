//! The scenario-sweep experiments: deterministic parallel fan-outs of
//! independent `(config, seed)` runs on the `des-core` kernels.
//!
//! Two standalone registry entries live here:
//!
//! * `sim_sweep` — checks the event-driven [`Sim`] (Compat kernel)
//!   against the seed tick loop ([`TickSim`]) metric-for-metric on
//!   several seeds, shards a toy scenario grid through the supervised
//!   runner [`digg_sim::supervisor::run_sweep_supervised`] (subprocess
//!   `sweep_worker`s when the binary is present, the bit-identical
//!   in-process path otherwise), and times both kernels against
//!   the tick loop on a *sparse* long-horizon scenario where skipping
//!   idle minutes pays (recorded as a baseline row in
//!   `bench_summary.json`).
//! * `epi_sweep` — checks the event-driven cascade kernel against the
//!   full-scan model bit-for-bit, sweeps an SIR `(beta, gamma)` grid
//!   and a cascade `phi` grid on the event kernels, and times the
//!   event kernels against the step/scan loops.
//!
//! Every payload here is **timing-free and thread-invariant**: the
//! grids fan out with [`digg_core::par_map`] (contiguous chunks,
//! outputs concatenated in chunk order), so the artifact JSON is
//! byte-identical at any `DIGG_THREADS`. The integration test
//! `tests/sweep_invariance.rs` pins that by running the payload
//! builders at the thread counts `DIGG_THREADS=1/2/8` would select —
//! [`digg_core::worker_threads`] is the one place that env var is
//! parsed. Timings go to the bench summary's run and baseline records
//! instead.

use crate::baseline::BaselineRecord;
use crate::registry::{record_baselines, Artifact};
use crate::timing::time_ms;
use digg_epidemics::{cascade_model, des};
use digg_sim::baseline::TickSim;
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::supervisor::{run_sweep_supervised, SupervisorConfig};
use digg_sim::sweep::{CellOutcome, ScenarioRun, ScenarioSpec};
use digg_sim::{Kernel, Sim, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use social_graph::generators::{erdos_renyi, modular};
use social_graph::{GraphBuilder, SocialGraph, UserId};

// ------------------------------------------------------------ sim_sweep

/// One tick-loop-vs-event-kernel equivalence verdict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EquivalenceCheck {
    /// Seed the pair of runs used.
    pub seed: u64,
    /// Simulated minutes.
    pub minutes: u64,
    /// Submissions observed (same on both sides when `ok`).
    pub submissions: u64,
    /// Votes observed (same on both sides when `ok`).
    pub votes: u64,
    /// Whether the full `SimMetrics` structs were identical.
    pub ok: bool,
}

/// Identity of a sweep cell whose simulation panicked. The sweep
/// itself survives — panic isolation in the fan-out — and the loss is
/// surfaced here instead of aborting the experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PanickedCell {
    /// Scenario name of the failed cell.
    pub scenario: String,
    /// Seed of the failed run.
    pub seed: u64,
    /// Rendered panic payload.
    pub message: String,
}

/// The timing-free `sim_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimSweepPayload {
    /// Per-seed tick-loop equivalence verdicts (all must hold).
    pub equivalence: Vec<EquivalenceCheck>,
    /// The scenario grid results, row-major (panicked cells omitted).
    pub runs: Vec<ScenarioRun>,
    /// Cells that panicked. Empty — and omitted from the JSON, keeping
    /// the payload byte-identical to before the field existed — on a
    /// healthy sweep.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub panicked: Vec<PanickedCell>,
}

/// The toy scenario grid swept by `sim_sweep`.
pub fn sim_sweep_specs() -> Vec<ScenarioSpec> {
    let mut quiet = SimConfig::toy(0);
    quiet.submissions_per_minute = 0.05;
    quiet.frontpage_sessions_per_minute = 1.0;
    vec![
        ScenarioSpec {
            name: "toy-compat".into(),
            cfg: SimConfig::toy(0),
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::Compat,
            minutes: 240,
        },
        ScenarioSpec {
            name: "quiet-streams".into(),
            cfg: quiet,
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::EventStreams,
            minutes: 240,
        },
    ]
}

/// Run the tick-loop equivalence checks and the scenario grid with an
/// explicit thread count (in-process supervisor shards). Contains no
/// timings by construction.
pub fn sim_sweep_payload(seed: u64, threads: usize) -> SimSweepPayload {
    sim_sweep_payload_with(seed, &SupervisorConfig::in_process(threads))
}

/// [`sim_sweep_payload`] under an explicit [`SupervisorConfig`] — the
/// grid goes through [`run_sweep_supervised`], so the experiment binary
/// shards it across `sweep_worker` subprocesses when the binary is
/// available, while library tests drive the identical in-process path.
/// The payload is worker-mode invariant: subprocess and in-process
/// sweeps serialize byte-identically.
pub fn sim_sweep_payload_with(seed: u64, sup: &SupervisorConfig) -> SimSweepPayload {
    let minutes = 480;
    let equivalence = (0..3)
        .map(|i| {
            let cfg = SimConfig::toy(seed.wrapping_add(i));
            let mut pop_rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0_17AB1E);
            let pop = Population::generate(&mut pop_rng, &PopulationConfig::toy(cfg.users));
            let mut tick = TickSim::new(cfg.clone(), pop.clone());
            let mut event = Sim::with_kernel(cfg.clone(), pop, Kernel::Compat);
            tick.run(minutes);
            event.run(minutes);
            EquivalenceCheck {
                seed: cfg.seed,
                minutes,
                submissions: tick.metrics().submissions,
                votes: tick.metrics().total_votes(),
                ok: tick.metrics() == event.metrics(),
            }
        })
        .collect();
    let seeds: Vec<u64> = (0..3).map(|i| seed.wrapping_add(100 + i)).collect();
    // The panic-isolated supervised runner: a poisoned cell costs only
    // its own grid slot, reported in `panicked`, not the whole
    // experiment — whether the cell ran in-process or in a subprocess.
    let outcomes = match run_sweep_supervised(&sim_sweep_specs(), &seeds, sup) {
        Ok(outcomes) => outcomes,
        Err(e) => panic!("sim_sweep supervisor failed: {e}"),
    };
    let mut runs = Vec::new();
    let mut panicked = Vec::new();
    for o in outcomes {
        match o {
            CellOutcome::Ok(run) => runs.push(run),
            CellOutcome::Panicked {
                scenario,
                seed,
                message,
            } => panicked.push(PanickedCell {
                scenario,
                seed,
                message,
            }),
        }
    }
    SimSweepPayload {
        equivalence,
        runs,
        panicked,
    }
}

/// A sparse, long-horizon scenario: almost nothing happens per minute,
/// so the tick loop burns its time on idle rescans while the event
/// kernels only pay for actual activity.
fn sparse_config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::toy(seed);
    cfg.submissions_per_minute = 0.0005;
    cfg.frontpage_sessions_per_minute = 0.001;
    cfg.upcoming_sessions_per_minute = 0.001;
    cfg.external_rate = 0.001;
    cfg
}

/// Time the tick loop against both event kernels on the sparse
/// scenario. Returns the baseline row (`seed` = tick loop, `new` =
/// EventStreams, `new(1t)` column = Compat kernel, which reproduces
/// the tick loop's exact results) and the minutes simulated.
fn sparse_kernel_timing(seed: u64) -> (BaselineRecord, u64) {
    let minutes = 100_000;
    let cfg = sparse_config(seed);
    let mut pop_rng = StdRng::seed_from_u64(seed ^ 0x5BA_A5E);
    let pop = Population::generate(&mut pop_rng, &PopulationConfig::toy(cfg.users));

    let (tick, tick_ms) = time_ms(|| {
        let mut sim = TickSim::new(cfg.clone(), pop.clone());
        sim.run(minutes);
        sim.metrics().clone()
    });
    let (compat, compat_ms) = time_ms(|| {
        let mut sim = Sim::with_kernel(cfg.clone(), pop.clone(), Kernel::Compat);
        sim.run(minutes);
        sim.metrics().clone()
    });
    let (_, streams_ms) = time_ms(|| {
        let mut sim = Sim::with_kernel(cfg.clone(), pop.clone(), Kernel::EventStreams);
        sim.run(minutes);
        sim.metrics().clone()
    });
    assert_eq!(
        tick, compat,
        "Compat kernel diverged from the tick loop on the sparse scenario"
    );
    (
        BaselineRecord::new("sim_kernel_sparse", tick_ms, streams_ms, compat_ms),
        minutes,
    )
}

/// The `sim_sweep` standalone experiment. Shards the grid across
/// `sweep_worker` subprocesses when the binary is available (the
/// experiment binaries build it as a sibling), falling back to the
/// bit-identical in-process supervisor path otherwise.
pub fn run_sim_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let threads = digg_core::worker_threads();
    let sup = match crate::checkpoint::sweep_worker_cmd() {
        Some(cmd) => SupervisorConfig {
            worker_cmd: Some(cmd),
            ..SupervisorConfig::in_process(threads)
        },
        None => SupervisorConfig::in_process(threads),
    };
    let mode = if sup.worker_cmd.is_some() {
        "subprocess workers"
    } else {
        "in-process shards"
    };
    let (payload, sweep_ms) = time_ms(|| sim_sweep_payload_with(seed, &sup));
    let scenarios = payload.runs.len();
    let (sparse, sparse_minutes) = sparse_kernel_timing(seed);

    let equivalence_ok = payload.equivalence.iter().all(|e| e.ok);
    let mut rendered = String::from("Scenario sweep (event kernel)\n");
    rendered.push_str(&format!(
        "tick-loop equivalence on {} seeds: {}\n",
        payload.equivalence.len(),
        if equivalence_ok { "exact" } else { "DIVERGED" }
    ));
    for e in &payload.equivalence {
        rendered.push_str(&format!(
            "  seed {:>6}: {} submissions, {} votes over {} min — {}\n",
            e.seed,
            e.submissions,
            e.votes,
            e.minutes,
            if e.ok { "identical" } else { "DIVERGED" }
        ));
    }
    rendered.push_str(&format!(
        "swept {scenarios} scenarios in {sweep_ms:.1} ms on {threads} {mode} ({:.1} scenarios/sec)\n",
        scenarios as f64 / (sweep_ms / 1e3).max(1e-9)
    ));
    for r in &payload.runs {
        rendered.push_str(&format!(
            "  {:<16} seed {:>4}: {:>4} stories, {:>6} votes, {:>3} promotions\n",
            r.scenario,
            r.seed,
            r.stories,
            r.metrics.total_votes(),
            r.metrics.promotions
        ));
    }
    for p in &payload.panicked {
        rendered.push_str(&format!(
            "  PANICKED {:<16} seed {:>4}: {}\n",
            p.scenario, p.seed, p.message
        ));
    }
    rendered.push_str(&format!(
        "sparse scenario ({sparse_minutes} min): tick loop {:.1} ms, event kernel {:.1} ms ({:.1}x), compat replay {:.1} ms\n",
        sparse.seed_ms, sparse.new_ms, sparse.speedup, sparse.new_single_ms
    ));
    let ok = equivalence_ok && sparse.speedup > 1.0 && payload.panicked.is_empty();
    record_baselines(vec![sparse]);
    (
        vec![Artifact::new("sim_sweep", rendered, &payload).with_ok(ok)],
        scenarios,
    )
}

// ------------------------------------------------------------ epi_sweep

/// One SIR grid cell result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SirCell {
    /// Per-contact transmission probability.
    pub beta: f64,
    /// Per-step recovery probability.
    pub gamma: f64,
    /// Run seed.
    pub seed: u64,
    /// Final epidemic size (including the seed node).
    pub total_infected: usize,
    /// Steps until extinction.
    pub duration: usize,
}

/// One cascade grid cell result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CascadeCell {
    /// Activation threshold.
    pub phi: f64,
    /// Final number of active nodes.
    pub total_active: usize,
    /// Productive steps until the cascade froze.
    pub steps: usize,
}

/// The timing-free `epi_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EpiSweepPayload {
    /// Event-driven cascade matched the full-scan model bit-for-bit.
    pub cascade_exact: bool,
    /// SIR `(beta, gamma)` grid on the event kernel.
    pub sir: Vec<SirCell>,
    /// Cascade `phi` grid on the event kernel.
    pub cascades: Vec<CascadeCell>,
}

/// Run the epidemic grids with an explicit thread count. Contains no
/// timings by construction.
pub fn epi_sweep_payload(seed: u64, threads: usize) -> EpiSweepPayload {
    let mut rng = StdRng::seed_from_u64(seed);
    let er = erdos_renyi(&mut rng, 400, 0.02);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let mod_graph = modular(&mut rng, 240, 3, 0.2, 0.01);

    // Bit-exactness of the event-driven cascade against the scan model
    // on the modular graph, across the phi grid.
    let phis = [0.0, 0.1, 0.25, 0.5, 0.9];
    let seeds: Vec<UserId> = cascade_model::block_members(240, 3)[0][..6].to_vec();
    let cascade_exact = phis.iter().all(|&phi| {
        des::cascade(&mod_graph, &seeds, phi, 500)
            == cascade_model::run(&mod_graph, &seeds, phi, 500)
    });

    let grid: Vec<(f64, f64, u64)> = [0.1, 0.3, 0.6]
        .iter()
        .flat_map(|&beta| {
            [0.2, 0.5]
                .iter()
                .flat_map(move |&gamma| (0..3).map(move |i| (beta, gamma, seed.wrapping_add(i))))
        })
        .collect();
    let sir = digg_core::par_map(&grid, threads, |&(beta, gamma, s)| {
        let out = des::sir(&er, &[UserId(0)], beta, gamma, 2_000, s);
        SirCell {
            beta,
            gamma,
            seed: s,
            total_infected: out.total_infected,
            duration: out.duration,
        }
    });

    let phi_cells: Vec<f64> = phis.to_vec();
    let cascades = digg_core::par_map(&phi_cells, threads, |&phi| {
        let out = des::cascade(&mod_graph, &seeds, phi, 500);
        CascadeCell {
            phi,
            total_active: out.total_active(),
            steps: out.growth.len(),
        }
    });

    EpiSweepPayload {
        cascade_exact,
        sir,
        cascades,
    }
}

/// A long watch-chain: the scan model rescans all `n` nodes on each of
/// `n` steps (quadratic), the event kernel walks the frontier once.
fn chain_graph(n: u32) -> SocialGraph {
    let mut b = GraphBuilder::new(n as usize);
    for i in 1..n {
        b.add_watch(UserId(i), UserId(i - 1));
    }
    b.build()
}

/// Time the event kernels against the scan/step loops. The cascade row
/// also asserts bit-exactness on the timed workload.
fn epi_kernel_timing(seed: u64) -> Vec<BaselineRecord> {
    let n = 3_000u32;
    let chain = chain_graph(n);
    let (scan_out, scan_ms) =
        time_ms(|| cascade_model::run(&chain, &[UserId(0)], 0.5, n as usize + 10));
    let (event_out, event_ms) =
        time_ms(|| des::cascade(&chain, &[UserId(0)], 0.5, n as usize + 10));
    assert_eq!(
        scan_out, event_out,
        "event-driven cascade diverged on the timing workload"
    );
    let cascade_row = BaselineRecord::new("cascade_kernel_chain", scan_ms, event_ms, event_ms);

    // SIR with slow recovery: the step loop re-flips coins for every
    // infectious node's whole neighbourhood on every step of a long
    // infectious period; the event kernel draws once per edge.
    let mut rng = StdRng::seed_from_u64(seed);
    let er = erdos_renyi(&mut rng, 1_500, 0.01);
    let (_, step_ms) = time_ms(|| {
        let mut r = StdRng::seed_from_u64(seed ^ 2);
        digg_epidemics::sir::run(&mut r, &er, &[UserId(0)], 0.002, 0.005, 8_000)
    });
    let (_, des_ms) = time_ms(|| des::sir(&er, &[UserId(0)], 0.002, 0.005, 8_000, seed ^ 2));
    vec![
        cascade_row,
        BaselineRecord::new("sir_kernel_slow_recovery", step_ms, des_ms, des_ms),
    ]
}

/// The `epi_sweep` standalone experiment.
pub fn run_epi_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let threads = digg_core::worker_threads();
    let (payload, sweep_ms) = time_ms(|| epi_sweep_payload(seed, threads));
    let scenarios = payload.sir.len() + payload.cascades.len();
    let rows = epi_kernel_timing(seed);

    let mut rendered = String::from("Epidemic sweep (event kernel)\n");
    rendered.push_str(&format!(
        "cascade event kernel vs full scan: {}\n",
        if payload.cascade_exact {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    ));
    rendered.push_str(&format!(
        "swept {scenarios} scenarios in {sweep_ms:.1} ms on {threads} threads ({:.1} scenarios/sec)\n",
        scenarios as f64 / (sweep_ms / 1e3).max(1e-9)
    ));
    rendered.push_str("  SIR grid (Erdos-Renyi n=400):\n");
    for c in &payload.sir {
        rendered.push_str(&format!(
            "    beta {:.1} gamma {:.1} seed {:>4}: {:>3} infected over {:>4} steps\n",
            c.beta, c.gamma, c.seed, c.total_infected, c.duration
        ));
    }
    rendered.push_str("  cascade grid (modular n=240):\n");
    for c in &payload.cascades {
        rendered.push_str(&format!(
            "    phi {:.2}: {:>3} active after {:>2} productive steps\n",
            c.phi, c.total_active, c.steps
        ));
    }
    for r in &rows {
        rendered.push_str(&format!(
            "  {}: scan/step {:.1} ms, event {:.1} ms ({:.1}x)\n",
            r.experiment, r.seed_ms, r.new_ms, r.speedup
        ));
    }
    let ok = payload.cascade_exact;
    record_baselines(rows);
    (
        vec![Artifact::new("epi_sweep", rendered, &payload).with_ok(ok)],
        scenarios,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_config_is_actually_sparse() {
        let cfg = sparse_config(1);
        assert!(cfg.submissions_per_minute < 0.05);
        assert!(cfg.frontpage_sessions_per_minute < 0.1);
    }

    #[test]
    fn epi_payload_reports_exact_cascades() {
        let p = epi_sweep_payload(7, 2);
        assert!(p.cascade_exact);
        assert_eq!(p.sir.len(), 18);
        assert_eq!(p.cascades.len(), 5);
    }

    #[test]
    fn chain_cascade_kernels_agree() {
        let g = chain_graph(50);
        assert_eq!(
            cascade_model::run(&g, &[UserId(0)], 0.5, 60),
            des::cascade(&g, &[UserId(0)], 0.5, 60)
        );
    }
}
