//! Experiment registry: one [`ExperimentSpec`] per paper artifact,
//! mapping a stable name to a [`Runner`] so a single dispatcher
//! replaces the old copy-paste binaries. A runner is either
//! [`Runner::Synth`] (consumes the shared June-2006 synthesis, built
//! lazily on first use) or [`Runner::Standalone`] (self-contained, fed
//! only the seed — the scenario-sweep experiments).
//!
//! Every run is timed; [`write_bench_summary`] persists wall-time and
//! stories/sec per experiment (plus any seed-baseline comparisons from
//! [`crate::baseline`]) into `bench_summary.json`.

use crate::timing::stopwatch;
use crate::{emit, seed_from_env, shared_synthesis};
use digg_core::experiments::{decay, fig1, fig2, fig3, fig4, fig5, intext, prediction, scatter};
use digg_core::features::INTERESTINGNESS_THRESHOLD;
use digg_core::pipeline::PipelineConfig;
use digg_core::predictor::InterestingnessPredictor;
use digg_data::synth::Synthesis;
use digg_ml::c45::C45Params;
use digg_sim::scenario::PROMOTION_THRESHOLD;
use serde::{Serialize, Value};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One emitted result: the rendering that goes to stdout/`<name>.txt`
/// and the serialized payload that goes to `<name>.json`.
pub struct Artifact {
    /// File stem under `DIGG_RESULTS_DIR`.
    pub name: String,
    /// Human-readable rendering.
    pub rendered: String,
    /// Serialized payload.
    pub payload: Value,
    /// Whether the result passes its own validity checks (e.g. the
    /// in-text statistics report no structural violations). A false
    /// flag makes the dispatcher exit non-zero.
    pub ok: bool,
}

impl Artifact {
    /// A passing artifact.
    pub fn new<T: Serialize>(name: &str, rendered: String, payload: &T) -> Artifact {
        Artifact {
            name: name.to_string(),
            rendered,
            payload: payload.to_value(),
            ok: true,
        }
    }

    /// Override the validity flag.
    pub fn with_ok(mut self, ok: bool) -> Artifact {
        self.ok = ok;
        self
    }
}

/// How an experiment runs: against the shared June-2006 synthesis, or
/// standalone from just a seed.
///
/// The split is what makes dispatch *lazy*: the multi-day synthesis is
/// built only when a selected experiment actually needs it, so
/// `experiments --list` and the standalone sweep experiments never pay
/// for it.
pub enum Runner {
    /// Runs on the shared synthesis.
    Synth {
        /// Input size used for the throughput rate: stories for the
        /// story-level analyses, users for the scatter figure.
        stories: fn(&Synthesis) -> usize,
        /// Produce the artifacts.
        run: fn(&Synthesis) -> Vec<Artifact>,
    },
    /// Self-contained: receives the run seed, returns artifacts plus
    /// the number of work units (scenarios) executed.
    Standalone {
        /// Produce the artifacts and the unit count.
        run: fn(u64) -> (Vec<Artifact>, usize),
    },
}

/// A named experiment: how to run it and how big its input is.
pub struct ExperimentSpec {
    /// Stable name (the old binary name).
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// How to run it.
    pub runner: Runner,
}

/// Wall-time record of one experiment run.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Experiment name.
    pub experiment: String,
    /// Wall time of the runner in milliseconds.
    pub wall_ms: f64,
    /// Input size (stories; users for `scatter`; scenarios for the
    /// sweep experiments).
    pub stories: usize,
    /// What `stories` counts: `"stories"` or `"scenarios"`.
    pub unit: &'static str,
    /// Throughput in `unit`s per second.
    pub stories_per_sec: f64,
}

/// One scale-trajectory row of `bench_summary.json`: the throughput of
/// a substrate operation at a stated graph size — the numbers that
/// track progress toward the ROADMAP's millions-of-users target.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRecord {
    /// Operation name (e.g. `graph_build_parallel`, `story_sweeps`).
    pub name: String,
    /// Users in the graph the operation ran against.
    pub users: usize,
    /// Edges in that graph.
    pub edges: usize,
    /// Wall time of the operation in milliseconds.
    pub wall_ms: f64,
    /// Throughput in `unit`s per second.
    pub per_sec: f64,
    /// What `per_sec` counts: `"edges"` or `"votes"`.
    pub unit: &'static str,
    /// Speedup over the serial implementation of the same operation,
    /// when one exists.
    pub speedup_vs_serial: Option<f64>,
}

static RUNS: Mutex<Vec<RunRecord>> = Mutex::new(Vec::new());
static BASELINES: Mutex<Vec<crate::baseline::BaselineRecord>> = Mutex::new(Vec::new());
static SCALE: Mutex<Vec<ScaleRecord>> = Mutex::new(Vec::new());
static DEGRADATION: Mutex<Vec<crate::degradation::DegradationRecord>> = Mutex::new(Vec::new());

/// Lock one of the summary accumulators, recovering from poisoning:
/// the rows are append-only `Vec`s, so a panic mid-`extend` at worst
/// loses that panicking run's rows — the summary of every *other* run
/// is still worth writing.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Store seed-baseline comparison rows for the next
/// [`write_bench_summary`].
pub fn record_baselines(rows: Vec<crate::baseline::BaselineRecord>) {
    lock(&BASELINES).extend(rows);
}

/// Store scale-trajectory rows for the next [`write_bench_summary`].
pub fn record_scale(rows: Vec<ScaleRecord>) {
    lock(&SCALE).extend(rows);
}

/// Store predictor-decay rows for the next [`write_bench_summary`].
pub fn record_degradation(rows: Vec<crate::degradation::DegradationRecord>) {
    lock(&DEGRADATION).extend(rows);
}

fn fp(s: &Synthesis) -> usize {
    s.dataset.front_page.len()
}

fn all_records(s: &Synthesis) -> usize {
    s.dataset.front_page.len() + s.dataset.upcoming.len()
}

fn sim_stories(s: &Synthesis) -> usize {
    s.sim.stories().len()
}

fn run_fig1(s: &Synthesis) -> Vec<Artifact> {
    let result = fig1::run(&s.sim, &fig1::Fig1Params::default());
    let mut rendered = result.render();
    let accel = result
        .curves
        .iter()
        .filter(|c| result.promotion_accelerates(c))
        .count();
    rendered.push_str(&format!(
        "promotion accelerates voting on {accel}/{} sampled stories\n",
        result.curves.len()
    ));
    if let Some(f) = result.mean_first_day_fraction() {
        rendered.push_str(&format!(
            "mean fraction of final votes within one day of promotion: {f:.2} (Wu-Huberman: interest decays with ~1-day half-life)\n"
        ));
    }
    vec![Artifact::new("fig1", rendered, &result)]
}

fn run_fig2(s: &Synthesis) -> Vec<Artifact> {
    let ds = &s.dataset;
    let a = fig2::run_a(ds, 16, 4000.0);
    // The paper's Fig 2b counts activity within its scraped sample;
    // the lifetime supplement covers the whole simulated history (the
    // scale on which the paper's all-time Top Users list was built).
    let b = fig2::run_b(ds);
    let bl = fig2::run_b_sim(&s.sim);
    vec![
        Artifact::new("fig2a", a.render(), &a),
        Artifact::new("fig2b", b.render(), &b),
        Artifact::new("fig2b_lifetime", bl.render(), &bl),
    ]
}

fn run_fig3(s: &Synthesis) -> Vec<Artifact> {
    let ds = &s.dataset;
    let a = fig3::run_a(ds);
    let b = fig3::run_b(ds);
    vec![
        Artifact::new("fig3a", a.render(), &a),
        Artifact::new("fig3b", b.render(), &b),
    ]
}

fn run_fig4(s: &Synthesis) -> Vec<Artifact> {
    let result = fig4::run(&s.dataset);
    vec![Artifact::new("fig4", result.render(), &result)]
}

fn run_fig5(s: &Synthesis) -> Vec<Artifact> {
    let ds = &s.dataset;
    let Some(result) = fig5::run(ds, &C45Params::default(), 0x1e12) else {
        eprintln!("fig5: no trainable stories in the dataset");
        return vec![];
    };
    // Also write the tree as Graphviz DOT when persisting.
    if let (Ok(dir), Some(p)) = (
        std::env::var("DIGG_RESULTS_DIR"),
        InterestingnessPredictor::train(
            &ds.front_page,
            &ds.network,
            INTERESTINGNESS_THRESHOLD,
            &C45Params::default(),
        ),
    ) {
        let path = std::path::Path::new(&dir).join("fig5.dot");
        if crate::write_atomic(&path, p.tree().to_dot().as_bytes()).is_ok() {
            eprintln!("[digg-bench] wrote {}", path.display());
        }
    }
    vec![Artifact::new("fig5", result.render(), &result)]
}

fn run_prediction(s: &Synthesis) -> Vec<Artifact> {
    let Some(result) = prediction::run(s, &PipelineConfig::default()) else {
        eprintln!("prediction: empty training sample or holdout");
        return vec![];
    };
    let mut rendered = result.render();
    if let Some(beats) = result.classifier_beats_digg() {
        rendered.push_str(&format!(
            "classifier precision beats the promoter: {beats} (paper: yes, 0.57 vs 0.36)\n"
        ));
    }
    vec![Artifact::new("prediction", rendered, &result)]
}

fn run_scatter(s: &Synthesis) -> Vec<Artifact> {
    let result = scatter::run(&s.dataset, 100);
    let mut rendered = result.render();
    rendered.push_str(&format!(
        "top users dominate the fan axis: {}\n",
        result.top_users_dominate()
    ));
    vec![Artifact::new("scatter", rendered, &result)]
}

fn run_intext(s: &Synthesis) -> Vec<Artifact> {
    let result = intext::run(s, PROMOTION_THRESHOLD);
    let ok = result.violations.is_empty();
    vec![Artifact::new("intext", result.render(), &result).with_ok(ok)]
}

fn run_decay(s: &Synthesis) -> Vec<Artifact> {
    let result = decay::run(&s.sim, 2 * digg_sim::time::DAY, 72);
    vec![Artifact::new("decay", result.render(), &result)]
}

/// Every experiment, in report order.
pub static REGISTRY: &[ExperimentSpec] = &[
    ExperimentSpec {
        name: "fig1",
        about: "vote time series of sampled front-page stories",
        runner: Runner::Synth {
            stories: sim_stories,
            run: run_fig1,
        },
    },
    ExperimentSpec {
        name: "fig2",
        about: "final-vote histogram and per-user activity distributions",
        runner: Runner::Synth {
            stories: all_records,
            run: run_fig2,
        },
    },
    ExperimentSpec {
        name: "fig3",
        about: "story influence and cascade-size histograms",
        runner: Runner::Synth {
            stories: fp,
            run: run_fig3,
        },
    },
    ExperimentSpec {
        name: "fig4",
        about: "final votes vs early in-network votes (inverse relationship)",
        runner: Runner::Synth {
            stories: fp,
            run: run_fig4,
        },
    },
    ExperimentSpec {
        name: "fig5",
        about: "C4.5 interestingness tree and cross-validation",
        runner: Runner::Synth {
            stories: fp,
            run: run_fig5,
        },
    },
    ExperimentSpec {
        name: "prediction",
        about: "upcoming-queue holdout precision vs the promoter",
        runner: Runner::Synth {
            stories: all_records,
            run: run_prediction,
        },
    },
    ExperimentSpec {
        name: "scatter",
        about: "friends vs fans scatter with top users highlighted",
        runner: Runner::Synth {
            stories: |s| s.dataset.network.user_count(),
            run: run_scatter,
        },
    },
    ExperimentSpec {
        name: "intext",
        about: "section-3 in-text statistics and dataset invariants",
        runner: Runner::Synth {
            stories: sim_stories,
            run: run_intext,
        },
    },
    ExperimentSpec {
        name: "decay",
        about: "post-promotion interest decay (Wu-Huberman half-life)",
        runner: Runner::Synth {
            stories: sim_stories,
            run: run_decay,
        },
    },
    ExperimentSpec {
        name: "sim_sweep",
        about: "parallel (config, seed) simulator sweep + tick-loop equivalence",
        runner: Runner::Standalone {
            run: crate::sweeps::run_sim_sweep,
        },
    },
    ExperimentSpec {
        name: "epi_sweep",
        about: "parallel SIR/cascade sweep on the event kernel + scan equivalence",
        runner: Runner::Standalone {
            run: crate::sweeps::run_epi_sweep,
        },
    },
    ExperimentSpec {
        name: "graph_scale",
        about: "million-user CSR build (serial vs sharded) + degree metrics + sweep batch",
        runner: Runner::Standalone {
            run: crate::scale::run_graph_scale,
        },
    },
    ExperimentSpec {
        name: "incr_sweep",
        about: "per-vote incremental analytics vs batch re-sweep (speedup + checkpoint equality)",
        runner: Runner::Standalone {
            run: crate::incr::run_incr_sweep,
        },
    },
    ExperimentSpec {
        name: "mmap_sweep",
        about: "mmap-backed CSR snapshot: O(1) load, bit-identity vs in-memory, out-of-core sweeps",
        runner: Runner::Standalone {
            run: crate::mmap::run_mmap_sweep,
        },
    },
    ExperimentSpec {
        name: "checkpoint_sweep",
        about: "kill-and-recover supervised sweep (byte-identity) + checkpoint overhead + snapshot scale",
        runner: Runner::Standalone {
            run: crate::checkpoint::run_checkpoint_sweep,
        },
    },
    ExperimentSpec {
        name: "degradation_sweep",
        about: "predictor precision/recall decay vs injected scrape-fault rates",
        runner: Runner::Standalone {
            run: crate::degradation::run_degradation_sweep,
        },
    },
    ExperimentSpec {
        name: "chaos_sweep",
        about: "full chaos-matrix drill: stalls, corrupt frames, torn checkpoints — recovered rows byte-identical, lenient degradation",
        runner: Runner::Standalone {
            run: crate::chaos::run_chaos_sweep,
        },
    },
];

/// Look up an experiment by name.
pub fn find(name: &str) -> Option<&'static ExperimentSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Run one experiment: time the runner, emit every artifact, record a
/// [`RunRecord`]. Returns whether all artifacts passed.
///
/// The shared synthesis is built lazily: standalone experiments (and
/// `--list`, which never gets here) do not trigger it.
pub fn run_spec(spec: &ExperimentSpec) -> bool {
    let t0 = stopwatch();
    let (artifacts, stories, unit) = match spec.runner {
        Runner::Synth { stories, run } => {
            let synthesis = shared_synthesis();
            (run(synthesis), stories(synthesis), "stories")
        }
        Runner::Standalone { run } => {
            let (artifacts, scenarios) = run(seed_from_env());
            (artifacts, scenarios, "scenarios")
        }
    };
    let wall = t0.elapsed();
    lock(&RUNS).push(RunRecord {
        experiment: spec.name.to_string(),
        wall_ms: wall.as_secs_f64() * 1e3,
        stories,
        unit,
        stories_per_sec: stories as f64 / wall.as_secs_f64().max(1e-9),
    });
    let mut ok = true;
    for a in &artifacts {
        emit(&a.name, &a.rendered, &a.payload);
        ok &= a.ok;
    }
    ok
}

#[derive(Serialize)]
struct BenchSummary {
    seed: u64,
    threads: usize,
    runs: Vec<RunRecord>,
    baseline: Vec<crate::baseline::BaselineRecord>,
    scale: Vec<ScaleRecord>,
    /// Predictor-decay rows from `degradation_sweep`. Omitted when the
    /// experiment did not run, so every other experiment's summary
    /// stays byte-identical to before the field existed.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    degradation: Vec<crate::degradation::DegradationRecord>,
}

/// Write `bench_summary.json` (wall-times, throughput, baseline
/// speedups) into `DIGG_RESULTS_DIR`, or the working directory when it
/// is unset. The write is atomic (`*.tmp` + rename): a crash or a
/// concurrent reader never sees a half-written summary.
pub fn write_bench_summary() {
    let summary = BenchSummary {
        seed: seed_from_env(),
        threads: digg_core::worker_threads(),
        runs: lock(&RUNS).clone(),
        baseline: lock(&BASELINES).clone(),
        scale: lock(&SCALE).clone(),
        degradation: lock(&DEGRADATION).clone(),
    };
    let dir = std::env::var("DIGG_RESULTS_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("bench_summary.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match serde_json::to_vec_pretty(&summary) {
        Ok(json) => match crate::write_atomic(&path, &json) {
            Ok(()) => eprintln!("[digg-bench] wrote {}", path.display()),
            Err(e) => eprintln!("[digg-bench] cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("[digg-bench] cannot serialize bench summary: {e}"),
    }
}

/// Entry point for the thin per-experiment binaries: run `name` on the
/// shared synthesis, write the bench summary, and exit non-zero when
/// an artifact fails its checks (e.g. intext violations).
pub fn main_for(name: &str) {
    let Some(spec) = find(name) else {
        eprintln!("unknown experiment {name:?}; known experiments:");
        for s in REGISTRY {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };
    let ok = run_spec(spec);
    write_bench_summary();
    if !ok {
        std::process::exit(1);
    }
}

/// Entry point for the full-report binary: every experiment in
/// registry order on one shared synthesis.
pub fn main_for_all() {
    println!("=== Reproduction report: Lerman & Galstyan, WOSN'08 ===\n");
    let mut ok = true;
    for spec in REGISTRY {
        ok &= run_spec(spec);
    }
    write_bench_summary();
    if !ok {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for spec in REGISTRY {
            assert!(std::ptr::eq(find(spec.name).unwrap(), spec));
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn artifact_ok_flag_round_trips() {
        let a = Artifact::new("t", "body".into(), &42u32);
        assert!(a.ok);
        assert!(!a.with_ok(false).ok);
    }

    #[test]
    fn degradation_section_is_omitted_when_empty() {
        // The summary field uses `skip_serializing_if`, so runs that
        // never touch degradation_sweep keep their summary unchanged.
        #[derive(Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Summary {
            seed: u64,
            #[serde(skip_serializing_if = "Vec::is_empty")]
            degradation: Vec<u32>,
        }
        let empty = Summary {
            seed: 1,
            degradation: vec![],
        };
        let json = serde_json::to_string(&empty).unwrap();
        assert!(!json.contains("degradation"), "field not skipped: {json}");
        // An absent key deserializes back to the default (empty) vec.
        assert_eq!(serde_json::from_str::<Summary>(&json).unwrap(), empty);
        let full = Summary {
            seed: 1,
            degradation: vec![7],
        };
        let json = serde_json::to_string(&full).unwrap();
        assert!(json.contains("degradation"));
        assert_eq!(serde_json::from_str::<Summary>(&json).unwrap(), full);
    }
}
