//! The `graph_scale` experiment: the repo's first scale-trajectory
//! numbers (ISSUE 3 / ROADMAP north star).
//!
//! Builds a large fan/friend graph — `DIGG_SCALE_USERS` users
//! (default one million) at ~10 watch edges per user — three ways from
//! the same shuffled raw edge list: the serial
//! [`GraphBuilder::build`], the sharded
//! [`GraphBuilder::build_parallel`] at the worker fan-out, and the
//! sharded path pinned to one thread. The parallel results must be
//! **bit-identical** to the serial graph (that equality is the
//! artifact's pass/fail flag); the timings become `scale` rows in
//! `bench_summary.json` — build edges/sec, sweep votes/sec — plus a
//! `graph_build` baseline row with the serial-vs-parallel speedup.
//!
//! On top of the built graph the runner executes the paper's two
//! workload shapes: degree metrics (max fans / mean out-degree / top
//! user, the `fans1` machinery) and a batch of story sweeps through
//! [`digg_core::sweep_map`] — so votes/sec is measured against the
//! same CSR rows the analytics engine streams in production.
//!
//! The artifact payload is **timing-free and thread-invariant**
//! (equality verdict, degree summary, sweep checksums); rates live in
//! the rendered text and the summary records, like every other
//! experiment here.

use crate::baseline::BaselineRecord;
use crate::registry::{record_baselines, record_scale, Artifact, ScaleRecord};
use crate::timing::time_ms;
use des_core::StreamRng;
use digg_core::worker_threads;
use rand::Rng;
use social_graph::{GraphBuilder, UserId};

/// Stream salts for the deterministic workload generators.
const EDGE_STREAM: u64 = 0x0053_4341_4c45_5f45; // "SCALE_E"
const SHUF_STREAM: u64 = 0x0053_4341_4c45_5f53; // "SCALE_S"
const STORY_STREAM: u64 = 0x0053_4341_4c45_5f56; // "SCALE_V"

/// Workload dimensions, scaled off `DIGG_SCALE_USERS`.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ScaleParams {
    /// Users in the graph (`DIGG_SCALE_USERS`, default 1,000,000).
    pub users: usize,
    /// Mean watch edges per user in the generated edge list.
    pub avg_degree: usize,
    /// Stories in the sweep batch.
    pub stories: usize,
    /// Chronological voters per story.
    pub votes_per_story: usize,
}

impl ScaleParams {
    /// Dimensions from the environment: `DIGG_SCALE_USERS` users
    /// (≥ 1,000 enforced so the harness always exercises the sharded
    /// path), one sweep story per 100 users within `[100, 10_000]`.
    pub fn from_env() -> ScaleParams {
        let users = std::env::var("DIGG_SCALE_USERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1_000_000)
            .max(1_000);
        ScaleParams {
            users,
            avg_degree: 10,
            stories: (users / 100).clamp(100, 10_000),
            votes_per_story: 100,
        }
    }
}

/// The timing-free `graph_scale` artifact payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GraphScalePayload {
    /// Users in the graph.
    pub users: usize,
    /// Raw (pre-dedup) edges fed to every builder.
    pub raw_edges: usize,
    /// Deduplicated edges in the built graph.
    pub edges: usize,
    /// Whether both parallel builds were bit-identical to the serial
    /// build — the experiment's pass/fail condition.
    pub parallel_identical: bool,
    /// Largest fan count (the paper's `fans1` for the top user).
    pub max_fans: usize,
    /// The user holding `max_fans`.
    pub top_user: u32,
    /// Mean out-degree of the built graph.
    pub mean_out_degree: f64,
    /// Total in-network votes across the sweep batch (checksum; also
    /// pins thread-invariance of the sweep results).
    pub in_network_votes: u64,
    /// Total final influence across the sweep batch (checksum).
    pub final_influence: u64,
}

/// Deterministic raw edge list: per-row skip-sampling on `StreamRng`
/// counter streams (thread-invariant by construction), then one
/// Fisher–Yates pass so the builders see scrape-order chaos rather
/// than presorted rows.
pub fn scale_edge_list(
    seed: u64,
    users: usize,
    avg_degree: usize,
    threads: usize,
) -> Vec<(UserId, UserId)> {
    let p = (avg_degree as f64 / users as f64).min(1.0);
    let lq = (1.0 - p).ln();
    let idx: Vec<usize> = (0..users).collect();
    let rows: Vec<Vec<UserId>> = des_core::par_map(&idx, threads, |&a| {
        let mut rng = StreamRng::keyed(seed, &[EDGE_STREAM, a as u64]);
        let mut row = Vec::with_capacity(avg_degree + avg_degree / 2);
        let mut col: u64 = 0;
        loop {
            let u: f64 = 1.0 - rng.random::<f64>();
            let skip = (u.ln() / lq).floor() as u64;
            col = col.saturating_add(skip).saturating_add(1);
            if col > users as u64 {
                break;
            }
            let c = (col - 1) as usize;
            if c != a {
                row.push(UserId::from_index(c));
            }
        }
        row
    });
    let mut edges: Vec<(UserId, UserId)> = Vec::with_capacity(users * avg_degree);
    for (a, row) in rows.iter().enumerate() {
        let a = UserId::from_index(a);
        edges.extend(row.iter().map(|&b| (a, b)));
    }
    let mut rng = StreamRng::keyed(seed, &[SHUF_STREAM]);
    for i in (1..edges.len()).rev() {
        let j = rng.random_range(0..=i);
        edges.swap(i, j);
    }
    edges
}

/// Deterministic sweep batch: `stories` voter lists of distinct users.
pub fn story_batch(seed: u64, params: &ScaleParams) -> Vec<Vec<UserId>> {
    (0..params.stories)
        .map(|i| {
            let mut rng = StreamRng::keyed(seed, &[STORY_STREAM, i as u64]);
            let mut voters: Vec<UserId> = Vec::with_capacity(params.votes_per_story);
            while voters.len() < params.votes_per_story {
                let v = UserId::from_index(rng.random_range(0..params.users));
                if !voters.contains(&v) {
                    voters.push(v);
                }
            }
            voters
        })
        .collect()
}

/// Builder primed with the scale edge list (shared with `mmap_sweep`).
pub fn builder_from(users: usize, edges: &[(UserId, UserId)]) -> GraphBuilder {
    let mut b = GraphBuilder::new(users);
    b.extend_watches(edges.iter().copied());
    b
}

/// Batch story sweeps against any [`FanView`] graph — the in-memory
/// CSR here, the mmap-backed [`social_graph::GraphMap`] in
/// `mmap_sweep` — returning the `(in-network, influence)` checksums.
pub fn sweep_totals<G: social_graph::FanView + Sync>(
    graph: &G,
    stories: &[Vec<UserId>],
    threads: usize,
) -> (u64, u64) {
    // The fallible fan-out: a panicking shard surfaces as an
    // aggregated WorkerPanic naming the failed shards instead of
    // poisoning a join handle mid-batch.
    let per_story = digg_core::try_sweep_map(graph, stories, threads, |sw, voters| {
        let s = sw.sweep(graph, voters);
        (
            s.in_network_count_within(voters.len()) as u64,
            s.influence_after(voters.len()) as u64,
        )
    })
    .unwrap_or_else(|e| panic!("graph_scale sweep worker panicked: {e}"));
    per_story
        .into_iter()
        .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
}

/// The `graph_scale` standalone experiment.
pub fn run_graph_scale(seed: u64) -> (Vec<Artifact>, usize) {
    let params = ScaleParams::from_env();
    let threads = worker_threads();

    let (edges, gen_ms) =
        time_ms(|| scale_edge_list(seed, params.users, params.avg_degree, threads));
    let raw_edges = edges.len();

    // The same shuffled list through all three build paths.
    let (serial_graph, serial_ms) = time_ms(|| builder_from(params.users, &edges).build());
    let (par_graph, par_ms) =
        time_ms(|| builder_from(params.users, &edges).build_parallel(threads));
    let (par1_graph, par1_ms) = time_ms(|| builder_from(params.users, &edges).build_parallel(1));
    let parallel_identical = par_graph == serial_graph && par1_graph == serial_graph;
    drop(par1_graph);
    drop(serial_graph);
    drop(edges);
    let graph = par_graph;

    // Degree metrics: the fans1 machinery at scale.
    let ((max_fans, top_user, mean_out_degree), degree_ms) = time_ms(|| {
        let fans = social_graph::metrics::fan_counts(&graph);
        let (top, max) = fans
            .iter()
            .enumerate()
            .max_by_key(|&(i, &f)| (f, std::cmp::Reverse(i)))
            .map(|(i, &f)| (social_graph::UserId::from_index(i).0, f as usize))
            .unwrap_or((0, 0));
        let mean = graph.edge_count() as f64 / graph.user_count().max(1) as f64;
        (max, top, mean)
    });

    // Story sweeps: the paper's per-story analytics workload.
    let stories = story_batch(seed, &params);
    let total_votes = (params.stories * params.votes_per_story) as f64;
    let ((in_network_votes, final_influence), sweep_ms) =
        time_ms(|| sweep_totals(&graph, &stories, threads));
    let ((in1, fi1), sweep1_ms) = time_ms(|| sweep_totals(&graph, &stories, 1));
    let sweeps_invariant = (in1, fi1) == (in_network_votes, final_influence);

    let build_speedup = serial_ms / par_ms.max(1e-9);
    let payload = GraphScalePayload {
        users: params.users,
        raw_edges,
        edges: graph.edge_count(),
        parallel_identical,
        max_fans,
        top_user,
        mean_out_degree,
        in_network_votes,
        final_influence,
    };

    record_scale(vec![
        ScaleRecord {
            name: "graph_build_serial".into(),
            users: params.users,
            edges: raw_edges,
            wall_ms: serial_ms,
            per_sec: raw_edges as f64 / (serial_ms / 1e3).max(1e-9),
            unit: "edges",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            name: "graph_build_parallel".into(),
            users: params.users,
            edges: raw_edges,
            wall_ms: par_ms,
            per_sec: raw_edges as f64 / (par_ms / 1e3).max(1e-9),
            unit: "edges",
            speedup_vs_serial: Some(build_speedup),
        },
        ScaleRecord {
            name: "story_sweeps".into(),
            users: params.users,
            edges: graph.edge_count(),
            wall_ms: sweep_ms,
            per_sec: total_votes / (sweep_ms / 1e3).max(1e-9),
            unit: "votes",
            speedup_vs_serial: Some(sweep1_ms / sweep_ms.max(1e-9)),
        },
    ]);
    record_baselines(vec![BaselineRecord::new(
        "graph_build",
        serial_ms,
        par_ms,
        par1_ms,
    )]);

    let mut rendered = format!(
        "Graph scale harness ({} users, {} raw edges, {} threads)\n",
        params.users, raw_edges, threads
    );
    rendered.push_str(&format!(
        "edge list generated in {gen_ms:.1} ms (sharded per-row streams)\n"
    ));
    rendered.push_str(&format!(
        "build: serial {serial_ms:.1} ms, parallel {par_ms:.1} ms ({build_speedup:.2}x), parallel@1t {par1_ms:.1} ms — {}\n",
        if parallel_identical { "bit-identical" } else { "DIVERGED" }
    ));
    rendered.push_str(&format!(
        "build rate: {:.2}M edges/sec parallel, {:.2}M edges/sec serial\n",
        raw_edges as f64 / (par_ms / 1e3).max(1e-9) / 1e6,
        raw_edges as f64 / (serial_ms / 1e3).max(1e-9) / 1e6,
    ));
    rendered.push_str(&format!(
        "graph: {} edges after dedup, mean out-degree {mean_out_degree:.2}, top user u{top_user} with {max_fans} fans ({degree_ms:.1} ms degree pass)\n",
        payload.edges
    ));
    rendered.push_str(&format!(
        "sweeps: {} stories x {} votes in {sweep_ms:.1} ms ({:.2}M votes/sec), {} in-network votes, influence checksum {} — {}\n",
        params.stories,
        params.votes_per_story,
        total_votes / (sweep_ms / 1e3).max(1e-9) / 1e6,
        in_network_votes,
        final_influence,
        if sweeps_invariant { "thread-invariant" } else { "DIVERGED" }
    ));

    let ok = parallel_identical && sweeps_invariant;
    (
        vec![Artifact::new("graph_scale", rendered, &payload).with_ok(ok)],
        params.stories,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ScaleParams {
        ScaleParams {
            users: 3_000,
            avg_degree: 6,
            stories: 40,
            votes_per_story: 25,
        }
    }

    #[test]
    fn edge_list_is_thread_invariant_and_loop_free() {
        let one = scale_edge_list(5, 2_000, 5, 1);
        for threads in [2, 8] {
            assert_eq!(scale_edge_list(5, 2_000, 5, threads), one);
        }
        assert!(one.iter().all(|&(a, b)| a != b));
        let expected = 2_000.0 * 5.0;
        assert!(
            (one.len() as f64 - expected).abs() < 5.0 * expected.sqrt() + 50.0,
            "raw edges {} vs expected {expected}",
            one.len()
        );
    }

    #[test]
    fn sweep_totals_are_thread_invariant() {
        let p = small_params();
        let edges = scale_edge_list(9, p.users, p.avg_degree, 2);
        let g = builder_from(p.users, &edges).build_parallel(2);
        assert_eq!(g, builder_from(p.users, &edges).build());
        let stories = story_batch(9, &p);
        assert!(stories.iter().all(|s| s.len() == p.votes_per_story));
        let serial = sweep_totals(&g, &stories, 1);
        for threads in [2, 8] {
            assert_eq!(sweep_totals(&g, &stories, threads), serial);
        }
    }
}
