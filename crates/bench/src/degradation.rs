//! The `degradation_sweep` experiment: how gracefully does the §5.2
//! predictor degrade as scrape faults accumulate?
//!
//! Each cell of the sweep takes the *same* clean small-scale synthesis,
//! injects faults at one rate with [`FaultPlan::degraded`] (transient
//! fetch failures, truncated voter lists, dropped/partial fan lists,
//! duplicated and reordered votes), repairs what it can through
//! lenient ingestion, and runs the train-and-holdout pipeline on the
//! surviving records. The per-rate rows — records kept/quarantined,
//! fan coverage, holdout precision/recall/F1 — go into
//! `bench_summary.json` as the `degradation` section, so the decay
//! curve is tracked run over run like every other bench number.
//!
//! Fault injection draws from per-entity [`des_core::StreamRng`]
//! streams, so each cell is **bit-reproducible** across runs and
//! thread counts; the rate-0 cell is the identity (the clean pipeline,
//! byte for byte). The experiment re-runs one degraded cell and
//! compares, and fails its own artifact if the replay diverges.
//!
//! The cell fan-out is the robustness path end to end: cells run
//! through [`digg_core::try_par_map`] with a per-cell `catch_unwind`,
//! and the sweep always carries one deliberately poisoned cell — the
//! self-check that a panicking worker fails only its own cell while
//! the batch completes.

use crate::registry::{record_degradation, Artifact};
use crate::timing::time_ms;
use digg_core::features::{FanCoverage, INTERESTINGNESS_THRESHOLD};
use digg_core::pipeline::{run_pipeline_with_coverage, PipelineConfig};
use digg_data::faults::FaultPlan;
use digg_data::ingest::ingest_lenient;
use digg_data::synth::{synthesize_small, SynthConfig, Synthesis};
use digg_data::DiggDataset;
use digg_sim::scenario::PROMOTION_THRESHOLD;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The injected fault rates, one sweep cell each. Rate 0 pins the
/// clean baseline inside the same machinery.
pub const FAULT_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Panic message of the deliberately poisoned self-check cell.
const POISON_MESSAGE: &str = "deliberate degradation_sweep poison cell";

/// One row of the decay curve: dataset damage on the left, predictor
/// quality on the right.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DegradationRecord {
    /// Injected fault rate (drives every [`FaultPlan::degraded`] knob).
    pub rate: f64,
    /// Records in the clean scrape.
    pub records_seen: usize,
    /// Records surviving fetch faults and lenient ingestion.
    pub records_kept: usize,
    /// Records quarantined by lenient ingestion.
    pub records_quarantined: usize,
    /// Kept records that needed at least one repair.
    pub records_repaired: usize,
    /// Stories lost to fetch failures after retries.
    pub fetch_failed_stories: usize,
    /// Surviving fraction of fan links after fan-list faults.
    pub fan_link_coverage: f64,
    /// Fraction of distinct voters with at least one observed fan.
    pub fan_coverage: f64,
    /// Fan coverage over the training (front-page) records.
    pub training_coverage: f64,
    /// Fan coverage over the selected holdout records.
    pub holdout_coverage: f64,
    /// Holdout stories the pipeline could evaluate.
    pub holdout_stories: usize,
    /// Holdout precision, when anything was predicted positive.
    pub precision: Option<f64>,
    /// Holdout recall, when the holdout had positives.
    pub recall: Option<f64>,
    /// Holdout F1, when precision and recall are defined.
    pub f1: Option<f64>,
}

/// Outcome of one fanned-out cell: a decay row, or the panic message
/// of a cell that died (only the poison self-check, in a healthy run).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RateCell {
    /// The cell completed.
    Row(DegradationRecord),
    /// The cell panicked; the rest of the sweep is unaffected.
    Panicked(String),
}

impl RateCell {
    fn row(&self) -> Option<&DegradationRecord> {
        match self {
            RateCell::Row(r) => Some(r),
            RateCell::Panicked(_) => None,
        }
    }
}

/// The timing-free `degradation_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DegradationSweepPayload {
    /// One row per fault rate, in [`FAULT_RATES`] order.
    pub rows: Vec<DegradationRecord>,
    /// The poisoned cell panicked alone and every real cell survived.
    pub poison_isolated: bool,
    /// Re-running a degraded cell reproduced its row bit for bit.
    pub reproducible: bool,
}

/// Interestingness threshold for the sweep, chosen from the *clean*
/// sample's median final vote count — across both the front-page and
/// upcoming samples, so the holdout (drawn from upcoming) contains
/// positives and the precision/recall columns are defined. Every
/// fault rate judges against the same bar.
fn interestingness_threshold(ds: &DiggDataset) -> u32 {
    let mut finals: Vec<u32> = ds
        .front_page
        .iter()
        .chain(&ds.upcoming)
        .filter_map(|r| r.final_votes)
        .collect();
    if finals.is_empty() {
        return INTERESTINGNESS_THRESHOLD;
    }
    finals.sort_unstable();
    finals[finals.len() / 2].max(1)
}

/// Pipeline configuration shared by every cell, derived from the clean
/// dataset (the fault rate must be the only thing that varies).
fn pipeline_config(clean: &DiggDataset) -> PipelineConfig {
    PipelineConfig {
        threshold: interestingness_threshold(clean),
        top_user_rank: clean.top_users.len().max(100),
        cv_folds: 5,
        ..PipelineConfig::default()
    }
}

/// Run one cell: inject at `rate`, ingest leniently, evaluate.
pub fn degrade_cell(synthesis: &Synthesis, rate: f64, seed: u64) -> DegradationRecord {
    let plan = FaultPlan::degraded(rate, seed);
    let (faulted, log) = plan.apply(&synthesis.dataset);
    let (ds, report) = ingest_lenient(faulted, PROMOTION_THRESHOLD);
    let cfg = pipeline_config(&synthesis.dataset);
    let sim = &synthesis.sim;
    let out = run_pipeline_with_coverage(&ds, &cfg, &|r| sim.story(r.story).is_front_page());
    let (training_coverage, holdout_coverage, holdout_stories, precision, recall, f1) = match &out {
        Some((result, coverage)) => (
            coverage.training.fraction(),
            coverage.holdout.fraction(),
            result.holdout_stories,
            result.holdout.precision(),
            result.holdout.recall(),
            result.holdout.f1(),
        ),
        // Too degraded to train or select a holdout: coverage is still
        // measurable over what ingestion kept.
        None => (
            FanCoverage::compute(ds.front_page.iter(), &ds.network).fraction(),
            FanCoverage::compute(ds.upcoming.iter(), &ds.network).fraction(),
            0,
            None,
            None,
            None,
        ),
    };
    DegradationRecord {
        rate,
        records_seen: report.records_seen + log.fetch_failed_stories,
        records_kept: report.records_kept,
        records_quarantined: report.quarantined.len(),
        records_repaired: report.records_repaired,
        fetch_failed_stories: log.fetch_failed_stories,
        fan_link_coverage: log.fan_link_coverage(),
        fan_coverage: report.fan_coverage,
        training_coverage,
        holdout_coverage,
        holdout_stories,
        precision,
        recall,
        f1,
    }
}

/// Fan the rate cells (plus, when `poison` is set, one deliberately
/// panicking cell at the end) across `threads` workers. Each cell runs
/// under its own `catch_unwind` inside [`digg_core::try_par_map`]: the
/// poison cell reports [`RateCell::Panicked`] in position while every
/// real cell completes.
pub fn sweep_cells(
    synthesis: &Synthesis,
    rates: &[f64],
    seed: u64,
    threads: usize,
    poison: bool,
) -> Vec<RateCell> {
    let cells: Vec<Option<f64>> = rates
        .iter()
        .copied()
        .map(Some)
        .chain(poison.then_some(None))
        .collect();
    let outcomes = digg_core::try_par_map(&cells, threads, |&cell| {
        // AssertUnwindSafe: a panicking cell's partial state is
        // dropped with the unwind; only the RateCell value escapes.
        let guarded = catch_unwind(AssertUnwindSafe(|| match cell {
            Some(rate) => degrade_cell(synthesis, rate, seed),
            None => panic!("{POISON_MESSAGE}"),
        }));
        match guarded {
            Ok(row) => RateCell::Row(row),
            Err(p) => RateCell::Panicked(des_core::panic_message(p.as_ref())),
        }
    });
    match outcomes {
        Ok(outcomes) => outcomes,
        Err(e) => panic!("degradation sweep worker panicked outside its cell: {e}"),
    }
}

/// The `degradation_sweep` standalone experiment.
pub fn run_degradation_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let threads = digg_core::worker_threads();
    let synthesis = synthesize_small(&SynthConfig::small(seed));
    let (cells, sweep_ms) = time_ms(|| sweep_cells(&synthesis, &FAULT_RATES, seed, threads, true));

    let rows: Vec<DegradationRecord> = cells.iter().filter_map(|c| c.row()).cloned().collect();
    let poison_isolated = rows.len() == FAULT_RATES.len()
        && matches!(cells.last(), Some(RateCell::Panicked(m)) if m.contains(POISON_MESSAGE));
    // At rate 0 the fault layer must be the identity: nothing fetched
    // away, every fan link intact. (Ingest repairs are judged against
    // the scrape itself, not the fault layer, so they aren't part of
    // this check.)
    let baseline_clean = rows
        .first()
        .is_some_and(|r| r.fetch_failed_stories == 0 && r.fan_link_coverage == 1.0);
    // Determinism self-check: replay the heaviest cell and compare.
    let replay = degrade_cell(&synthesis, FAULT_RATES[FAULT_RATES.len() - 1], seed);
    let reproducible = rows.last() == Some(&replay);

    let payload = DegradationSweepPayload {
        rows: rows.clone(),
        poison_isolated,
        reproducible,
    };

    let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "n/a".into());
    let mut rendered = format!(
        "Degradation sweep ({} fault rates + 1 poison cell, {threads} threads, {sweep_ms:.1} ms)\n",
        FAULT_RATES.len()
    );
    rendered
        .push_str("  rate   kept/seen  quar  repair  fans   cover  holdout  prec  recall  f1\n");
    for r in &rows {
        rendered.push_str(&format!(
            "  {:<5.2} {:>5}/{:<5} {:>4} {:>6}  {:>5.2} {:>6.2} {:>8}  {:>4}  {:>6}  {:>4}\n",
            r.rate,
            r.records_kept,
            r.records_seen,
            r.records_quarantined,
            r.records_repaired,
            r.fan_link_coverage,
            r.fan_coverage,
            r.holdout_stories,
            fmt_opt(r.precision),
            fmt_opt(r.recall),
            fmt_opt(r.f1),
        ));
    }
    rendered.push_str(&format!(
        "poison cell isolated: {poison_isolated}; degraded cell replay bit-identical: {reproducible}; clean baseline untouched: {baseline_clean}\n"
    ));

    let ok = poison_isolated && reproducible && baseline_clean;
    let scenarios = cells.len();
    record_degradation(rows);
    (
        vec![Artifact::new("degradation_sweep", rendered, &payload).with_ok(ok)],
        scenarios,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use digg_data::scrape::ScrapeConfig;
    use digg_data::synth::synthesize_with;
    use digg_sim::population::{Population, PopulationConfig};
    use digg_sim::time::DAY;
    use digg_sim::SimConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_synthesis() -> Synthesis {
        let cfg = SynthConfig {
            seed: 9,
            scrape: ScrapeConfig {
                front_page_stories: 40,
                upcoming_stories: 120,
                top_users: 150,
                network_cutoff: 1000,
                network_scraped: 1600,
                ..ScrapeConfig::default()
            },
            min_promotions: 20,
            min_scrape_days: 0,
            saturation_days: 1,
            max_minutes: 3 * DAY,
        };
        let sim_cfg = SimConfig::toy(9);
        let mut rng = StdRng::seed_from_u64(9);
        let pop = Population::generate(&mut rng, &PopulationConfig::toy(sim_cfg.users));
        synthesize_with(&cfg, sim_cfg, pop)
    }

    #[test]
    fn rate_zero_cell_is_the_untouched_baseline() {
        let s = toy_synthesis();
        let row = degrade_cell(&s, 0.0, 7);
        // The fault layer injected nothing...
        assert_eq!(row.rate, 0.0);
        assert_eq!(row.fetch_failed_stories, 0);
        assert_eq!(row.fan_link_coverage, 1.0);
        // ...so the cell is exactly lenient ingestion of the clean
        // scrape (the toy scrape has genuine out-of-network voters, so
        // repairs need not be zero — they must match the direct path).
        let (_, report) = ingest_lenient(s.dataset.clone(), PROMOTION_THRESHOLD);
        assert_eq!(row.records_kept, report.records_kept);
        assert_eq!(row.records_quarantined, report.quarantined.len());
        assert_eq!(row.records_repaired, report.records_repaired);
        assert_eq!(row.fan_coverage, report.fan_coverage);
    }

    #[test]
    fn cells_are_reproducible_and_poison_is_isolated() {
        let s = toy_synthesis();
        let rates = [0.0, 0.3];
        let one = sweep_cells(&s, &rates, 11, 1, true);
        assert_eq!(one.len(), 3);
        match &one[2] {
            RateCell::Panicked(m) => assert!(m.contains(POISON_MESSAGE), "message: {m}"),
            RateCell::Row(_) => panic!("poison cell completed"),
        }
        for cell in &one[..2] {
            assert!(cell.row().is_some(), "real cell panicked: {cell:?}");
        }
        // Bit-identical across thread counts and on replay.
        for threads in [2, 8] {
            assert_eq!(sweep_cells(&s, &rates, 11, threads, true), one);
        }
        assert_eq!(RateCell::Row(degrade_cell(&s, 0.3, 11)), one[1]);
    }

    #[test]
    fn faults_actually_degrade_the_dataset() {
        let s = toy_synthesis();
        let row = degrade_cell(&s, 0.5, 13);
        assert!(
            row.records_kept < row.records_seen || row.records_repaired > 0,
            "a 0.5 fault rate left the dataset untouched: {row:?}"
        );
        assert!(row.fan_link_coverage < 1.0);
        assert!((0.0..=1.0).contains(&row.fan_coverage));
        assert!((0.0..=1.0).contains(&row.training_coverage));
    }
}
