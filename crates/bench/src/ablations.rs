//! Ablation experiments (DESIGN.md ABL1–ABL4).
//!
//! * [`feature_ablation`] — which early features carry the signal
//!   (v10 alone vs fans1 alone vs both vs extended vs a Digg-style
//!   vote-count feature).
//! * [`window_sweep`] — prediction accuracy as the observation window
//!   grows (the paper's claim that 6–10 votes already suffice while
//!   Digg waits for ~40).
//! * [`promotion_ablation`] — pre- vs post-Sept-2006 promoter (raw
//!   threshold vs diversity-weighted) and its effect on front-page
//!   composition.
//! * [`epidemics_ablation`] — the future-work §6 program: epidemic
//!   thresholds on ER vs scale-free graphs; cascade invasion delay on
//!   modular graphs.
//! * [`observation_ablation`] — scrape fidelity: how robust are the
//!   Fig. 4 correlation and the classifier when the analysis network
//!   is only partially observed (missed fan-list pages)?

use digg_core::cascade::{has_enough_votes, in_network_count_within};
use digg_data::DiggDataset;
use digg_ml::c45::C45Params;
use digg_ml::crossval::cross_validate;
use digg_ml::data::{Instance, MlDataset};
use digg_sim::scenario;
use digg_sim::time::DAY;
use digg_sim::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

// ------------------------------------------------------------- ABL1

/// One feature-set's cross-validated accuracy.
#[derive(Debug, Clone, Serialize)]
pub struct FeatureRow {
    /// Feature-set label.
    pub features: String,
    /// Stories used.
    pub stories: usize,
    /// 10-fold CV accuracy.
    pub cv_accuracy: f64,
}

/// ABL1: train on the front-page sample with different feature sets.
pub fn feature_ablation(ds: &DiggDataset, threshold: u32, seed: u64) -> Vec<FeatureRow> {
    let g = &ds.network;
    // Collect per-story raw features once.
    struct Raw {
        v6: f64,
        v10: f64,
        v20: f64,
        fans1: f64,
        scraped: f64,
        label: bool,
    }
    let raws: Vec<Raw> = ds
        .front_page
        .iter()
        .filter(|r| has_enough_votes(&r.voters, 10))
        .filter_map(|r| {
            let label = r.is_interesting(threshold)?;
            Some(Raw {
                v6: in_network_count_within(g, &r.voters, 6) as f64,
                v10: in_network_count_within(g, &r.voters, 10) as f64,
                v20: in_network_count_within(g, &r.voters, 20) as f64,
                fans1: g.fan_count(r.submitter) as f64,
                scraped: r.voters.len() as f64,
                label,
            })
        })
        .collect();
    type Extractor = Box<dyn Fn(&Raw) -> Vec<f64>>;
    let sets: Vec<(&str, Extractor, Vec<&str>)> = vec![
        ("v10 only", Box::new(|r: &Raw| vec![r.v10]), vec!["v10"]),
        (
            "fans1 only",
            Box::new(|r: &Raw| vec![r.fans1]),
            vec!["fans1"],
        ),
        (
            "v10 + fans1 (paper)",
            Box::new(|r: &Raw| vec![r.v10, r.fans1]),
            vec!["v10", "fans1"],
        ),
        (
            "v6 + v10 + v20 + fans1",
            Box::new(|r: &Raw| vec![r.v6, r.v10, r.v20, r.fans1]),
            vec!["v6", "v10", "v20", "fans1"],
        ),
        (
            "scraped vote count (Digg-style)",
            Box::new(|r: &Raw| vec![r.scraped]),
            vec!["votes"],
        ),
    ];
    let mut rows: Vec<FeatureRow> = sets
        .into_iter()
        .map(|(name, extract, attrs)| {
            let mut ml = MlDataset::new(attrs);
            for r in &raws {
                ml.push(Instance::new(extract(r), r.label));
            }
            let cv = cross_validate(&ml, &C45Params::default(), 10.min(ml.len()).max(2), seed);
            FeatureRow {
                features: name.to_string(),
                stories: ml.len(),
                cv_accuracy: cv.accuracy(),
            }
        })
        .collect();
    // Model baseline: Gaussian naive Bayes on the paper's features —
    // does the tree's interaction structure earn its keep over an
    // independence assumption?
    let mut ml = MlDataset::new(vec!["v10", "fans1"]);
    for r in &raws {
        ml.push(Instance::new(vec![r.v10, r.fans1], r.label));
    }
    rows.push(FeatureRow {
        features: "gaussian NB over v10 + fans1".to_string(),
        stories: ml.len(),
        cv_accuracy: nb_cv_accuracy(&ml, 10.min(ml.len()).max(2), seed),
    });
    rows.push(FeatureRow {
        features: "bagged C4.5 (25 trees) over v10 + fans1".to_string(),
        stories: ml.len(),
        cv_accuracy: bagging_cv_accuracy(&ml, 10.min(ml.len()).max(2), seed),
    });
    rows
}

/// Stratified-CV accuracy of a 25-tree bagged ensemble.
fn bagging_cv_accuracy(ml: &MlDataset, k: usize, seed: u64) -> f64 {
    use digg_ml::baselines::Classifier;
    use digg_ml::crossval::stratified_folds;
    use digg_ml::ensemble::BaggedTrees;
    use digg_ml::ConfusionMatrix;
    let fold = stratified_folds(ml, k, seed);
    let mut pooled = ConfusionMatrix::default();
    for f in 0..k {
        let train_idx: Vec<usize> = (0..ml.len()).filter(|i| fold[*i] != f).collect();
        let test_idx: Vec<usize> = (0..ml.len()).filter(|i| fold[*i] == f).collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let bag = BaggedTrees::train(
            &ml.subset(&train_idx),
            &C45Params::default(),
            25,
            seed ^ f as u64,
        );
        pooled.merge(&bag.evaluate(&ml.subset(&test_idx)));
    }
    pooled.accuracy()
}

/// Stratified-CV accuracy of Gaussian naive Bayes (folds shared with
/// the C4.5 runs via the same seed). Folds where either class is
/// absent from training fall back to the majority class.
fn nb_cv_accuracy(ml: &MlDataset, k: usize, seed: u64) -> f64 {
    use digg_ml::baselines::{Classifier, GaussianNb, MajorityClass};
    use digg_ml::crossval::stratified_folds;
    use digg_ml::ConfusionMatrix;
    let fold = stratified_folds(ml, k, seed);
    let mut pooled = ConfusionMatrix::default();
    for f in 0..k {
        let train_idx: Vec<usize> = (0..ml.len()).filter(|i| fold[*i] != f).collect();
        let test_idx: Vec<usize> = (0..ml.len()).filter(|i| fold[*i] == f).collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let train = ml.subset(&train_idx);
        let test = ml.subset(&test_idx);
        let cm = match GaussianNb::fit(&train) {
            Some(nb) => nb.evaluate(&test),
            None => MajorityClass::fit(&train).evaluate(&test),
        };
        pooled.merge(&cm);
    }
    pooled.accuracy()
}

/// Render ABL1.
pub fn render_feature_ablation(rows: &[FeatureRow]) -> String {
    let mut out =
        String::from("ABL1: feature ablation (10-fold CV accuracy on the front-page sample)\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<34} n={:<4} accuracy {:.3}\n",
            r.features, r.stories, r.cv_accuracy
        ));
    }
    out
}

// ------------------------------------------------------------- ABL3

/// One observation window's result.
#[derive(Debug, Clone, Serialize)]
pub struct WindowRow {
    /// Votes observed before predicting.
    pub window: usize,
    /// Qualifying stories.
    pub stories: usize,
    /// CV accuracy using (v_window, fans1).
    pub cv_accuracy: f64,
}

/// ABL3: how early is the signal available? Paper: 6–10 votes; Digg
/// itself waits for roughly 40.
pub fn window_sweep(ds: &DiggDataset, threshold: u32, seed: u64) -> Vec<WindowRow> {
    let g = &ds.network;
    [2usize, 4, 6, 10, 20, 30, 40]
        .iter()
        .map(|&w| {
            let mut ml = MlDataset::new(vec!["v_w", "fans1"]);
            for r in &ds.front_page {
                if !has_enough_votes(&r.voters, w) {
                    continue;
                }
                let Some(label) = r.is_interesting(threshold) else {
                    continue;
                };
                ml.push(Instance::new(
                    vec![
                        in_network_count_within(g, &r.voters, w) as f64,
                        g.fan_count(r.submitter) as f64,
                    ],
                    label,
                ));
            }
            let acc = if ml.len() >= 4 {
                cross_validate(&ml, &C45Params::default(), 10.min(ml.len()).max(2), seed).accuracy()
            } else {
                0.0
            };
            WindowRow {
                window: w,
                stories: ml.len(),
                cv_accuracy: acc,
            }
        })
        .collect()
}

/// Render ABL3.
pub fn render_window_sweep(rows: &[WindowRow]) -> String {
    let mut out =
        String::from("ABL3: observation-window sweep (v_w + fans1, 10-fold CV accuracy)\n");
    for r in rows {
        out.push_str(&format!(
            "  first {:>2} votes: n={:<4} accuracy {:.3}\n",
            r.window, r.stories, r.cv_accuracy
        ));
    }
    out
}

// ------------------------------------------------------------- ABL2

/// One promoter's front-page composition.
#[derive(Debug, Clone, Serialize)]
pub struct PromoterRow {
    /// Promoter name.
    pub promoter: String,
    /// Promotions over the run.
    pub promotions: u64,
    /// Fraction of promoted stories submitted by the top-100 users
    /// (by fans).
    pub top100_share: f64,
    /// Mean in-network votes within the first 10 among promoted
    /// stories.
    pub mean_v10: f64,
}

/// ABL2: run the reduced-scale scenario under the pre-Sept-2006
/// threshold promoter and under the diversity-weighted variant, and
/// compare front-page composition. Each run simulates `days` days.
pub fn promotion_ablation(seed: u64, days: u64) -> Vec<PromoterRow> {
    let kinds = [
        ("threshold (pre-2006-09)", scenario::june2006(seed).promoter),
        (
            "diversity (post-2006-09)",
            scenario::september2006(seed).promoter,
        ),
    ];
    kinds
        .into_iter()
        .map(|(name, kind)| {
            let (mut cfg, pop) = scenario::june2006_small(seed);
            cfg.promoter = kind;
            let ranking = pop.ranking();
            let top100: std::collections::HashSet<_> = ranking.into_iter().take(100).collect();
            let graph = pop.graph.clone();
            let mut sim = Sim::new(cfg, pop);
            sim.run(days * DAY);
            let promoted: Vec<_> = sim.stories().iter().filter(|s| s.is_front_page()).collect();
            let top_share = if promoted.is_empty() {
                0.0
            } else {
                promoted
                    .iter()
                    .filter(|s| top100.contains(&s.submitter))
                    .count() as f64
                    / promoted.len() as f64
            };
            let v10s: Vec<f64> = promoted
                .iter()
                .map(|s| {
                    let voters = s.voters_chronological();
                    in_network_count_within(&graph, &voters, 10) as f64
                })
                .collect();
            PromoterRow {
                promoter: name.to_string(),
                promotions: sim.metrics().promotions,
                top100_share: top_share,
                mean_v10: digg_stats::descriptive::mean(&v10s).unwrap_or(0.0),
            }
        })
        .collect()
}

/// Render ABL2.
pub fn render_promotion_ablation(rows: &[PromoterRow]) -> String {
    let mut out = String::from(
        "ABL2: promotion algorithm (reduced-scale scenario)\n  the diversity rule discounts in-network votes, so network-driven stories need broader support\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<26} promotions {:<5} top-100 share {:.2}  mean v10 {:.2}\n",
            r.promoter, r.promotions, r.top100_share, r.mean_v10
        ));
    }
    out
}

// ------------------------------------------------------------- ABL5

/// One partial-observation level.
#[derive(Debug, Clone, Serialize)]
pub struct ObservationRow {
    /// Fraction of watch edges visible to the analysis.
    pub edge_fraction: f64,
    /// Spearman correlation between v10 (computed on the partial
    /// network) and final votes.
    pub spearman_v10: f64,
    /// 10-fold CV accuracy of the (v10, fans1) tree on the partial
    /// network.
    pub cv_accuracy: f64,
}

/// ABL5: recompute the headline analyses against increasingly
/// incomplete networks. The paper's network was itself a partial
/// observation (crawled fan lists); this quantifies how much fidelity
/// the conclusions actually need.
pub fn observation_ablation(ds: &DiggDataset, threshold: u32, seed: u64) -> Vec<ObservationRow> {
    use digg_core::features::build_training_set;
    use digg_stats::correlation::spearman;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB15);
    [1.0f64, 0.8, 0.6, 0.4, 0.2]
        .iter()
        .map(|&p| {
            let net = social_graph::sampling::subsample_edges(&mut rng, &ds.network, p);
            // Fig. 4 correlation under the partial network.
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for r in &ds.front_page {
                if !has_enough_votes(&r.voters, 10) {
                    continue;
                }
                let Some(fin) = r.final_votes else { continue };
                xs.push(in_network_count_within(&net, &r.voters, 10) as f64);
                ys.push(f64::from(fin));
            }
            let rho = spearman(&xs, &ys).unwrap_or(f64::NAN);
            // Classifier under the partial network.
            let (ml, kept) = build_training_set(&ds.front_page, &net, threshold);
            let acc = if kept.len() >= 10 {
                cross_validate(&ml, &C45Params::default(), 10, seed).accuracy()
            } else {
                f64::NAN
            };
            ObservationRow {
                edge_fraction: p,
                spearman_v10: rho,
                cv_accuracy: acc,
            }
        })
        .collect()
}

/// Render ABL5.
pub fn render_observation_ablation(rows: &[ObservationRow]) -> String {
    let mut out = String::from(
        "ABL5: scrape fidelity (analyses recomputed on partially observed networks)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:>3.0}% of edges observed: spearman(v10, final) {:>6.3}   CV accuracy {:.3}\n",
            r.edge_fraction * 100.0,
            r.spearman_v10,
            r.cv_accuracy
        ));
    }
    out
}

// ------------------------------------------------------------- ABL4

/// Epidemic-threshold comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct EpidemicsRow {
    /// Substrate name.
    pub graph: String,
    /// Mean-field threshold `<k>/<k^2>`.
    pub mean_field: f64,
    /// Smallest swept beta with majority outbreaks.
    pub empirical: Option<f64>,
}

/// ABL4a: epidemic thresholds on ER vs scale-free graphs of equal
/// mean degree.
pub fn epidemics_ablation(seed: u64, n: usize) -> Vec<EpidemicsRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 3usize;
    let graphs = vec![
        (
            "erdos-renyi <k>=6".to_string(),
            social_graph::generators::erdos_renyi(&mut rng, n, 2.0 * m as f64 / n as f64),
        ),
        (
            "preferential attachment m=3".to_string(),
            social_graph::generators::preferential_attachment(&mut rng, n, m, 1.0),
        ),
    ];
    let betas = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.24];
    graphs
        .into_iter()
        .map(|(name, g)| {
            let mf = digg_epidemics::threshold::mean_field_threshold(&g).unwrap_or(f64::NAN);
            let pts = digg_epidemics::threshold::sweep(&mut rng, &g, &betas, 1.0, 40, 0.05);
            EpidemicsRow {
                graph: name,
                mean_field: mf,
                empirical: digg_epidemics::threshold::empirical_threshold(&pts, 0.01),
            }
        })
        .collect()
}

/// ABL4b: cascade invasion delay on a modular graph.
#[derive(Debug, Clone, Serialize)]
pub struct ModularCascadeRow {
    /// Activation threshold phi.
    pub phi: f64,
    /// Home-community saturation.
    pub home_saturation: f64,
    /// Step the cascade first entered the second community (`None`
    /// = contained).
    pub invasion_step: Option<u32>,
}

/// ABL4b: sweep the activation threshold on a two-community graph.
pub fn modular_cascade_ablation(seed: u64, n: usize) -> Vec<ModularCascadeRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = social_graph::generators::modular(&mut rng, n, 2, 0.2, 0.01);
    let blocks = digg_epidemics::cascade_model::block_members(n, 2);
    [0.05f64, 0.1, 0.15, 0.2, 0.3, 0.4]
        .iter()
        .map(|&phi| {
            let seeds = &blocks[0][..(n / 20).max(1)];
            let out = digg_epidemics::cascade_model::run(&g, seeds, phi, 500);
            ModularCascadeRow {
                phi,
                home_saturation: out.saturation(&blocks[0]),
                invasion_step: out.invasion_time(&blocks[1]),
            }
        })
        .collect()
}

/// Render ABL4.
pub fn render_epidemics(thresholds: &[EpidemicsRow], cascades: &[ModularCascadeRow]) -> String {
    let mut out = String::from(
        "ABL4: network structure and spreading (paper section 6 future work)\n  epidemic thresholds (SIR, gamma=1):\n",
    );
    for r in thresholds {
        out.push_str(&format!(
            "    {:<30} mean-field {:.4}  empirical {}\n",
            r.graph,
            r.mean_field,
            r.empirical
                .map(|b| format!("{b:.3}"))
                .unwrap_or_else(|| ">0.24".into()),
        ));
    }
    out.push_str("  threshold cascades on a 2-community modular graph:\n");
    for r in cascades {
        out.push_str(&format!(
            "    phi {:.2}: home saturation {:.2}, second community invaded at {}\n",
            r.phi,
            r.home_saturation,
            r.invasion_step
                .map(|t| format!("step {t}"))
                .unwrap_or_else(|| "never".into()),
        ));
    }
    out
}
