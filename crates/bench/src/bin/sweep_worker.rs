//! The sweep worker subprocess: serves [`digg_sim::supervisor`]
//! `CellRequest` frames over stdin/stdout until the supervisor closes
//! the pipe. Spawned by `run_sweep_supervised` — one worker per grid
//! shard — and re-spawned after a death, at which point it resumes the
//! interrupted cell from its last checkpoint.

fn main() {
    std::process::exit(digg_sim::supervisor::worker_main_stdio());
}
