//! Regenerate Fig. 3: (a) story influence histograms; (b) cascade
//! size histograms.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::fig3;

fn main() {
    let ds = &shared_synthesis().dataset;
    let a = fig3::run_a(ds);
    emit("fig3a", &a.render(), &a);
    let b = fig3::run_b(ds);
    emit("fig3b", &b.render(), &b);
}
