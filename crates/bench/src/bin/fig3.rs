//! Regenerate Fig. 3: (a) story influence histograms; (b) cascade
//! size histograms.

fn main() {
    digg_bench::registry::main_for("fig3");
}
