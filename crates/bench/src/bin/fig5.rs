//! Regenerate Fig. 5: the C4.5 tree over (v10, fans1) and its 10-fold
//! cross-validation (plus `fig5.dot` when persisting results).

fn main() {
    digg_bench::registry::main_for("fig5");
}
