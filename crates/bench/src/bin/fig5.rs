//! Regenerate Fig. 5: the C4.5 tree over (v10, fans1) and its 10-fold
//! cross-validation.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::fig5;
use digg_core::features::INTERESTINGNESS_THRESHOLD;
use digg_core::predictor::InterestingnessPredictor;
use digg_ml::c45::C45Params;

fn main() {
    let ds = &shared_synthesis().dataset;
    match fig5::run(ds, &C45Params::default(), 0x1e12) {
        Some(result) => {
            emit("fig5", &result.render(), &result);
            // Also write the tree as Graphviz DOT when persisting.
            if let (Ok(dir), Some(p)) = (
                std::env::var("DIGG_RESULTS_DIR"),
                InterestingnessPredictor::train(
                    &ds.front_page,
                    &ds.network,
                    INTERESTINGNESS_THRESHOLD,
                    &C45Params::default(),
                ),
            ) {
                let path = std::path::Path::new(&dir).join("fig5.dot");
                if std::fs::write(&path, p.tree().to_dot()).is_ok() {
                    eprintln!("[digg-bench] wrote {}", path.display());
                }
            }
        }
        None => eprintln!("fig5: no trainable stories in the dataset"),
    }
}
