//! Run the ablation experiments ABL1–ABL5 (see DESIGN.md §4) and
//! print their tables.
//!
//! Usage: `ablations [--skip-sims]` — `--skip-sims` omits the two
//! extra platform simulations of ABL2 (the slowest part).

use digg_bench::ablations::{
    epidemics_ablation, feature_ablation, modular_cascade_ablation, observation_ablation,
    promotion_ablation, render_epidemics, render_feature_ablation, render_observation_ablation,
    render_promotion_ablation, render_window_sweep, window_sweep,
};
use digg_bench::{emit, seed_from_env, shared_synthesis};
use digg_core::features::INTERESTINGNESS_THRESHOLD;

fn main() {
    let skip_sims = std::env::args().any(|a| a == "--skip-sims");
    let seed = seed_from_env();
    let ds = &shared_synthesis().dataset;

    let rows = feature_ablation(ds, INTERESTINGNESS_THRESHOLD, seed);
    emit("abl1_features", &render_feature_ablation(&rows), &rows);

    let rows = window_sweep(ds, INTERESTINGNESS_THRESHOLD, seed);
    emit("abl3_window", &render_window_sweep(&rows), &rows);

    let rows = observation_ablation(ds, INTERESTINGNESS_THRESHOLD, seed);
    emit(
        "abl5_observation",
        &render_observation_ablation(&rows),
        &rows,
    );

    if !skip_sims {
        let rows = promotion_ablation(seed, 3);
        emit("abl2_promotion", &render_promotion_ablation(&rows), &rows);
    }

    let thresholds = epidemics_ablation(seed, 3000);
    let cascades = modular_cascade_ablation(seed, 300);
    emit(
        "abl4_epidemics",
        &render_epidemics(&thresholds, &cascades),
        &(thresholds, cascades),
    );
}
