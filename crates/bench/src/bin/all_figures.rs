//! Run every experiment in one process (one shared synthesis) and
//! print the full reproduction report — the source of EXPERIMENTS.md.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::{decay, fig1, fig2, fig3, fig4, fig5, intext, prediction, scatter};
use digg_core::pipeline::PipelineConfig;
use digg_ml::c45::C45Params;
use digg_sim::scenario::PROMOTION_THRESHOLD;

fn main() {
    let synthesis = shared_synthesis();
    let ds = &synthesis.dataset;

    println!("=== Reproduction report: Lerman & Galstyan, WOSN'08 ===\n");

    let r = fig1::run(&synthesis.sim, &fig1::Fig1Params::default());
    emit("fig1", &r.render(), &r);

    let a = fig2::run_a(ds, 16, 4000.0);
    emit("fig2a", &a.render(), &a);
    // The paper's Fig 2b counts activity within its scraped sample.
    let b = fig2::run_b(ds);
    emit("fig2b", &b.render(), &b);
    // Supplement: activity over the whole simulated lifetime (the
    // scale on which the paper's all-time Top Users list was built).
    let b = fig2::run_b_sim(&synthesis.sim);
    emit("fig2b_lifetime", &b.render(), &b);

    let a = fig3::run_a(ds);
    emit("fig3a", &a.render(), &a);
    let b = fig3::run_b(ds);
    emit("fig3b", &b.render(), &b);

    let r = fig4::run(ds);
    emit("fig4", &r.render(), &r);

    if let Some(r) = fig5::run(ds, &C45Params::default(), 0x1e12) {
        emit("fig5", &r.render(), &r);
    }

    if let Some(r) = prediction::run(synthesis, &PipelineConfig::default()) {
        emit("prediction", &r.render(), &r);
    }

    let r = scatter::run(ds, 100);
    emit("scatter", &r.render(), &r);

    let r = intext::run(synthesis, PROMOTION_THRESHOLD);
    emit("intext", &r.render(), &r);

    let r = decay::run(&synthesis.sim, 2 * digg_sim::time::DAY, 72);
    emit("decay", &r.render(), &r);
}
