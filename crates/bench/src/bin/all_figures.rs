//! Run every experiment in one process (one shared synthesis) and
//! print the full reproduction report — the source of EXPERIMENTS.md.

fn main() {
    digg_bench::registry::main_for_all();
}
