//! Regenerate Fig. 1: vote time series of randomly chosen front-page
//! stories (queue phase → promotion jump → saturation).

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::fig1;

fn main() {
    let synthesis = shared_synthesis();
    let result = fig1::run(&synthesis.sim, &fig1::Fig1Params::default());
    let mut rendered = result.render();
    let accel = result
        .curves
        .iter()
        .filter(|c| result.promotion_accelerates(c))
        .count();
    rendered.push_str(&format!(
        "promotion accelerates voting on {accel}/{} sampled stories\n",
        result.curves.len()
    ));
    if let Some(f) = result.mean_first_day_fraction() {
        rendered.push_str(&format!(
            "mean fraction of final votes within one day of promotion: {f:.2} (Wu-Huberman: interest decays with ~1-day half-life)\n"
        ));
    }
    emit("fig1", &rendered, &result);
}
