//! Regenerate Fig. 1: vote time series of randomly chosen front-page
//! stories (queue phase → promotion jump → saturation).

fn main() {
    digg_bench::registry::main_for("fig1");
}
