//! Regenerate Fig. 4: final votes vs early in-network votes (after 6,
//! 10 and 20 votes) — the paper's inverse relationship.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::fig4;

fn main() {
    let ds = &shared_synthesis().dataset;
    let result = fig4::run(ds);
    emit("fig4", &result.render(), &result);
}
