//! Regenerate Fig. 4: final votes vs early in-network votes (after 6,
//! 10 and 20 votes) — the paper's inverse relationship.

fn main() {
    digg_bench::registry::main_for("fig4");
}
