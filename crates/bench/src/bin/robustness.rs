//! Seed-robustness sweep: run the full pipeline across several seeds
//! and report the headline metrics' spread, demonstrating that the
//! reproduction is not a single lucky draw.
//!
//! Usage: `robustness [n_seeds]` (default 5; each seed costs one full
//! synthesis, ~30 s release).

use digg_core::experiments::{fig3, fig4, fig5, prediction};
use digg_core::pipeline::PipelineConfig;
use digg_data::synth::{synthesize, SynthConfig};
use digg_ml::c45::C45Params;
use digg_stats::descriptive::{mean, std_dev};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct SeedRow {
    seed: u64,
    spearman_v10: f64,
    cv_accuracy: f64,
    cascade_half_at_10: f64,
    holdout_stories: usize,
    digg_precision: Option<f64>,
    classifier_precision: Option<f64>,
    classifier_beats_digg: Option<bool>,
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut rows: Vec<SeedRow> = Vec::new();
    for seed in 0..n {
        let seed = 2006 + seed * 101;
        eprintln!("[robustness] seed {seed}…");
        let synthesis = synthesize(&SynthConfig::june2006(seed));
        let ds = &synthesis.dataset;
        let f4 = fig4::run_panel(ds, 10);
        let f3 = fig3::run_b(ds);
        let f5 = fig5::run(ds, &C45Params::default(), 0x1e12);
        let pred = prediction::run(&synthesis, &PipelineConfig::default());
        rows.push(SeedRow {
            seed,
            spearman_v10: f4.spearman.unwrap_or(f64::NAN),
            cv_accuracy: f5.as_ref().map(|r| r.cv_accuracy()).unwrap_or(f64::NAN),
            cascade_half_at_10: f3.half_in_network_at_10,
            holdout_stories: pred
                .as_ref()
                .map(|p| p.pipeline.holdout_stories)
                .unwrap_or(0),
            digg_precision: pred.as_ref().and_then(|p| p.pipeline.digg_precision()),
            classifier_precision: pred
                .as_ref()
                .and_then(|p| p.pipeline.classifier_precision()),
            classifier_beats_digg: pred.as_ref().and_then(|p| p.classifier_beats_digg()),
        });
    }

    let mut out = String::from(
        "Seed robustness (paper targets: spearman<0, CV 0.841, cascade 0.30, clf>digg)\n",
    );
    out.push_str("  seed   spearman  CV-acc  cascade@10  holdout  P(digg)  P(clf)  clf wins\n");
    for r in &rows {
        out.push_str(&format!(
            "  {:<6} {:>8.3}  {:>6.3}  {:>10.2}  {:>7}  {:>7}  {:>6}  {}\n",
            r.seed,
            r.spearman_v10,
            r.cv_accuracy,
            r.cascade_half_at_10,
            r.holdout_stories,
            r.digg_precision
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.classifier_precision
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.classifier_beats_digg
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
    }
    let col = |f: &dyn Fn(&SeedRow) -> f64| -> (f64, f64) {
        let xs: Vec<f64> = rows.iter().map(f).filter(|x| x.is_finite()).collect();
        (
            mean(&xs).unwrap_or(f64::NAN),
            std_dev(&xs).unwrap_or(f64::NAN),
        )
    };
    let (ms, ss) = col(&|r| r.spearman_v10);
    let (mc, sc) = col(&|r| r.cv_accuracy);
    let (mh, sh) = col(&|r| r.cascade_half_at_10);
    out.push_str(&format!(
        "  mean±sd: spearman {ms:.3}±{ss:.3}  CV {mc:.3}±{sc:.3}  cascade@10 {mh:.2}±{sh:.2}\n"
    ));
    digg_bench::emit("robustness", &out, &rows);
}
