//! Regenerate the final (unnumbered) figure: friends+1 vs fans+1
//! scatter for all users, with the top users highlighted.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::scatter;

fn main() {
    let ds = &shared_synthesis().dataset;
    let result = scatter::run(ds, 100);
    let mut rendered = result.render();
    rendered.push_str(&format!(
        "top users dominate the fan axis: {}\n",
        result.top_users_dominate()
    ));
    emit("scatter", &rendered, &result);
}
