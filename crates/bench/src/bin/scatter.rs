//! Regenerate the final (unnumbered) figure: friends+1 vs fans+1
//! scatter for all users, with the top users highlighted.

fn main() {
    digg_bench::registry::main_for("scatter");
}
