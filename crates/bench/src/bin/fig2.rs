//! Regenerate Fig. 2: (a) histogram of final votes of front-page
//! stories; (b) log-log per-user activity histograms.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::fig2;

fn main() {
    let synthesis = shared_synthesis();
    let ds = &synthesis.dataset;
    let a = fig2::run_a(ds, 16, 4000.0);
    emit("fig2a", &a.render(), &a);
    // The paper's Fig 2b counts activity within its scraped sample.
    let b = fig2::run_b(ds);
    emit("fig2b", &b.render(), &b);
    // Supplement: activity over the whole simulated lifetime.
    let b = fig2::run_b_sim(&synthesis.sim);
    emit("fig2b_lifetime", &b.render(), &b);
}
