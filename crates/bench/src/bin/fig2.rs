//! Regenerate Fig. 2: (a) histogram of final votes of front-page
//! stories; (b) log-log per-user activity histograms.

fn main() {
    digg_bench::registry::main_for("fig2");
}
