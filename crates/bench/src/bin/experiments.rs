//! Experiment dispatcher: run any subset of the registry (or `all`)
//! on one shared synthesis, then write `bench_summary.json`.
//!
//! ```text
//! experiments [all | NAME ...] [--baseline] [--list]
//! ```
//!
//! * `--list` prints the registry and exits.
//! * `--baseline` additionally runs the seed-implementation
//!   comparison (fig3 / scatter / intext) and records the measured
//!   speedups in the summary.
//!
//! Exits non-zero when any artifact fails its validity checks (e.g.
//! the in-text statistics report structural violations).

use digg_bench::registry::{find, record_baselines, run_spec, write_bench_summary, REGISTRY};
use digg_bench::{baseline, shared_synthesis};

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut with_baseline = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => {
                for spec in REGISTRY {
                    println!("{:<12} {}", spec.name, spec.about);
                }
                return;
            }
            "--baseline" => with_baseline = true,
            name => names.push(name.to_string()),
        }
    }

    let specs: Vec<_> = if names.is_empty() || names.iter().any(|n| n == "all") {
        REGISTRY.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                find(n).unwrap_or_else(|| {
                    eprintln!("unknown experiment {n:?}; try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    // Dispatch is lazy: the shared synthesis is built only when a
    // selected experiment (or --baseline) actually needs it, so the
    // standalone sweep experiments run without the multi-day
    // simulation.
    let mut ok = true;
    for spec in specs {
        ok &= run_spec(spec);
    }
    if with_baseline {
        let rows = baseline::compare(shared_synthesis());
        println!("{}", baseline::render(&rows));
        record_baselines(rows);
    }
    write_bench_summary();
    if !ok {
        std::process::exit(1);
    }
}
