//! Regenerate the §3 in-text statistics (submission rate, the 43/42
//! promotion boundary, distinct voters, top-user concentration) and
//! validate the dataset's structural invariants.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::intext;
use digg_sim::scenario::PROMOTION_THRESHOLD;

fn main() {
    let synthesis = shared_synthesis();
    let result = intext::run(synthesis, PROMOTION_THRESHOLD);
    emit("intext", &result.render(), &result);
    if !result.violations.is_empty() {
        std::process::exit(1);
    }
}
