//! Regenerate the §3 in-text statistics (submission rate, the 43/42
//! promotion boundary, distinct voters, top-user concentration) and
//! validate the dataset's structural invariants (non-zero exit on any
//! violation).

fn main() {
    digg_bench::registry::main_for("intext");
}
