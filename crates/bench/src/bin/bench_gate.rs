//! Bench-regression gate: fail CI when the incremental sweep gets
//! slower.
//!
//! ```text
//! bench_gate [CANDIDATE [BASELINE]]
//! ```
//!
//! `CANDIDATE` defaults to `$DIGG_RESULTS_DIR/bench_summary.json`
//! (`./bench_summary.json` otherwise); `BASELINE` defaults to the
//! committed `results/bench_baseline.json`.
//!
//! Raw votes/sec is machine-bound — a slower CI runner would fail
//! every build — so the default comparison is the **dimensionless
//! speed ratio** `incr_sweep_apply.per_sec /
//! incr_sweep_batch_resweep.per_sec` from each file: both rows come
//! from the same process on the same box, so the ratio cancels the
//! machine and isolates the incremental path's relative speed. The
//! gate fails (exit 1) when the candidate ratio drops more than
//! `DIGG_GATE_TOLERANCE` (default 0.15, i.e. >15%) below the
//! baseline's. Set `DIGG_GATE_ABSOLUTE=1` to additionally compare raw
//! `incr_sweep_apply` votes/sec with the same tolerance — for runs on
//! the reference box where absolute rates are comparable.
//!
//! Exit codes: 0 pass, 1 regression, 2 missing/malformed input.

use serde::Value;
use std::path::PathBuf;

/// A JSON number as f64, whatever integer/float variant carried it.
fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::UInt(u) => Some(u as f64),
        Value::Int(i) => Some(i as f64),
        Value::Float(f) => Some(f),
        _ => None,
    }
}

/// Minimal view of a summary file: just the scale rows the gate reads.
struct Rows(Value);

impl Rows {
    fn load(path: &PathBuf) -> Result<Rows, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let v: Value = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
        if v.get_field("scale").and_then(|s| s.as_array()).is_none() {
            return Err(format!("{} has no `scale` rows", path.display()));
        }
        Ok(Rows(v))
    }

    /// `per_sec` of the named scale row.
    fn per_sec(&self, name: &str) -> Result<f64, String> {
        self.0
            .get_field("scale")
            .and_then(|s| s.as_array())
            .into_iter()
            .flatten()
            .find(|r| matches!(r.get_field("name"), Some(Value::Str(n)) if n == name))
            .and_then(|r| r.get_field("per_sec").and_then(as_f64))
            .filter(|p| p.is_finite() && *p > 0.0)
            .ok_or_else(|| format!("no positive `{name}` scale row"))
    }

    /// The machine-cancelling incremental-vs-batch speed ratio.
    fn incr_ratio(&self) -> Result<f64, String> {
        Ok(self.per_sec("incr_sweep_apply")? / self.per_sec("incr_sweep_batch_resweep")?)
    }
}

/// One tolerance check; prints its verdict and returns pass/fail.
fn check(label: &str, candidate: f64, baseline: f64, tolerance: f64) -> bool {
    let change = candidate / baseline - 1.0;
    let ok = change >= -tolerance;
    println!(
        "{}: {label} baseline {baseline:.4}, candidate {candidate:.4} ({:+.1}%, tolerance -{:.0}%)",
        if ok { "ok" } else { "REGRESSION" },
        change * 100.0,
        tolerance * 100.0,
    );
    ok
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let candidate_path = args.next().map(PathBuf::from).unwrap_or_else(|| {
        let dir = std::env::var("DIGG_RESULTS_DIR").unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join("bench_summary.json")
    });
    let baseline_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/bench_baseline.json"));
    let tolerance = std::env::var("DIGG_GATE_TOLERANCE")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|t| t.is_finite() && (0.0..1.0).contains(t))
        .unwrap_or(0.15);

    let candidate = Rows::load(&candidate_path)?;
    let baseline = Rows::load(&baseline_path)?;
    println!(
        "bench_gate: {} vs baseline {}",
        candidate_path.display(),
        baseline_path.display()
    );

    let mut ok = check(
        "incr_sweep apply/batch ratio",
        candidate.incr_ratio()?,
        baseline.incr_ratio()?,
        tolerance,
    );
    if std::env::var("DIGG_GATE_ABSOLUTE").ok().as_deref() == Some("1") {
        ok &= check(
            "incr_sweep_apply votes/sec",
            candidate.per_sec("incr_sweep_apply")?,
            baseline.per_sec("incr_sweep_apply")?,
            tolerance,
        );
    }
    Ok(ok)
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    }
}
