//! Calibration probe: run the June-2006 scenario and print the
//! emergent statistics next to the paper's targets.
//!
//! Usage: `calibrate [seed] [days]`

use digg_sim::engine::queue_boundary_violations;
use digg_sim::scenario;
use digg_sim::story::StoryStatus;
use digg_sim::time::DAY;
use digg_sim::Sim;
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2006);
    let days: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let cfg = scenario::june2006(seed);
    let pop = scenario::june2006_population(seed ^ 0x9E37);
    let mut sim = Sim::new(cfg, pop);

    let t0 = digg_bench::timing::stopwatch();
    sim.run(days * DAY);
    eprintln!("simulated {days} days in {:.1?}", t0.elapsed());

    let m = sim.metrics();
    println!("minutes simulated      {}", m.minutes);
    println!(
        "submissions            {} ({:.0}/day)",
        m.submissions,
        m.submissions_per_day()
    );
    println!(
        "promotions             {} ({:.1}/day)",
        m.promotions,
        m.promotions_per_day()
    );
    println!("expirations            {}", m.expirations);
    println!(
        "votes: friends {} fp {} upcoming {} external {} (social {:.2})",
        m.votes_friends,
        m.votes_frontpage,
        m.votes_upcoming,
        m.votes_external,
        m.social_vote_fraction()
    );
    println!(
        "queue boundary violations {}",
        queue_boundary_violations(&sim)
    );

    // Distinct voters.
    let mut voters: HashSet<_> = HashSet::new();
    for s in sim.stories() {
        for v in &s.votes {
            voters.insert(v.user);
        }
    }
    println!("distinct voters        {}", voters.len());

    // Promoted stories that have had >= 2 days to saturate.
    let horizon = sim.now();
    let mature: Vec<_> = sim
        .stories()
        .iter()
        .filter(|s| match s.status {
            StoryStatus::FrontPage(t) => horizon.since(t) >= 2 * DAY,
            _ => false,
        })
        .collect();
    println!("mature promoted stories {}", mature.len());
    if mature.is_empty() {
        return;
    }
    let mut finals: Vec<f64> = mature.iter().map(|s| s.vote_count() as f64).collect();
    finals.sort_by(f64::total_cmp);
    let pct = |q: f64| finals[((finals.len() - 1) as f64 * q) as usize];
    println!(
        "final votes: min {} p10 {} p25 {} p50 {} p75 {} p90 {} max {}",
        pct(0.0),
        pct(0.1),
        pct(0.25),
        pct(0.5),
        pct(0.75),
        pct(0.9),
        pct(1.0)
    );
    let below500 = finals.iter().filter(|&&v| v < 500.0).count() as f64 / finals.len() as f64;
    let above1500 = finals.iter().filter(|&&v| v > 1500.0).count() as f64 / finals.len() as f64;
    println!("fraction <500 {below500:.2} (target 0.2)  >1500 {above1500:.2} (target 0.2)");

    // Early in-network votes vs final votes (Fig. 4 shape).
    let graph = &sim.population().graph;
    let mut lo_in: Vec<f64> = Vec::new(); // finals with v10 <= 3
    let mut hi_in: Vec<f64> = Vec::new(); // finals with v10 >= 7
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in &mature {
        let voters = s.voters_chronological();
        if voters.len() < 11 {
            continue;
        }
        let mut innet = 0u64;
        for k in 1..=10 {
            let prior = &voters[..k];
            if graph.is_fan_of_any(voters[k], prior) {
                innet += 1;
            }
        }
        xs.push(innet as f64);
        ys.push(s.vote_count() as f64);
        if innet <= 3 {
            lo_in.push(s.vote_count() as f64);
        } else if innet >= 7 {
            hi_in.push(s.vote_count() as f64);
        }
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    let (mut lo, mut hi) = (lo_in, hi_in);
    println!(
        "median final votes: v10<=3 -> {:.0} (n={})   v10>=7 -> {:.0} (n={})",
        med(&mut lo),
        lo.len(),
        med(&mut hi),
        hi.len()
    );
    if let Some(r) = digg_stats::correlation::spearman(&xs, &ys) {
        println!("spearman(v10, final) = {r:.3} (paper: strongly negative)");
    }

    // Submitter fan count of promoted stories (top-user dominance).
    let top100: HashSet<_> = sim.population().ranking()[..100].iter().copied().collect();
    let by_top = mature
        .iter()
        .filter(|s| top100.contains(&s.submitter))
        .count();
    println!(
        "mature promoted by top-100 submitters: {} / {}",
        by_top,
        mature.len()
    );
}
