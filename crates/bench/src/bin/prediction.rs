//! Regenerate §5.2: the upcoming-queue holdout (top-user stories with
//! ≥10 votes) and the precision comparison against the platform's own
//! promotion decision.

use digg_bench::{emit, shared_synthesis};
use digg_core::experiments::prediction;
use digg_core::pipeline::PipelineConfig;

fn main() {
    let synthesis = shared_synthesis();
    match prediction::run(synthesis, &PipelineConfig::default()) {
        Some(result) => {
            let mut rendered = result.render();
            if let Some(beats) = result.classifier_beats_digg() {
                rendered.push_str(&format!(
                    "classifier precision beats the promoter: {beats} (paper: yes, 0.57 vs 0.36)\n"
                ));
            }
            emit("prediction", &rendered, &result);
        }
        None => eprintln!("prediction: empty training sample or holdout"),
    }
}
