//! Regenerate §5.2: the upcoming-queue holdout (top-user stories with
//! ≥10 votes) and the precision comparison against the platform's own
//! promotion decision.

fn main() {
    digg_bench::registry::main_for("prediction");
}
