//! Seed-baseline comparison: the pre-refactor implementations of the
//! fig3 / scatter / intext analyses, timed against the unified
//! single-pass sweep engine on the same synthesis.
//!
//! The originals (preserved here verbatim in algorithmic shape) ran
//! one independent pass per statistic: fig3(a) built a fresh fan-union
//! `HashSet` per influence checkpoint, fig3(b) recomputed the full
//! O(votes²) in-network flag vector per cascade window, and scatter /
//! intext walked their inputs serially. The sweep engine answers every
//! per-story statistic from one truncated voter walk and fans stories
//! across worker threads, so [`compare`] both *verifies* that the new
//! results are identical and *measures* the speedup recorded in
//! `bench_summary.json`.

use crate::timing::time_ms as time;
use digg_core::experiments::{fig3, intext, scatter};
use digg_core::worker_threads;
use digg_data::synth::Synthesis;
use digg_data::DiggDataset;
use digg_sim::scenario::PROMOTION_THRESHOLD;
use serde::Serialize;
use social_graph::{metrics, SocialGraph, UserId};
use std::collections::HashSet;

/// One seed-vs-sweep timing row of `bench_summary.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineRecord {
    /// Analysis name (or the combined `fig3+scatter+intext` row).
    pub experiment: String,
    /// Seed implementation, milliseconds.
    pub seed_ms: f64,
    /// Sweep engine with the default worker fan-out, milliseconds.
    pub new_ms: f64,
    /// Sweep engine forced to one worker thread, milliseconds.
    pub new_single_ms: f64,
    /// `seed_ms / new_ms` (acceptance: ≥ 3 on the combined row).
    pub speedup: f64,
    /// `seed_ms / new_single_ms` (acceptance: ≥ 1 — never slower).
    pub single_thread_speedup: f64,
}

impl BaselineRecord {
    pub(crate) fn new(
        experiment: &str,
        seed_ms: f64,
        new_ms: f64,
        new_single_ms: f64,
    ) -> BaselineRecord {
        BaselineRecord {
            experiment: experiment.to_string(),
            seed_ms,
            new_ms,
            new_single_ms,
            speedup: seed_ms / new_ms.max(1e-9),
            single_thread_speedup: seed_ms / new_single_ms.max(1e-9),
        }
    }
}

/// Seed influence: fresh fan-union `HashSet` per checkpoint (the
/// pre-refactor `influence::influence_after`).
fn seed_influence_after(graph: &SocialGraph, voters: &[UserId], k: usize) -> usize {
    let k = k.min(voters.len());
    let mut audience: HashSet<UserId> = HashSet::new();
    for &v in &voters[..k] {
        audience.extend(graph.fans(v).iter().copied());
    }
    for &v in &voters[..k] {
        audience.remove(&v);
    }
    audience.len()
}

/// Seed cascade: the full O(votes²) flag vector (the pre-refactor
/// `cascade::in_network_flags`), recomputed per window and truncated.
fn seed_in_network_count_within(graph: &SocialGraph, voters: &[UserId], n: usize) -> usize {
    let mut flags = Vec::with_capacity(voters.len().saturating_sub(1));
    for k in 1..voters.len() {
        flags.push(graph.is_fan_of_any(voters[k], &voters[..k]));
    }
    flags.into_iter().take(n).filter(|&f| f).count()
}

/// Seed fig3 per-story values: three influence checkpoints and three
/// cascade windows, each computed independently and serially.
fn seed_fig3_values(ds: &DiggDataset) -> (Vec<[u64; 3]>, Vec<[u64; 3]>) {
    let g = &ds.network;
    let influence = ds
        .front_page
        .iter()
        .map(|r| {
            [
                seed_influence_after(g, &r.voters, 1) as u64,
                seed_influence_after(g, &r.voters, 11) as u64,
                seed_influence_after(g, &r.voters, 21) as u64,
            ]
        })
        .collect();
    let cascade = ds
        .front_page
        .iter()
        .map(|r| {
            [
                seed_in_network_count_within(g, &r.voters, 10) as u64,
                seed_in_network_count_within(g, &r.voters, 20) as u64,
                seed_in_network_count_within(g, &r.voters, 30) as u64,
            ]
        })
        .collect();
    (influence, cascade)
}

/// Seed scatter: the serial degree walks from
/// [`social_graph::metrics`], exactly as the pre-refactor binary
/// composed them.
fn seed_scatter(ds: &DiggDataset, top_k: usize) -> scatter::ScatterResult {
    let g = &ds.network;
    let all_users = metrics::friends_fans_scatter(g);
    let fans = metrics::fan_counts(g);
    let top: Vec<(f64, f64)> = ds
        .top_users
        .iter()
        .take(top_k)
        .map(|&u| (g.friend_count(u) as f64 + 1.0, g.fan_count(u) as f64 + 1.0))
        .collect();
    let xs: Vec<f64> = all_users.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = all_users.iter().map(|p| p.1).collect();
    let fan_tail = digg_stats::fit::fit_best_xmin(&fans, &[2, 3, 5, 10, 20]).map(Into::into);
    let median = |v: &[(f64, f64)]| {
        let fans: Vec<f64> = v.iter().map(|p| p.1).collect();
        digg_stats::descriptive::median(&fans).unwrap_or(0.0)
    };
    scatter::ScatterResult {
        spearman: digg_stats::correlation::spearman(&xs, &ys),
        fan_tail,
        top_median_fans: median(&top),
        all_median_fans: median(&all_users),
        all_users,
        top_users: top,
    }
}

/// Run the seed-vs-sweep comparison on a synthesis: verify the sweep
/// engine reproduces the seed results exactly, and return timing rows
/// (per analysis plus the combined `fig3+scatter+intext` acceptance
/// row).
///
/// Panics when any result diverges from the seed implementation —
/// a silent numeric drift would invalidate every figure downstream.
pub fn compare(synthesis: &Synthesis) -> Vec<BaselineRecord> {
    let ds = &synthesis.dataset;
    let threads = worker_threads();

    // fig3: seed = six independent passes; new = two truncated sweeps.
    let (new_fig3, fig3_new_ms) =
        time(|| (fig3::run_a_with(ds, threads), fig3::run_b_with(ds, threads)));
    let (_, fig3_single_ms) = time(|| (fig3::run_a_with(ds, 1), fig3::run_b_with(ds, 1)));
    let ((seed_infl, seed_casc), fig3_seed_ms) = time(|| seed_fig3_values(ds));
    let (new_a, new_b) = &new_fig3;
    for (ck, col) in new_a.checkpoints.iter().zip(0..3) {
        let seed_col: Vec<u64> = seed_infl.iter().map(|row| row[col]).collect();
        assert_eq!(
            ck.values, seed_col,
            "fig3a checkpoint {col} diverged from seed"
        );
    }
    for (ck, col) in new_b.checkpoints.iter().zip(0..3) {
        let seed_col: Vec<u64> = seed_casc.iter().map(|row| row[col]).collect();
        assert_eq!(
            ck.values, seed_col,
            "fig3b checkpoint {col} diverged from seed"
        );
    }

    // scatter: seed = serial metrics walks; new = fanned-out lookups.
    let (new_sc, sc_new_ms) = time(|| scatter::run_with(ds, 100, threads));
    let (_, sc_single_ms) = time(|| scatter::run_with(ds, 100, 1));
    let (seed_sc, sc_seed_ms) = time(|| seed_scatter(ds, 100));
    assert_eq!(
        serde_json::to_string(&new_sc).unwrap(),
        serde_json::to_string(&seed_sc).unwrap(),
        "scatter diverged from seed"
    );

    // intext: the port differs from the seed only in fanning out the
    // promotion-time scan, so the single-thread run *is* the seed
    // implementation; it is timed separately for each role.
    let (new_it, it_new_ms) = time(|| intext::run_with(synthesis, PROMOTION_THRESHOLD, threads));
    let (single_it, it_single_ms) = time(|| intext::run_with(synthesis, PROMOTION_THRESHOLD, 1));
    let (_, it_seed_ms) = time(|| intext::run_with(synthesis, PROMOTION_THRESHOLD, 1));
    assert_eq!(
        serde_json::to_string(&new_it).unwrap(),
        serde_json::to_string(&single_it).unwrap(),
        "intext diverged across thread counts"
    );

    let combined = BaselineRecord::new(
        "fig3+scatter+intext",
        fig3_seed_ms + sc_seed_ms + it_seed_ms,
        fig3_new_ms + sc_new_ms + it_new_ms,
        fig3_single_ms + sc_single_ms + it_single_ms,
    );
    if combined.speedup < 3.0 {
        eprintln!(
            "[digg-bench] WARNING: combined speedup {:.2}x below the 3x acceptance bar",
            combined.speedup
        );
    }
    vec![
        BaselineRecord::new("fig3", fig3_seed_ms, fig3_new_ms, fig3_single_ms),
        BaselineRecord::new("scatter", sc_seed_ms, sc_new_ms, sc_single_ms),
        BaselineRecord::new("intext", it_seed_ms, it_new_ms, it_single_ms),
        combined,
    ]
}

/// Render baseline rows as an aligned table.
pub fn render(rows: &[BaselineRecord]) -> String {
    let mut out = String::from(
        "Seed-baseline comparison (ms)\n  experiment            seed      new   new(1t)  speedup  1t-speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<20} {:>8.1} {:>8.1} {:>8.1} {:>7.2}x {:>9.2}x\n",
            r.experiment, r.seed_ms, r.new_ms, r.new_single_ms, r.speedup, r.single_thread_speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use social_graph::GraphBuilder;

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(12);
        for f in 1..=5 {
            b.add_watch(UserId(f), UserId(0));
        }
        b.add_watch(UserId(6), UserId(1));
        b.build()
    }

    #[test]
    fn seed_helpers_match_the_sweep_engine() {
        let g = graph();
        let voters: Vec<UserId> = [0u32, 1, 6, 7, 2].iter().map(|&u| UserId(u)).collect();
        let mut sweeper = digg_core::StorySweeper::new(&g);
        let sweep = sweeper.sweep(&g, &voters);
        for k in 0..=voters.len() {
            assert_eq!(
                seed_influence_after(&g, &voters, k),
                sweep.influence_after(k),
                "influence diverges at k={k}"
            );
        }
        for n in 0..6 {
            assert_eq!(
                seed_in_network_count_within(&g, &voters, n),
                sweep.in_network_count_within(n),
                "cascade diverges at n={n}"
            );
        }
    }

    #[test]
    fn records_compute_speedups() {
        let r = BaselineRecord::new("x", 30.0, 10.0, 15.0);
        assert!((r.speedup - 3.0).abs() < 1e-9);
        assert!((r.single_thread_speedup - 2.0).abs() < 1e-9);
    }
}
