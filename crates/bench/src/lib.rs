//! # digg-bench
//!
//! Benchmark harness and experiment binaries for the Digg
//! reproduction.
//!
//! * [`registry`] — one [`registry::ExperimentSpec`] per paper
//!   artifact (fig1 … decay; see DESIGN.md §4): name → runner →
//!   rendered artifacts. Each run prints the reproduced table/series,
//!   writes `<name>.txt` / `<name>.json` when `DIGG_RESULTS_DIR` is
//!   set, and records wall-time + stories/sec into
//!   `bench_summary.json`.
//! * `src/bin/*` — thin wrappers over the registry (`fig3`, …) plus
//!   the `experiments` dispatcher (`experiments fig3 scatter`,
//!   `experiments all --baseline`).
//! * [`baseline`] — the pre-refactor (seed) implementations of fig3 /
//!   scatter / intext, timed against the sweep engine and verified to
//!   produce identical results.
//! * [`sweeps`] — the standalone scenario-sweep experiments
//!   (`sim_sweep`, `epi_sweep`): parallel `(config, seed)` fan-outs on
//!   the `des-core` event kernels, with tick-loop/scan-model
//!   equivalence checks and kernel timing rows.
//! * [`scale`] — the `graph_scale` experiment: serial-vs-sharded CSR
//!   construction of a `DIGG_SCALE_USERS` graph (default one million
//!   users, ~10M edges) with bit-identity enforced, plus degree
//!   metrics and a story-sweep batch; records edges/sec and votes/sec
//!   `scale` rows into `bench_summary.json`.
//! * [`incr`] — the `incr_sweep` experiment: per-vote analytics via
//!   `IncrementalSweep::apply_vote` against a re-sweep-every-vote
//!   batch baseline on the same scaled graph, with checkpoint
//!   equality enforced and the speedup recorded as `scale` rows.
//! * [`checkpoint`] — the `checkpoint_sweep` experiment: the
//!   fault-tolerant multi-process sweep runner killed mid-run and
//!   recovered from `digg-snapshot` checkpoints, with the recovered
//!   rows byte-compared to a clean sweep, plus checkpoint-overhead
//!   and snapshot encode/decode rates at `DIGG_CHECKPOINT_USERS`.
//! * `benches/*` — Criterion benches. `figures.rs` times every
//!   analysis that regenerates a figure (on a shared synthesized
//!   dataset); `perf.rs` times the substrates (graph ops, simulator
//!   throughput, C4.5 training); `ablations.rs` runs ABL1–ABL4.
//!
//! The expensive part — synthesizing the calibrated June-2006 dataset
//! (a multi-day platform simulation) — happens once per process via
//! [`shared_synthesis`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baseline;
pub mod chaos;
pub mod checkpoint;
pub mod degradation;
pub mod incr;
pub mod mmap;
pub mod registry;
pub mod scale;
pub mod sweeps;
pub mod timing;

use digg_data::synth::{synthesize, SynthConfig, Synthesis};
use std::io::Write;
use std::sync::OnceLock;

/// Default seed for all experiment binaries (override with
/// `DIGG_SEED`).
pub const DEFAULT_SEED: u64 = 2006;

/// Seed from `DIGG_SEED` or the default.
pub fn seed_from_env() -> u64 {
    std::env::var("DIGG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The shared full-scale synthesis, built once per process.
///
/// Uses the calibrated June-2006 scenario (25k users; the simulation
/// runs until ≥220 stories are promoted, then four more days for vote
/// saturation — tens of seconds in release builds).
pub fn shared_synthesis() -> &'static Synthesis {
    static CELL: OnceLock<Synthesis> = OnceLock::new();
    CELL.get_or_init(|| {
        let seed = seed_from_env();
        eprintln!("[digg-bench] synthesizing June-2006 dataset (seed {seed})…");
        let t0 = timing::stopwatch();
        let out = synthesize(&SynthConfig::june2006(seed));
        eprintln!(
            "[digg-bench] synthesis done in {:.1?}: {} fp / {} upcoming stories, {} users",
            t0.elapsed(),
            out.dataset.front_page.len(),
            out.dataset.upcoming.len(),
            out.dataset.network.user_count(),
        );
        out
    })
}

/// Write `data` to `path` atomically: write a sibling `*.tmp` file,
/// then rename over the target. A crash mid-write (or a concurrent
/// reader — CI collecting artifacts while a bench still runs) never
/// sees a truncated file; the rename either fully lands or doesn't.
pub fn write_atomic(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    std::fs::File::create(&tmp).and_then(|mut f| f.write_all(data))?;
    std::fs::rename(&tmp, path)
}

/// Print a rendered result and, when `DIGG_RESULTS_DIR` is set, save
/// `<name>.txt` (the rendering) and `<name>.json` (the serialized
/// payload) there. Artifact files are written atomically
/// ([`write_atomic`]).
pub fn emit<T: serde::Serialize>(name: &str, rendered: &str, payload: &T) {
    println!("{rendered}");
    let Ok(dir) = std::env::var("DIGG_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[digg-bench] cannot create {}: {e}", dir.display());
        return;
    }
    let write = |path: std::path::PathBuf, data: &[u8]| match write_atomic(&path, data) {
        Ok(()) => eprintln!("[digg-bench] wrote {}", path.display()),
        Err(e) => eprintln!("[digg-bench] cannot write {}: {e}", path.display()),
    };
    write(dir.join(format!("{name}.txt")), rendered.as_bytes());
    match serde_json::to_vec_pretty(payload) {
        Ok(json) => write(dir.join(format!("{name}.json")), &json),
        Err(e) => eprintln!("[digg-bench] cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_when_env_unset() {
        // The test runner may set DIGG_SEED; only assert the parse
        // path doesn't panic.
        let _ = super::seed_from_env();
    }

    #[test]
    fn write_atomic_lands_content_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("digg-bench-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        super::write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Overwrite goes through the same tmp+rename path.
        super::write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("artifact.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
