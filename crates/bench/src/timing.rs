//! The workspace's **only** wall-clock access point.
//!
//! The determinism contract (DESIGN.md §13, enforced by
//! `digg-lint`'s `no-wallclock` rule) bans `Instant::now` /
//! `SystemTime` everywhere else: artifacts must be pure functions of
//! `(seed, config)`, never of when or how fast they were computed.
//! Benchmark *timing rows* are the one deliberate exception — they
//! measure the hardware, are labelled as measurements in
//! `bench_summary.json`, and are never compared bit-for-bit. Every
//! such measurement must flow through this module so the exception
//! stays exactly this wide.

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

/// Start measuring.
pub fn stopwatch() -> Stopwatch {
    Stopwatch(Instant::now())
}

impl Stopwatch {
    /// Elapsed wall time since [`stopwatch`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed wall time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Run `f` and return its result plus wall-clock milliseconds — the
/// shape every bench timing row uses.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = stopwatch();
    let out = f();
    (out, sw.elapsed_ms())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ms_returns_result_and_nonnegative_duration() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert!(stopwatch().elapsed() >= Duration::ZERO);
    }
}
