//! The `incr_sweep` experiment: per-vote analytics throughput of the
//! [`IncrementalSweep`] state machine against the batch alternative.
//!
//! The live workload (ISSUE 6) is "a vote just arrived — refresh this
//! story's counters, features and verdict". Before the incremental
//! refactor the only way to do that was to re-sweep the story's whole
//! vote prefix from scratch on every arrival: O(k) fan-row streams for
//! the k-th vote, O(len²) per story. [`IncrementalSweep::apply_vote`]
//! does the same update in O(new-voter-fan-degree).
//!
//! Both paths run here over the same scaled graph
//! (`DIGG_SCALE_USERS` users, default one million, via
//! [`crate::scale::scale_edge_list`]) and the same deterministic story
//! batch, checkpointing after **every** vote: running cascade count,
//! influence (audience) and the Fig. 5 verdict. The checkpoint
//! checksums must agree exactly between the two paths — that equality
//! is the artifact's pass/fail flag — and the wall-times become
//! `scale` rows in `bench_summary.json` with the batch-vs-incremental
//! speedup (the acceptance bar is ≥ 10x at the default scale).

use crate::registry::{record_scale, Artifact, ScaleRecord};
use crate::scale::{scale_edge_list, ScaleParams};
use crate::timing::time_ms;
use des_core::StreamRng;
use digg_core::features::StoryFeatures;
use digg_core::predictor::{fig5_predictor, InterestingnessPredictor};
use digg_core::{worker_threads, IncrementalSweep, StorySweeper};
use rand::Rng;
use social_graph::{GraphBuilder, SocialGraph, UserId};

/// Stream salt for the story-batch generator (distinct from the
/// `graph_scale` batch so the two experiments stay independent).
const STORY_STREAM: u64 = 0x0049_4e43_525f_5356; // "INCR_SV"

/// Per-vote checkpoint checksums: what both paths must agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct Checkpoints {
    /// Sum of the running cascade count over every (story, prefix).
    pub cascade: u64,
    /// Sum of the running influence (audience) over every prefix.
    pub influence: u64,
    /// Number of prefixes with an extractable feature window.
    pub windows: u64,
    /// Number of those windows predicted interesting (Fig. 5 rule).
    pub interesting: u64,
}

/// The timing-free `incr_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct IncrSweepPayload {
    /// Users in the graph.
    pub users: usize,
    /// Deduplicated edges in the graph.
    pub edges: usize,
    /// Stories in the batch.
    pub stories: usize,
    /// Votes per story.
    pub votes_per_story: usize,
    /// Whether the incremental checkpoints matched the batch
    /// recompute exactly — the experiment's pass/fail condition.
    pub checkpoints_identical: bool,
    /// The agreed checksums.
    pub checkpoints: Checkpoints,
}

/// Deterministic story batch: voter lists of distinct users drawn from
/// per-story counter streams (thread- and order-invariant).
fn story_batch(seed: u64, params: &ScaleParams) -> Vec<Vec<UserId>> {
    (0..params.stories)
        .map(|i| {
            let mut rng = StreamRng::keyed(seed, &[STORY_STREAM, i as u64]);
            let mut voters: Vec<UserId> = Vec::with_capacity(params.votes_per_story);
            while voters.len() < params.votes_per_story {
                let v = UserId::from_index(rng.random_range(0..params.users));
                if !voters.contains(&v) {
                    voters.push(v);
                }
            }
            voters
        })
        .collect()
}

/// Features of the current k-prefix read straight off a sweep (the
/// same window reads [`StoryFeatures::extract`] performs).
fn features_from_sweep(
    sweep: &digg_core::StorySweep,
    fans1: usize,
    k: usize,
) -> Option<StoryFeatures> {
    if k <= 10 {
        return None;
    }
    Some(StoryFeatures {
        v6: sweep.in_network_count_within(6),
        v10: sweep.in_network_count_within(10),
        v20: sweep.in_network_count_within(20),
        fans1,
        scraped_votes: k,
    })
}

/// The incremental path: one `apply_vote` per arrival, O(1) feature
/// and verdict reads at every checkpoint.
pub fn incremental_checkpoints(
    graph: &SocialGraph,
    stories: &[Vec<UserId>],
    predictor: &InterestingnessPredictor,
) -> Checkpoints {
    let mut out = Checkpoints {
        cascade: 0,
        influence: 0,
        windows: 0,
        interesting: 0,
    };
    let mut incr = IncrementalSweep::new(graph);
    for voters in stories {
        incr.begin(graph);
        incr.reserve_votes(voters.len());
        for (k, &v) in voters.iter().enumerate() {
            // Touch a later voter's fan row so its offset and first
            // target line are in flight while this vote is applied;
            // the row fetch is a dependent DRAM+TLB chain that would
            // otherwise stall the absorb. Distance 8 suffices and
            // longer distances measure the same; `black_box` keeps
            // the touch from being optimised away.
            if let Some(&w) = voters.get(k + 8) {
                std::hint::black_box(graph.fans(w).first());
            }
            let applied = incr.apply_vote(graph, v);
            out.cascade += applied.cascade as u64;
            out.influence += applied.influence as u64;
            if let Some(interesting) = incr.verdict_streaming(predictor) {
                out.windows += 1;
                out.interesting += interesting as u64;
            }
        }
    }
    out
}

/// The batch path: on every vote arrival, re-sweep the story's whole
/// current prefix from scratch — the pre-refactor live-update cost.
pub fn batch_checkpoints(
    graph: &SocialGraph,
    stories: &[Vec<UserId>],
    predictor: &InterestingnessPredictor,
) -> Checkpoints {
    let mut out = Checkpoints {
        cascade: 0,
        influence: 0,
        windows: 0,
        interesting: 0,
    };
    let mut sweeper = StorySweeper::new(graph);
    for voters in stories {
        let fans1 = graph.fan_count(voters[0]);
        for k in 1..=voters.len() {
            let sweep = sweeper.sweep(graph, &voters[..k]);
            out.cascade += sweep.in_network_count_within(k) as u64;
            out.influence += sweep.influence_after(k) as u64;
            if let Some(f) = features_from_sweep(sweep, fans1, k) {
                out.windows += 1;
                out.interesting += predictor.predict_features(&f) as u64;
            }
        }
    }
    out
}

/// The `incr_sweep` standalone experiment.
pub fn run_incr_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let params = ScaleParams::from_env();
    let threads = worker_threads();
    let predictor = fig5_predictor();

    let edges = scale_edge_list(seed, params.users, params.avg_degree, threads);
    let mut b = GraphBuilder::new(params.users);
    b.extend_watches(edges.iter().copied());
    let graph = b.build_parallel(threads);
    drop(edges);

    let stories = story_batch(seed, &params);
    let total_votes = (params.stories * params.votes_per_story) as f64;

    let (incr, incr_ms) = time_ms(|| incremental_checkpoints(&graph, &stories, &predictor));
    let (batch, batch_ms) = time_ms(|| batch_checkpoints(&graph, &stories, &predictor));
    let checkpoints_identical = incr == batch;
    let speedup = batch_ms / incr_ms.max(1e-9);

    let payload = IncrSweepPayload {
        users: params.users,
        edges: graph.edge_count(),
        stories: params.stories,
        votes_per_story: params.votes_per_story,
        checkpoints_identical,
        checkpoints: incr,
    };

    record_scale(vec![
        ScaleRecord {
            name: "incr_sweep_apply".into(),
            users: params.users,
            edges: graph.edge_count(),
            wall_ms: incr_ms,
            per_sec: total_votes / (incr_ms / 1e3).max(1e-9),
            unit: "votes",
            speedup_vs_serial: Some(speedup),
        },
        ScaleRecord {
            name: "incr_sweep_batch_resweep".into(),
            users: params.users,
            edges: graph.edge_count(),
            wall_ms: batch_ms,
            per_sec: total_votes / (batch_ms / 1e3).max(1e-9),
            unit: "votes",
            speedup_vs_serial: None,
        },
    ]);

    let mut rendered = format!(
        "Incremental sweep harness ({} users, {} edges, {} stories x {} votes)\n",
        params.users, payload.edges, params.stories, params.votes_per_story
    );
    rendered.push_str(&format!(
        "incremental apply_vote: {incr_ms:.1} ms ({:.2}M votes/sec)\n",
        total_votes / (incr_ms / 1e3).max(1e-9) / 1e6
    ));
    rendered.push_str(&format!(
        "batch re-sweep per vote: {batch_ms:.1} ms ({:.2}M votes/sec)\n",
        total_votes / (batch_ms / 1e3).max(1e-9) / 1e6
    ));
    rendered.push_str(&format!(
        "speedup: {speedup:.1}x — checkpoints {}\n",
        if checkpoints_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    ));
    rendered.push_str(&format!(
        "checkpoints: cascade {} influence {} windows {} interesting {}\n",
        incr.cascade, incr.influence, incr.windows, incr.interesting
    ));

    (
        vec![Artifact::new("incr_sweep", rendered, &payload).with_ok(checkpoints_identical)],
        params.stories,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph_and_stories() -> (SocialGraph, Vec<Vec<UserId>>) {
        let users = 2_000;
        let edges = scale_edge_list(11, users, 6, 2);
        let mut b = GraphBuilder::new(users);
        b.extend_watches(edges.iter().copied());
        let g = b.build();
        let params = ScaleParams {
            users,
            avg_degree: 6,
            stories: 25,
            votes_per_story: 30,
        };
        (g, story_batch(11, &params))
    }

    #[test]
    fn incremental_and_batch_checkpoints_agree() {
        let (g, stories) = small_graph_and_stories();
        let p = fig5_predictor();
        let incr = incremental_checkpoints(&g, &stories, &p);
        let batch = batch_checkpoints(&g, &stories, &p);
        assert_eq!(incr, batch);
        // The batch is big enough to exercise every checkpoint kind.
        assert!(incr.cascade > 0, "no in-network votes in the batch");
        assert!(incr.influence > 0);
        assert_eq!(incr.windows, 25 * (30 - 10));
    }

    #[test]
    fn story_batch_is_deterministic_and_distinct() {
        let params = ScaleParams {
            users: 500,
            avg_degree: 4,
            stories: 10,
            votes_per_story: 20,
        };
        let a = story_batch(3, &params);
        assert_eq!(a, story_batch(3, &params));
        for voters in &a {
            let mut sorted: Vec<UserId> = voters.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), voters.len(), "duplicate voter");
        }
    }
}
