//! The `mmap_sweep` experiment: the out-of-core CSR snapshot at scale
//! (ISSUE 8 tentpole part 3).
//!
//! Builds the same graph as `graph_scale` (`DIGG_SCALE_USERS` users at
//! ~10 watch edges per user), serialises it to the versioned
//! [`GraphMap`] snapshot, loads it back both ways (`open` = full
//! checksum verify, `open_trusted` = header-only, O(1) in the edge
//! count), and then proves the mmap-backed graph is a drop-in for the
//! in-memory one:
//!
//! * **bit-identity** — every friend and fan row of the [`GraphMap`]
//!   is compared slice-for-slice against the in-memory
//!   [`SocialGraph`];
//! * **sweep equality** — the batch story sweep runs over both
//!   backings at 1, 2, and 8 threads and all six `(in-network,
//!   influence)` checksum pairs must agree;
//! * **membership kernels** — the same probe workload is pushed
//!   through the scalar dispatch and the [`FanBitset`] probe and the
//!   hit counts must match, yielding the measured bitset-vs-scalar
//!   throughput row.
//!
//! Timings land as `scale` rows in `bench_summary.json`: snapshot
//! write and load rates, resident-set after the mapped sweep (the
//! out-of-core memory model's observable), sweep votes/sec over the
//! map, and the two membership-kernel rates. The `mmap_resident`
//! row abuses `per_sec` as a gauge — it carries `VmRSS` in kB, not a
//! rate — because the summary schema has exactly one free numeric
//! column; its `unit` says so.
//!
//! The artifact payload is timing-free (counts, equality verdicts,
//! checksums), like every other experiment.

use crate::registry::{record_scale, Artifact, ScaleRecord};
use crate::scale::{builder_from, scale_edge_list, story_batch, sweep_totals, ScaleParams};
use crate::timing::time_ms;
use digg_core::worker_threads;
use social_graph::io::write_graph_map;
use social_graph::{membership, FanBitset, FanView, GraphMap, SocialGraph, UserId};
use std::path::PathBuf;

/// Where the snapshot file goes: `DIGG_RESULTS_DIR` when set (so CI
/// artifacts keep it), the system temp dir otherwise. Removed after
/// the run unless `DIGG_KEEP_GRAPH_MAP=1`.
fn map_path(users: usize) -> PathBuf {
    let dir = std::env::var("DIGG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    dir.join(format!("graph_scale_{users}.gmap"))
}

/// Resident set (`VmRSS`) of this process in kB, from
/// `/proc/self/status`; 0 where the proc filesystem is unavailable.
fn vm_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Slice-for-slice row comparison between the two backings — the
/// bit-identity verdict the experiment exists to enforce.
fn rows_identical(mem: &SocialGraph, map: &GraphMap) -> bool {
    if FanView::user_count(mem) != map.user_count() || FanView::edge_count(mem) != map.edge_count()
    {
        return false;
    }
    (0..map.user_count()).all(|i| {
        let u = UserId::from_index(i);
        FanView::friends(mem, u) == map.friends(u) && FanView::fans(mem, u) == map.fans(u)
    })
}

/// Push every (voter row, story voter list) pair through one
/// membership kernel and count hits. The story voter lists are
/// unsorted and ~100 long, so `probe` sees exactly the candidate
/// shape the incremental sweep's in-network test sees.
fn membership_hits<G, F>(graph: &G, stories: &[Vec<UserId>], mut probe: F) -> u64
where
    G: FanView,
    F: FnMut(&[UserId], &[UserId]) -> bool,
{
    let mut hits = 0u64;
    for voters in stories {
        for &v in voters {
            if probe(graph.friends(v), voters) {
                hits += 1;
            }
        }
    }
    hits
}

/// The timing-free `mmap_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct MmapSweepPayload {
    /// Users in the graph.
    pub users: usize,
    /// Deduplicated edges in the built graph (= snapshot edges).
    pub edges: usize,
    /// Snapshot file size in bytes.
    pub file_bytes: u64,
    /// Every friend/fan row of the map equals the in-memory graph.
    pub rows_identical: bool,
    /// Sweep checksums agree across both backings at 1/2/8 threads.
    pub sweeps_identical: bool,
    /// Total in-network votes across the sweep batch (checksum).
    pub in_network_votes: u64,
    /// Total final influence across the sweep batch (checksum).
    pub final_influence: u64,
    /// Scalar and bitset membership kernels counted the same hits.
    pub membership_identical: bool,
    /// In-network probe hits over the membership workload (checksum).
    pub membership_hits: u64,
}

/// The `mmap_sweep` standalone experiment.
pub fn run_mmap_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let params = ScaleParams::from_env();
    let threads = worker_threads();

    let edges = scale_edge_list(seed, params.users, params.avg_degree, threads);
    let mem = builder_from(params.users, &edges).build_parallel(threads);
    drop(edges);
    let edge_count = FanView::edge_count(&mem);

    // Snapshot write + the two load paths.
    let path = map_path(params.users);
    let (write_res, write_ms) = time_ms(|| write_graph_map(&mem, &path));
    write_res.unwrap_or_else(|e| panic!("mmap_sweep: writing {} failed: {e}", path.display()));
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let (map, open_ms) = time_ms(|| GraphMap::open(&path));
    let map = map.unwrap_or_else(|e| panic!("mmap_sweep: verified open failed: {e}"));
    let (trusted, trusted_ms) = time_ms(|| GraphMap::open_trusted(&path));
    drop(trusted);

    // Bit-identity: the whole point of the format.
    let (identical, identity_ms) = time_ms(|| rows_identical(&mem, &map));

    // Sweep equality across backings and thread counts.
    let stories = story_batch(seed, &params);
    let total_votes = (params.stories * params.votes_per_story) as f64;
    let ((map_in, map_fi), map_sweep_ms) = time_ms(|| sweep_totals(&map, &stories, threads));
    let ((_, _), map_sweep1_ms) = time_ms(|| sweep_totals(&map, &stories, 1));
    let ((mem_in, mem_fi), mem_sweep_ms) = time_ms(|| sweep_totals(&mem, &stories, threads));
    let mut sweeps_identical = (map_in, map_fi) == (mem_in, mem_fi);
    for t in [1usize, 2, 8] {
        sweeps_identical &= sweep_totals(&map, &stories, t) == (map_in, map_fi);
        sweeps_identical &= sweep_totals(&mem, &stories, t) == (map_in, map_fi);
    }
    let rss_kb = vm_rss_kb();

    // Membership kernels over the mapped rows: scalar dispatch vs the
    // bitset probe, same workload, same hit count required.
    let (scalar_hits, scalar_ms) =
        time_ms(|| membership_hits(&map, &stories, membership::is_fan_of_any));
    let mut scratch = FanBitset::new(params.users);
    let (bitset_hits, bitset_ms) = time_ms(|| {
        membership_hits(&map, &stories, |row, cand| {
            membership::bitset_probe(row, cand, &mut scratch)
        })
    });
    let membership_identical = scalar_hits == bitset_hits;
    let probes = stories.iter().map(|s| s.len() as u64).sum::<u64>() as f64;

    let payload = MmapSweepPayload {
        users: params.users,
        edges: edge_count,
        file_bytes,
        rows_identical: identical,
        sweeps_identical,
        in_network_votes: map_in,
        final_influence: map_fi,
        membership_identical,
        membership_hits: scalar_hits,
    };

    record_scale(vec![
        ScaleRecord {
            name: "mmap_write".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: write_ms,
            per_sec: edge_count as f64 / (write_ms / 1e3).max(1e-9),
            unit: "edges",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            name: "mmap_load".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: open_ms,
            per_sec: edge_count as f64 / (open_ms / 1e3).max(1e-9),
            unit: "edges",
            // Checksum-verified load over header-only (O(1)) load.
            speedup_vs_serial: Some(open_ms / trusted_ms.max(1e-9)),
        },
        ScaleRecord {
            name: "mmap_load_trusted".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: trusted_ms,
            per_sec: edge_count as f64 / (trusted_ms / 1e3).max(1e-9),
            unit: "edges",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            // Gauge row: per_sec carries VmRSS after the mapped
            // sweeps, not a rate (see module docs).
            name: "mmap_resident".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: open_ms,
            per_sec: rss_kb as f64,
            unit: "kB",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            name: "mmap_sweeps".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: map_sweep_ms,
            per_sec: total_votes / (map_sweep_ms / 1e3).max(1e-9),
            unit: "votes",
            speedup_vs_serial: Some(map_sweep1_ms / map_sweep_ms.max(1e-9)),
        },
        ScaleRecord {
            name: "membership_scalar".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: scalar_ms,
            per_sec: probes / (scalar_ms / 1e3).max(1e-9),
            unit: "probes",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            name: "membership_bitset".into(),
            users: params.users,
            edges: edge_count,
            wall_ms: bitset_ms,
            per_sec: probes / (bitset_ms / 1e3).max(1e-9),
            unit: "probes",
            // Bitset-vs-scalar membership throughput ratio.
            speedup_vs_serial: Some(scalar_ms / bitset_ms.max(1e-9)),
        },
    ]);

    let mut rendered = format!(
        "Mmap CSR snapshot harness ({} users, {} edges, {} threads)\n",
        params.users, edge_count, threads
    );
    rendered.push_str(&format!(
        "snapshot: {file_bytes} bytes written in {write_ms:.1} ms ({:.2}M edges/sec)\n",
        edge_count as f64 / (write_ms / 1e3).max(1e-9) / 1e6
    ));
    rendered.push_str(&format!(
        "load: verified {open_ms:.1} ms, trusted {trusted_ms:.3} ms (O(1)), VmRSS {:.1} MB after mapped sweeps\n",
        rss_kb as f64 / 1024.0
    ));
    rendered.push_str(&format!(
        "rows vs in-memory graph: {} ({identity_ms:.1} ms full scan)\n",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    ));
    rendered.push_str(&format!(
        "sweeps: map {map_sweep_ms:.1} ms ({:.2}M votes/sec) vs mem {mem_sweep_ms:.1} ms ({:.2}M votes/sec), 1/2/8-thread checksums {}\n",
        total_votes / (map_sweep_ms / 1e3).max(1e-9) / 1e6,
        total_votes / (mem_sweep_ms / 1e3).max(1e-9) / 1e6,
        if sweeps_identical { "identical" } else { "DIVERGED" }
    ));
    rendered.push_str(&format!(
        "membership: scalar {scalar_ms:.1} ms vs bitset {bitset_ms:.1} ms ({:.2}x), {scalar_hits} hits {}\n",
        scalar_ms / bitset_ms.max(1e-9),
        if membership_identical { "identical" } else { "DIVERGED" }
    ));

    drop(map);
    if std::env::var("DIGG_KEEP_GRAPH_MAP").ok().as_deref() != Some("1") {
        std::fs::remove_file(&path).ok();
    }

    let ok = identical && sweeps_identical && membership_identical;
    (
        vec![Artifact::new("mmap_sweep", rendered, &payload).with_ok(ok)],
        params.stories,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_backing_is_bit_identical_and_sweep_equivalent() {
        let params = ScaleParams {
            users: 3_000,
            avg_degree: 6,
            stories: 30,
            votes_per_story: 25,
        };
        let edges = scale_edge_list(13, params.users, params.avg_degree, 2);
        let mem = builder_from(params.users, &edges).build();

        let path = std::env::temp_dir().join("digg-bench-mmap-sweep-test.gmap");
        write_graph_map(&mem, &path).unwrap();
        let map = GraphMap::open(&path).unwrap();
        assert!(rows_identical(&mem, &map));

        let stories = story_batch(13, &params);
        let want = sweep_totals(&mem, &stories, 1);
        for threads in [1usize, 2, 8] {
            assert_eq!(sweep_totals(&map, &stories, threads), want);
            assert_eq!(sweep_totals(&mem, &stories, threads), want);
        }

        let scalar = membership_hits(&map, &stories, membership::is_fan_of_any);
        let mut scratch = FanBitset::new(params.users);
        let bitset = membership_hits(&map, &stories, |row, cand| {
            membership::bitset_probe(row, cand, &mut scratch)
        });
        assert_eq!(scalar, bitset);

        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_identical_rejects_a_different_graph() {
        let edges = scale_edge_list(13, 1_000, 5, 2);
        let mem = builder_from(1_000, &edges).build();
        let other = builder_from(1_000, &edges[..edges.len() - 1]).build();

        let path = std::env::temp_dir().join("digg-bench-mmap-reject-test.gmap");
        write_graph_map(&other, &path).unwrap();
        let map = GraphMap::open(&path).unwrap();
        assert!(!rows_identical(&mem, &map));
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vm_rss_reads_a_positive_resident_set_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(vm_rss_kb() > 0);
        }
    }
}
