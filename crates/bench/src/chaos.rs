//! The `chaos_sweep` experiment: the full fault-matrix drill for the
//! hardened sweep supervisor (DESIGN.md §17).
//!
//! Where `checkpoint_sweep` proves recovery from one fault class
//! (worker kills), this experiment drives **every** class the chaos
//! plan knows — kills, silent stalls, heartbeat-only dawdles, corrupt
//! response frames, torn checkpoint writes, bit-flipped checkpoint
//! writes — through a subprocess sweep and demands three things:
//!
//! 1. **Byte-identity under chaos.** A grid of at least six cells runs
//!    once clean and once under [`ChaosPlan::matrix`] (round-robin
//!    classes, so each of the six fires at least once). Every faulted
//!    cell must recover — via watchdog SIGKILL + respawn, generation
//!    fallback, or cold restart — and the chaos sweep's rows must
//!    serialize byte-identical to the clean sweep's.
//! 2. **Taxonomy coverage.** The [`SweepDegradationReport`]'s observed
//!    [`FailureCounts`] must show each recovery path actually fired:
//!    hangs (stall), deadline expiries (dawdle), corrupt frames,
//!    crashes (kill + the post-corruption chaos exits), and checkpoint
//!    fallback rungs (torn + bit-flipped generations).
//! 3. **Lenient degradation.** A separate drill with a zero respawn
//!    budget and one killed cell must degrade exactly that cell to a
//!    [`CellResult::Failed`] while every surviving cell's row stays
//!    byte-identical to the clean run.
//!
//! Recovery latency (chaos wall vs clean wall) and checkpoint overhead
//! (one cell, checkpointing off vs every-N) are recorded as
//! `bench_summary.json` baseline rows. Without a `sweep_worker` binary
//! the whole drill is skipped (there is no subprocess to fault);
//! `DIGG_REQUIRE_WORKER=1` turns that skip into a failure, as in
//! `checkpoint_sweep`.

use crate::baseline::BaselineRecord;
use crate::checkpoint::{checkpoint_specs, sweep_worker_cmd, CheckpointParams};
use crate::registry::{record_baselines, Artifact};
use crate::timing::time_ms;
use digg_data::ChaosPlan;
use digg_sim::supervisor::{
    run_cell_checkpointed, run_sweep_supervised_lenient, CellCheckpointing, CellResult, ChaosFault,
    FailureCounts, SupervisorConfig, SweepDegradationReport, WatchdogConfig,
};
use digg_sim::sweep::{CellOutcome, ScenarioRun};
use serde::Serialize;
use std::time::Duration;

fn env_secs(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default)
        .max(1)
}

/// Watchdog deadlines for the drill. The stall cell burns one full
/// heartbeat timeout and the dawdle cell one full cell deadline before
/// recovery, so these bound the drill's wall time; CI smoke tightens
/// them via `DIGG_CHAOS_HEARTBEAT_SECS` / `DIGG_CHAOS_DEADLINE_SECS`.
/// The deadline must comfortably exceed a clean cell's wall time or
/// healthy resumed attempts get spuriously killed.
fn chaos_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        heartbeat_timeout: Duration::from_secs(env_secs("DIGG_CHAOS_HEARTBEAT_SECS", 30)),
        cell_deadline: Some(Duration::from_secs(env_secs(
            "DIGG_CHAOS_DEADLINE_SECS",
            240,
        ))),
    }
}

/// The timing-free `chaos_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosSweepPayload {
    /// Users per cell.
    pub users: usize,
    /// Whether the drill ran subprocess workers (`false` = no worker
    /// binary; the chaos halves were skipped).
    pub subprocess: bool,
    /// Cells in the grid.
    pub cells: usize,
    /// Faults the matrix plan injected (== cells when subprocess).
    pub faults_injected: usize,
    /// The clean sweep's rows, row-major.
    pub clean: Vec<ScenarioRun>,
    /// Chaos-recovered rows byte-identical to the clean rows
    /// (vacuously true when skipped — see `subprocess`).
    pub chaos_identical: bool,
    /// No cell exhausted its respawn budget under the full matrix.
    pub chaos_all_recovered: bool,
    /// Observed failure events by kind during the matrix drill.
    pub observed: FailureCounts,
    /// Every fault class left its signature in `observed`.
    pub taxonomy_covered: bool,
    /// The zero-budget drill degraded exactly one cell and kept every
    /// survivor byte-identical.
    pub degradation_isolated: bool,
}

fn rows_of(results: &[CellResult]) -> Vec<ScenarioRun> {
    results.iter().filter_map(|r| r.run().cloned()).collect()
}

fn lenient_or_panic(
    specs: &[digg_sim::sweep::ScenarioSpec],
    seeds: &[u64],
    cfg: &SupervisorConfig,
) -> (Vec<CellResult>, SweepDegradationReport) {
    run_sweep_supervised_lenient(specs, seeds, cfg)
        .unwrap_or_else(|e| panic!("chaos_sweep supervisor failed: {e}"))
}

/// The `chaos_sweep` standalone experiment.
pub fn run_chaos_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let params = CheckpointParams::from_env();
    let threads = digg_core::worker_threads();
    let specs = checkpoint_specs(&params);
    // Three seeds x two specs = six cells: one per fault class under
    // the round-robin matrix.
    let seeds: Vec<u64> = (0..3).map(|i| seed.wrapping_add(i)).collect();
    let cells = specs.len() * seeds.len();
    let dir = std::env::temp_dir().join(format!("digg-chaos-sweep-{}", std::process::id()));

    let worker_cmd = sweep_worker_cmd();
    let subprocess = worker_cmd.is_some();
    let require_worker = std::env::var("DIGG_REQUIRE_WORKER")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);

    let base_cfg = match &worker_cmd {
        Some(cmd) => {
            SupervisorConfig::subprocess(cmd.clone(), threads, params.checkpoint_every, dir.clone())
        }
        None => SupervisorConfig {
            checkpoint_every: params.checkpoint_every,
            checkpoint_dir: Some(dir.clone()),
            ..SupervisorConfig::in_process(threads)
        },
    };

    // 1. The clean reference sweep.
    let ((clean_results, clean_report), clean_ms) =
        time_ms(|| lenient_or_panic(&specs, &seeds, &base_cfg));
    let clean = rows_of(&clean_results);
    let clean_ok = clean_report.failed.is_empty() && clean.len() == cells;

    // 2. The full-matrix chaos drill.
    let plan = ChaosPlan::fault_all(seed, 2);
    let matrix = plan.matrix(cells);
    let faults_injected = if subprocess {
        matrix.iter().flatten().count()
    } else {
        0
    };
    let (chaos_identical, chaos_all_recovered, observed, taxonomy_covered, chaos_ms) = if subprocess
    {
        let chaos_cfg = SupervisorConfig {
            chaos: matrix,
            watchdog: chaos_watchdog(),
            ..base_cfg.clone()
        };
        let ((results, report), chaos_ms) =
            time_ms(|| lenient_or_panic(&specs, &seeds, &chaos_cfg));
        let identical = serde_json::to_string(&rows_of(&results)) == serde_json::to_string(&clean);
        let all_recovered = report.failed.is_empty() && report.completed == cells;
        // Each class's observable signature: stall -> hung, dawdle
        // -> deadline, corrupt frame -> corrupt_frame, kill + the
        // post-corruption chaos exits -> crashed, torn + bit-flip
        // generations -> checkpoint fallback rungs.
        let covered = report.observed.hung >= 1
            && report.observed.deadline_exceeded >= 1
            && report.observed.corrupt_frame >= 1
            && report.observed.crashed >= 1
            && report.observed.corrupt_checkpoint >= 2;
        (
            identical,
            all_recovered,
            report.observed,
            covered,
            Some(chaos_ms),
        )
    } else {
        (true, true, FailureCounts::default(), true, None)
    };

    // 3. Lenient degradation: zero respawn budget, one killed cell —
    // the batch must survive minus exactly that cell.
    let degradation_isolated = if subprocess {
        let mut chaos = vec![None; cells];
        chaos[0] = Some(ChaosFault::Kill {
            after_checkpoints: 1,
        });
        let lenient_cfg = SupervisorConfig {
            chaos,
            max_respawns: 0,
            ..base_cfg.clone()
        };
        let (results, report) = lenient_or_panic(&specs, &seeds, &lenient_cfg);
        let failed_right = report.failed.len() == 1 && report.failed[0].cell == 0;
        let survivors_identical = results
            .iter()
            .zip(&clean_results)
            .skip(1)
            .all(|(got, want)| match (got, want) {
                (
                    CellResult::Completed(CellOutcome::Ok(g)),
                    CellResult::Completed(CellOutcome::Ok(w)),
                ) => serde_json::to_string(g).ok() == serde_json::to_string(w).ok(),
                _ => false,
            });
        failed_right && survivors_identical
    } else {
        true
    };
    let _ = std::fs::remove_dir_all(&dir);

    // 4. Checkpoint overhead under the generational scheme: one cell,
    // checkpointing off vs every-N.
    let overhead_dir =
        std::env::temp_dir().join(format!("digg-chaos-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&overhead_dir).expect("create overhead temp dir");
    let overhead_path = overhead_dir.join("cell_overhead.snap");
    let spec = &specs[0];
    let off = CellCheckpointing::default();
    let (run_off, off_ms) = time_ms(|| {
        run_cell_checkpointed(spec, seed, &off)
            .unwrap_or_else(|e| panic!("overhead probe (off) failed: {e}"))
            .0
    });
    let on = CellCheckpointing {
        every_events: params.checkpoint_every,
        path: Some(&overhead_path),
        ..CellCheckpointing::default()
    };
    let ((run_on, report), on_ms) = time_ms(|| {
        run_cell_checkpointed(spec, seed, &on)
            .unwrap_or_else(|e| panic!("overhead probe (on) failed: {e}"))
    });
    let overhead_ok = run_on == run_off && report.checkpoints_written > 0;
    let _ = std::fs::remove_dir_all(&overhead_dir);

    let payload = ChaosSweepPayload {
        users: params.users,
        subprocess,
        cells,
        faults_injected,
        clean,
        chaos_identical,
        chaos_all_recovered,
        observed,
        taxonomy_covered,
        degradation_isolated,
    };

    // Recovery latency: the chaos sweep *is* the clean sweep plus
    // recovery work, so new/seed here is the recovery overhead ratio.
    let mut baselines = vec![BaselineRecord::new(
        "chaos_checkpoint_overhead",
        off_ms,
        on_ms,
        on_ms,
    )];
    if let Some(chaos_ms) = chaos_ms {
        baselines.push(BaselineRecord::new(
            "chaos_recovery_latency",
            clean_ms,
            chaos_ms,
            chaos_ms,
        ));
    }
    record_baselines(baselines);

    let mut rendered = format!(
        "Chaos-matrix sweep ({} users, {cells} cells, checkpoint every {} events)\n",
        params.users, params.checkpoint_every
    );
    rendered.push_str(&format!(
        "clean sweep: {cells} cells in {clean_ms:.1} ms via {} workers ({threads} shards)\n",
        if subprocess {
            "subprocess"
        } else {
            "in-process"
        }
    ));
    match chaos_ms {
        Some(chaos_ms) => {
            rendered.push_str(&format!(
                "chaos sweep: {faults_injected} faults (kill/stall/dawdle/corrupt-frame/torn/bit-flip), recovered in {chaos_ms:.1} ms — rows {}\n",
                if payload.chaos_identical {
                    "byte-identical to clean"
                } else {
                    "DIVERGED"
                }
            ));
            rendered.push_str(&format!(
                "observed: {} hung, {} crashed, {} corrupt frames, {} checkpoint fallbacks, {} deadline expiries — taxonomy {}\n",
                observed.hung,
                observed.crashed,
                observed.corrupt_frame,
                observed.corrupt_checkpoint,
                observed.deadline_exceeded,
                if taxonomy_covered { "covered" } else { "INCOMPLETE" }
            ));
            rendered.push_str(&format!(
                "zero-budget drill: cell 0 degraded, survivors {}\n",
                if degradation_isolated {
                    "byte-identical"
                } else {
                    "DIVERGED"
                }
            ));
        }
        None => rendered.push_str(if require_worker {
            "chaos sweep: FAILED (DIGG_REQUIRE_WORKER set but no sweep_worker binary found; build digg-bench binaries or set DIGG_SWEEP_WORKER)\n"
        } else {
            "chaos sweep: SKIPPED (no sweep_worker binary found; build digg-bench binaries or set DIGG_SWEEP_WORKER)\n"
        }),
    }
    rendered.push_str(&format!(
        "checkpoint overhead: off {off_ms:.1} ms, every-{} {on_ms:.1} ms ({} generational checkpoints) — {}\n",
        params.checkpoint_every,
        report.checkpoints_written,
        if overhead_ok { "identical results" } else { "DIVERGED" }
    ));

    let ok = clean_ok
        && payload.chaos_identical
        && payload.chaos_all_recovered
        && taxonomy_covered
        && degradation_isolated
        && overhead_ok
        && (subprocess || !require_worker);
    (
        vec![Artifact::new("chaos_sweep", rendered, &payload).with_ok(ok)],
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_env_defaults_are_sane() {
        let wd = chaos_watchdog();
        assert!(wd.heartbeat_timeout >= Duration::from_secs(1));
        let deadline = wd.cell_deadline.expect("drill always sets a deadline");
        assert!(deadline >= wd.heartbeat_timeout);
    }
}
