//! The `checkpoint_sweep` experiment: end-to-end proof that the
//! fault-tolerant multi-process sweep runner (DESIGN.md §15) recovers
//! killed workers without perturbing results, plus the cost ledger of
//! checkpointing itself.
//!
//! Three measurements, one artifact:
//!
//! 1. **Recovery identity.** The same scenario grid runs twice through
//!    [`run_sweep_supervised`] with subprocess workers: once clean, once
//!    under a [`SweepKillPlan`] that kills *every* worker right after
//!    one of its checkpoints. The killed sweep's rows must serialize
//!    **byte-identical** to the clean sweep's — recovery resumes each
//!    cell from its last snapshot and a restored `Sim` is bit-identical
//!    to the one that wrote it. Without a worker binary (library test
//!    runs, exotic CI sandboxes) the sweep falls back to in-process
//!    workers and the kill half is skipped — reported in the artifact,
//!    never silently. Environments that exist to exercise the kill
//!    path (CI) set `DIGG_REQUIRE_WORKER=1`, which turns the skip into
//!    an artifact failure instead of a note.
//! 2. **Checkpoint overhead.** One grid cell timed with checkpointing
//!    off versus every-N events, recorded as a `sim_checkpoint` baseline
//!    row (events/sec both ways; `speedup` < 1 is the overhead).
//! 3. **Snapshot scale.** A `DIGG_CHECKPOINT_USERS`-user simulation
//!    (default one million; CI smoke uses 50k) snapshotted and restored
//!    once, recording encode/decode wall time and container size as
//!    `scale` rows (bytes/sec).
//!
//! The artifact payload is timing-free; rates live in the rendered text
//! and the bench-summary records, like every other experiment here.

use crate::baseline::BaselineRecord;
use crate::registry::{record_baselines, record_scale, Artifact, ScaleRecord};
use crate::timing::time_ms;
use digg_data::SweepKillPlan;
use digg_sim::population::PopulationConfig;
use digg_sim::supervisor::{
    run_cell_checkpointed, run_sweep_supervised, CellCheckpointing, SupervisorConfig, SweepError,
};
use digg_sim::sweep::{scenario_population, scenario_sim, CellOutcome, ScenarioRun, ScenarioSpec};
use digg_sim::{Kernel, Sim, SimConfig};
use digg_snapshot::{Restore, Snapshot};
use serde::Serialize;
use std::path::PathBuf;

/// Workload dimensions, scaled off `DIGG_CHECKPOINT_USERS`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CheckpointParams {
    /// Users per sweep cell and in the snapshot-scale sim
    /// (`DIGG_CHECKPOINT_USERS`, default 1,000,000; CI smoke: 50,000).
    pub users: usize,
    /// Simulated minutes per sweep cell.
    pub minutes: u64,
    /// Events between checkpoints.
    pub checkpoint_every: u64,
}

impl CheckpointParams {
    /// Dimensions from the environment (≥ 1,000 users enforced so the
    /// grid always carries real graph state into its snapshots).
    pub fn from_env() -> CheckpointParams {
        let users = std::env::var("DIGG_CHECKPOINT_USERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1_000_000)
            .max(1_000);
        CheckpointParams {
            users,
            minutes: 240,
            checkpoint_every: 300,
        }
    }
}

/// The scenario grid the recovery drill sweeps: both kernels at the
/// scaled user count, toy rates (event counts stay bounded — rates are
/// population-wide, not per-user).
pub fn checkpoint_specs(params: &CheckpointParams) -> Vec<ScenarioSpec> {
    let mut cfg = SimConfig::toy(0);
    cfg.users = params.users;
    vec![
        ScenarioSpec {
            name: "ckpt-compat".into(),
            cfg: cfg.clone(),
            pop_cfg: PopulationConfig::toy(params.users),
            kernel: Kernel::Compat,
            minutes: params.minutes,
        },
        ScenarioSpec {
            name: "ckpt-streams".into(),
            cfg,
            pop_cfg: PopulationConfig::toy(params.users),
            kernel: Kernel::EventStreams,
            minutes: params.minutes,
        },
    ]
}

/// Locate the `sweep_worker` subprocess binary: the `DIGG_SWEEP_WORKER`
/// env override, else a sibling of the current executable (where cargo
/// puts workspace binaries next to `experiments`). `None` means
/// subprocess supervision is unavailable and callers fall back to
/// in-process workers.
pub fn sweep_worker_cmd() -> Option<Vec<String>> {
    if let Ok(p) = std::env::var("DIGG_SWEEP_WORKER") {
        if !p.is_empty() {
            return Some(vec![p]);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let sibling = exe
        .parent()?
        .join(format!("sweep_worker{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        Some(vec![sibling.to_string_lossy().into_owned()])
    } else {
        None
    }
}

/// The timing-free `checkpoint_sweep` artifact payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CheckpointSweepPayload {
    /// Users per cell.
    pub users: usize,
    /// Whether the recovery drill ran subprocess workers (`false` =
    /// no worker binary found; the kill half was skipped).
    pub subprocess: bool,
    /// Cells in the grid.
    pub cells: usize,
    /// Cells the kill plan scheduled a worker death for.
    pub kills_injected: usize,
    /// The clean sweep's rows, row-major.
    pub clean: Vec<ScenarioRun>,
    /// Killed-and-recovered rows byte-identical to the clean rows
    /// (vacuously true when the kill half was skipped — see
    /// `subprocess`).
    pub recovered_identical: bool,
    /// Snapshot container size for the scaled sim, bytes.
    pub snapshot_bytes: usize,
    /// The scaled snapshot round-tripped: the restored sim re-encodes
    /// to the same bytes.
    pub snapshot_round_trip: bool,
}

fn rows(outcomes: &[CellOutcome]) -> Vec<ScenarioRun> {
    outcomes.iter().filter_map(|o| o.run().cloned()).collect()
}

fn sweep_or_panic(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    cfg: &SupervisorConfig,
) -> Vec<CellOutcome> {
    run_sweep_supervised(specs, seeds, cfg)
        .unwrap_or_else(|e: SweepError| panic!("checkpoint_sweep supervisor failed: {e}"))
}

/// The `checkpoint_sweep` standalone experiment.
pub fn run_checkpoint_sweep(seed: u64) -> (Vec<Artifact>, usize) {
    let params = CheckpointParams::from_env();
    let threads = digg_core::worker_threads();
    let specs = checkpoint_specs(&params);
    let seeds: Vec<u64> = (0..2).map(|i| seed.wrapping_add(i)).collect();
    let cells = specs.len() * seeds.len();
    let dir = std::env::temp_dir().join(format!("digg-checkpoint-sweep-{}", std::process::id()));

    let worker_cmd = sweep_worker_cmd();
    let subprocess = worker_cmd.is_some();
    let require_worker = std::env::var("DIGG_REQUIRE_WORKER")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);

    // 1. Recovery identity: clean sweep vs killed-and-recovered sweep.
    let clean_cfg = match &worker_cmd {
        Some(cmd) => {
            SupervisorConfig::subprocess(cmd.clone(), threads, params.checkpoint_every, dir.clone())
        }
        None => SupervisorConfig {
            checkpoint_every: params.checkpoint_every,
            checkpoint_dir: Some(dir.clone()),
            ..SupervisorConfig::in_process(threads)
        },
    };
    let (clean_outcomes, clean_ms) = time_ms(|| sweep_or_panic(&specs, &seeds, &clean_cfg));
    let clean = rows(&clean_outcomes);

    let kill_plan = SweepKillPlan::kill_all(seed, 2);
    let kills = kill_plan.chaos(cells);
    let kills_injected = if subprocess {
        kills.iter().flatten().count()
    } else {
        0
    };
    let (recovered_identical, killed_ms) = if subprocess {
        let killed_cfg = SupervisorConfig {
            chaos: kills,
            ..clean_cfg.clone()
        };
        let (killed_outcomes, killed_ms) = time_ms(|| sweep_or_panic(&specs, &seeds, &killed_cfg));
        let identical =
            serde_json::to_string(&rows(&killed_outcomes)) == serde_json::to_string(&clean);
        (identical, Some(killed_ms))
    } else {
        (true, None)
    };
    let _ = std::fs::remove_dir_all(&dir);

    // 2. Checkpoint overhead: the first cell, checkpointing off vs
    // every-N, events/sec both ways.
    let overhead_dir =
        std::env::temp_dir().join(format!("digg-checkpoint-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&overhead_dir).expect("create overhead temp dir");
    let overhead_path: PathBuf = overhead_dir.join("cell_overhead.snap");
    let spec = &specs[0];
    let ((run_off, events_off), off_ms) = time_ms(|| {
        let mut sim = scenario_sim(spec, seed);
        sim.run(spec.minutes);
        let run = ScenarioRun {
            scenario: spec.name.clone(),
            seed,
            minutes: spec.minutes,
            stories: sim.stories().len(),
            metrics: sim.metrics().clone(),
        };
        (run, sim.events_fired())
    });
    let on = CellCheckpointing {
        every_events: params.checkpoint_every,
        path: Some(&overhead_path),
        ..CellCheckpointing::default()
    };
    let ((run_on, report), on_ms) = time_ms(|| {
        run_cell_checkpointed(spec, seed, &on)
            .unwrap_or_else(|e| panic!("overhead probe failed: {e}"))
    });
    let overhead_ok = run_on == run_off && report.checkpoints_written > 0;
    let _ = std::fs::remove_dir_all(&overhead_dir);

    // 3. Snapshot scale: encode/decode one scaled sim.
    let scale_spec = &specs[1];
    let mut scaled = scenario_sim(scale_spec, seed);
    scaled.run(60);
    let edges = scaled.population().graph.edge_count();
    let (bytes, encode_ms) = time_ms(|| scaled.snapshot());
    let snapshot_bytes = bytes.len();
    let (restored, decode_ms) = time_ms(|| {
        Sim::restore(&bytes, scenario_population(scale_spec, seed))
            .unwrap_or_else(|e| panic!("scaled snapshot failed to restore: {e}"))
    });
    let snapshot_round_trip = restored.snapshot() == bytes;

    let payload = CheckpointSweepPayload {
        users: params.users,
        subprocess,
        cells,
        kills_injected,
        clean,
        recovered_identical,
        snapshot_bytes,
        snapshot_round_trip,
    };

    record_baselines(vec![BaselineRecord::new(
        "sim_checkpoint",
        off_ms,
        on_ms,
        on_ms,
    )]);
    record_scale(vec![
        ScaleRecord {
            name: "sim_snapshot_encode".into(),
            users: params.users,
            edges,
            wall_ms: encode_ms,
            per_sec: snapshot_bytes as f64 / (encode_ms / 1e3).max(1e-9),
            unit: "bytes",
            speedup_vs_serial: None,
        },
        ScaleRecord {
            name: "sim_snapshot_decode".into(),
            users: params.users,
            edges,
            wall_ms: decode_ms,
            per_sec: snapshot_bytes as f64 / (decode_ms / 1e3).max(1e-9),
            unit: "bytes",
            speedup_vs_serial: None,
        },
    ]);

    let mut rendered = format!(
        "Checkpoint/replay sweep ({} users, {} cells, checkpoint every {} events)\n",
        params.users, cells, params.checkpoint_every
    );
    rendered.push_str(&format!(
        "clean sweep: {cells} cells in {clean_ms:.1} ms via {} workers ({threads} shards)\n",
        if subprocess {
            "subprocess"
        } else {
            "in-process"
        }
    ));
    match killed_ms {
        Some(killed_ms) => rendered.push_str(&format!(
            "killed sweep: {kills_injected} worker deaths injected, recovered in {killed_ms:.1} ms — rows {}\n",
            if payload.recovered_identical {
                "byte-identical to clean"
            } else {
                "DIVERGED"
            }
        )),
        None => rendered.push_str(if require_worker {
            "killed sweep: FAILED (DIGG_REQUIRE_WORKER set but no sweep_worker binary found; build digg-bench binaries or set DIGG_SWEEP_WORKER)\n"
        } else {
            "killed sweep: SKIPPED (no sweep_worker binary found; build digg-bench binaries or set DIGG_SWEEP_WORKER)\n"
        }),
    }
    rendered.push_str(&format!(
        "checkpoint overhead: off {off_ms:.1} ms, every-{} {on_ms:.1} ms ({} checkpoints, {:.2}M events/sec off, {:.2}M events/sec on) — {}\n",
        params.checkpoint_every,
        report.checkpoints_written,
        events_off as f64 / (off_ms / 1e3).max(1e-9) / 1e6,
        events_off as f64 / (on_ms / 1e3).max(1e-9) / 1e6,
        if overhead_ok { "identical results" } else { "DIVERGED" }
    ));
    rendered.push_str(&format!(
        "snapshot at {} users: {:.2} MB, encode {encode_ms:.1} ms, decode {decode_ms:.1} ms — {}\n",
        params.users,
        snapshot_bytes as f64 / 1e6,
        if snapshot_round_trip {
            "round-trips byte-identically"
        } else {
            "DIVERGED"
        }
    ));

    let ok = payload.recovered_identical
        && overhead_ok
        && snapshot_round_trip
        && payload.clean.len() == cells
        && (subprocess || !require_worker);
    (
        vec![Artifact::new("checkpoint_sweep", rendered, &payload).with_ok(ok)],
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> CheckpointParams {
        CheckpointParams {
            users: 1_000,
            minutes: 120,
            checkpoint_every: 200,
        }
    }

    #[test]
    fn checkpoint_specs_cover_both_kernels() {
        let specs = checkpoint_specs(&tiny_params());
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].kernel, Kernel::Compat);
        assert_eq!(specs[1].kernel, Kernel::EventStreams);
        assert!(specs.iter().all(|s| s.cfg.users == 1_000));
    }

    #[test]
    fn in_process_checkpointed_sweep_matches_plain_runs() {
        let params = tiny_params();
        let specs = checkpoint_specs(&params);
        let seeds = [3u64, 4];
        let dir = std::env::temp_dir().join(format!(
            "digg-checkpoint-module-test-{}",
            std::process::id()
        ));
        let cfg = SupervisorConfig {
            checkpoint_every: params.checkpoint_every,
            checkpoint_dir: Some(dir.clone()),
            ..SupervisorConfig::in_process(2)
        };
        let outcomes = run_sweep_supervised(&specs, &seeds, &cfg).unwrap();
        let got = rows(&outcomes);
        let want: Vec<ScenarioRun> = specs
            .iter()
            .flat_map(|spec| {
                seeds
                    .iter()
                    .map(move |&s| digg_sim::sweep::run_scenario(spec, s))
            })
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
