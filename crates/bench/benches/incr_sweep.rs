//! Criterion bench for the per-vote analytics primitive:
//! `IncrementalSweep::apply_vote` over a full story against the batch
//! re-sweep-per-vote alternative, on a 10k-user graph. The scale
//! harness (`experiments incr_sweep`) covers the million-user point;
//! this bench tracks the per-call cost where the state machine's
//! epoch-clear and fan-row probe overheads live.

use criterion::{criterion_group, criterion_main, Criterion};
use des_core::StreamRng;
use digg_bench::incr::{batch_checkpoints, incremental_checkpoints};
use digg_bench::scale::scale_edge_list;
use digg_core::predictor::fig5_predictor;
use digg_core::IncrementalSweep;
use rand::Rng;
use social_graph::{GraphBuilder, SocialGraph, UserId};
use std::hint::black_box;

const USERS: usize = 10_000;
const STORIES: usize = 20;
const VOTES: usize = 100;

fn graph_and_stories() -> (SocialGraph, Vec<Vec<UserId>>) {
    let edges = scale_edge_list(1, USERS, 10, 8);
    let mut b = GraphBuilder::new(USERS);
    b.extend_watches(edges.iter().copied());
    let graph = b.build();
    let stories = (0..STORIES)
        .map(|i| {
            let mut rng = StreamRng::keyed(1, &[0x42_4e43, i as u64]);
            let mut voters: Vec<UserId> = Vec::with_capacity(VOTES);
            while voters.len() < VOTES {
                let v = UserId::from_index(rng.random_range(0..USERS));
                if !voters.contains(&v) {
                    voters.push(v);
                }
            }
            voters
        })
        .collect();
    (graph, stories)
}

fn bench_incr_sweep(c: &mut Criterion) {
    let (graph, stories) = graph_and_stories();
    let predictor = fig5_predictor();

    c.bench_function("incr_apply_vote_story100", |b| {
        let mut incr = IncrementalSweep::new(&graph);
        b.iter(|| {
            incr.begin(&graph);
            incr.reserve_votes(VOTES);
            for &v in &stories[0] {
                black_box(incr.apply_vote(&graph, v));
            }
            black_box(incr.votes_applied())
        })
    });
    c.bench_function("incr_checkpoints_20x100", |b| {
        b.iter(|| black_box(incremental_checkpoints(&graph, &stories, &predictor)))
    });
    c.bench_function("batch_resweep_checkpoints_20x100", |b| {
        b.iter(|| black_box(batch_checkpoints(&graph, &stories, &predictor)))
    });
}

criterion_group!(benches, bench_incr_sweep);
criterion_main!(benches);
