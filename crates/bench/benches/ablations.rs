//! Criterion benches over the ablation kernels: the diversity
//! promoter's weighted-vote computation (the expensive part of the
//! post-Sept-2006 rule), the feature-ablation CV, and one SIR sweep
//! point. The full ablation tables come from the `ablations` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use digg_bench::ablations::{feature_ablation, window_sweep};
use digg_bench::shared_synthesis;
use digg_core::features::INTERESTINGNESS_THRESHOLD;
use digg_sim::promotion::DiversityPromoter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_graph::generators::preferential_attachment;
use social_graph::UserId;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let synthesis = shared_synthesis();
    let ds = &synthesis.dataset;

    c.bench_function("abl1_feature_ablation", |b| {
        b.iter(|| black_box(feature_ablation(ds, INTERESTINGNESS_THRESHOLD, 1)))
    });

    c.bench_function("abl3_window_sweep", |b| {
        b.iter(|| black_box(window_sweep(ds, INTERESTINGNESS_THRESHOLD, 1)))
    });

    // ABL2 kernel: the diversity promoter's weighted vote sum over a
    // 43-vote story (quadratic in votes; runs on every queue vote).
    let story = synthesis
        .sim
        .stories()
        .iter()
        .find(|s| s.vote_count() >= 43)
        .expect("some story has 43 votes");
    let rule = DiversityPromoter {
        min_weighted: 43.0,
        in_network_weight: 0.4,
    };
    let graph = &synthesis.sim.population().graph;
    c.bench_function("abl2_diversity_weighted_votes", |b| {
        b.iter(|| black_box(rule.weighted_votes(story, graph)))
    });

    // ABL4 kernel: one SIR outbreak on a 3k-node scale-free graph.
    let mut rng = StdRng::seed_from_u64(9);
    let g = preferential_attachment(&mut rng, 3_000, 3, 1.0);
    c.bench_function("abl4_sir_outbreak_3k", |b| {
        b.iter(|| {
            black_box(digg_epidemics::sir::run(
                &mut rng,
                &g,
                &[UserId(0)],
                0.1,
                1.0,
                10_000,
            ))
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_ablations
}
criterion_main!(ablations);
