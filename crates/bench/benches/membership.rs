//! Measurement bench behind `social_graph::membership`'s dispatch
//! constants.
//!
//! `is_fan_of_any` must answer "is any of these `c` candidates in this
//! sorted friend row of length `d`?" and has four kernels to choose
//! from: per-candidate binary search (O(c log d)), a two-pointer merge
//! (O(d + c)), galloping search (O(c log(d/c))), and a bitset probe
//! (O(c + d) with O(1) per-element cost and no sort requirement on the
//! candidates). This bench sweeps the (d, c) grid the sweep workloads
//! actually visit — friend rows from the power-law graph are mostly
//! tens of entries with a heavy tail, candidate lists are either tiny
//! (prior voters early in a story) or hundreds (late-story catch-up
//! folds) — and prints per-kernel times. The crossover constants in
//! `membership.rs` (`GALLOP_RATIO`, `BITSET_MIN_CANDIDATES`,
//! `BITSET_MAX_ROW_FACTOR`) are set from this output; re-run with
//! `cargo bench -p digg-bench --bench membership` after touching any
//! kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use des_core::StreamRng;
use rand::Rng;
use social_graph::membership::{binary_probe, bitset_probe, galloping, two_pointer};
use social_graph::{FanBitset, UserId};
use std::hint::black_box;

/// Id universe the rows are drawn from; matches the 1M-user scale
/// graphs so row density per word is realistic for the bitset.
const UNIVERSE: usize = 1_000_000;

/// Sorted random id row of length `n`, keyed by `(stream, salt)`.
fn sorted_row(n: usize, salt: u64) -> Vec<UserId> {
    let mut rng = StreamRng::keyed(7, &[0x6d656d62, salt]);
    let mut ids: Vec<u32> = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.random_range(0..UNIVERSE as u32);
        ids.push(id);
    }
    ids.sort_unstable();
    ids.dedup();
    while ids.len() < n {
        let id = rng.random_range(0..UNIVERSE as u32);
        ids.push(id);
        ids.sort_unstable();
        ids.dedup();
    }
    ids.into_iter().map(UserId).collect()
}

fn bench_membership(c: &mut Criterion) {
    // (friend-row length d, candidate count c): the corners the
    // dispatch heuristic has to rank correctly. Misses dominate real
    // probes (most voters are not fans of a prior voter), so disjoint
    // rows are the honest workload.
    let grid: &[(usize, usize)] = &[
        (16, 4),
        (16, 64),
        (128, 16),
        (128, 128),
        (1024, 16),
        (1024, 128),
        (1024, 1024),
        (8192, 32),
        (8192, 256),
    ];
    for &(d, cand) in grid {
        let friends = sorted_row(d, d as u64);
        let candidates = sorted_row(cand, 0x5a5a + cand as u64);
        let mut scratch = FanBitset::new(UNIVERSE);
        c.bench_function(&format!("membership/binary/d{d}/c{cand}"), |b| {
            b.iter(|| black_box(binary_probe(black_box(&friends), black_box(&candidates))))
        });
        c.bench_function(&format!("membership/two_pointer/d{d}/c{cand}"), |b| {
            b.iter(|| black_box(two_pointer(black_box(&friends), black_box(&candidates))))
        });
        c.bench_function(&format!("membership/galloping/d{d}/c{cand}"), |b| {
            b.iter(|| black_box(galloping(black_box(&friends), black_box(&candidates))))
        });
        c.bench_function(&format!("membership/bitset/d{d}/c{cand}"), |b| {
            b.iter(|| {
                black_box(bitset_probe(
                    black_box(&friends),
                    black_box(&candidates),
                    &mut scratch,
                ))
            })
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150));
    targets = bench_membership
);
criterion_main!(benches);
