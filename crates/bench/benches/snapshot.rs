//! Criterion bench for the checkpoint/replay primitives: encoding and
//! decoding a mid-flight `Sim` snapshot (the per-checkpoint cost every
//! supervised sweep worker pays), plus the bare `EventQueue` container
//! round-trip. The scale harness (`experiments checkpoint_sweep`)
//! covers the `DIGG_CHECKPOINT_USERS` point; this bench tracks the
//! per-call cost at a fixed 5k users.

use criterion::{criterion_group, criterion_main, Criterion};
use des_core::EventQueue;
use digg_sim::population::PopulationConfig;
use digg_sim::sweep::{scenario_population, scenario_sim, ScenarioSpec};
use digg_sim::{Kernel, Sim, SimConfig};
use digg_snapshot::{ByteReader, ByteWriter, Codec, Restore, Snapshot, SnapshotError};
use std::hint::black_box;

const USERS: usize = 5_000;

fn spec(kernel: Kernel) -> ScenarioSpec {
    let mut cfg = SimConfig::toy(0);
    cfg.users = USERS;
    ScenarioSpec {
        name: format!("bench-{kernel:?}"),
        cfg,
        pop_cfg: PopulationConfig::toy(USERS),
        kernel,
        minutes: 240,
    }
}

/// A mid-run sim with populated stories, listings, and event queue.
fn warm_sim(kernel: Kernel) -> Sim {
    let spec = spec(kernel);
    let mut sim = scenario_sim(&spec, 42);
    sim.run(120);
    sim
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Payload(u64);

impl Codec for Payload {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut ByteReader) -> Result<Payload, SnapshotError> {
        Ok(Payload(r.get_u64()?))
    }
}

fn queue_with_events(n: u64) -> EventQueue<Payload> {
    let mut q = EventQueue::new();
    for i in 0..n {
        q.schedule(i % 977, (i % 4) as u8, Payload(i));
    }
    q
}

fn bench_snapshot(c: &mut Criterion) {
    for kernel in [Kernel::Compat, Kernel::EventStreams] {
        let sim = warm_sim(kernel);
        let bytes = sim.snapshot();
        let pop = scenario_population(&spec(kernel), 42);
        c.bench_function(&format!("sim_snapshot_encode_{kernel:?}_5k"), |b| {
            b.iter(|| black_box(sim.snapshot()))
        });
        c.bench_function(&format!("sim_snapshot_decode_{kernel:?}_5k"), |b| {
            b.iter(|| black_box(Sim::restore(&bytes, pop.clone()).expect("restore")))
        });
    }

    let q = queue_with_events(10_000);
    let q_bytes = q.snapshot();
    c.bench_function("event_queue_snapshot_encode_10k", |b| {
        b.iter(|| black_box(q.snapshot()))
    });
    c.bench_function("event_queue_snapshot_decode_10k", |b| {
        b.iter(|| black_box(EventQueue::<Payload>::restore(&q_bytes, ()).expect("restore")))
    });
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
