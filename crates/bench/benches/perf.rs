//! Criterion benches for the substrates: graph construction and
//! queries, simulator throughput, statistics kernels and C4.5
//! training. These are the "is this library production-usable" numbers
//! rather than paper artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use digg_ml::c45::{train, C45Params};
use digg_ml::data::{Instance, MlDataset};
use digg_sim::population::{Population, PopulationConfig};
use digg_sim::{Sim, SimConfig};
use digg_stats::distributions::{BoundedPowerLaw, Zipf};
use digg_stats::sampling::AliasTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use social_graph::generators::{erdos_renyi, preferential_attachment};
use social_graph::traversal::{bfs_distances, Direction};
use social_graph::UserId;
use std::hint::black_box;

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("graph_generate_pa_10k_m3", |b| {
        b.iter(|| black_box(preferential_attachment(&mut rng, 10_000, 3, 1.0)))
    });
    let g = erdos_renyi(&mut rng, 20_000, 5.0 / 20_000.0);
    c.bench_function("graph_bfs_20k", |b| {
        b.iter(|| black_box(bfs_distances(&g, UserId(0), Direction::Friends)))
    });
    let pa = preferential_attachment(&mut rng, 20_000, 4, 1.0);
    c.bench_function("graph_fan_membership_query", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..1000u32 {
                if pa.watches(UserId(i % 20_000), UserId((i * 7) % 20_000)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_sim(c: &mut Criterion) {
    c.bench_function("sim_toy_one_day", |b| {
        b.iter(|| {
            let cfg = SimConfig::toy(7);
            let mut rng = StdRng::seed_from_u64(7);
            let pop = Population::generate(&mut rng, &PopulationConfig::toy(cfg.users));
            let mut sim = Sim::new(cfg, pop);
            sim.run(1440);
            black_box(sim.metrics().total_votes())
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let zipf = Zipf::new(10_000, 1.2);
    c.bench_function("stats_zipf_sample_100k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += zipf.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    let weights: Vec<f64> = (0..25_000).map(|_| rng.random::<f64>() + 0.01).collect();
    c.bench_function("stats_alias_build_25k", |b| {
        b.iter(|| black_box(AliasTable::new(&weights)))
    });
    let pl = BoundedPowerLaw::new(1, 100_000, 2.3);
    let xs: Vec<u64> = (0..50_000).map(|_| pl.sample(&mut rng)).collect();
    c.bench_function("stats_powerlaw_fit_50k", |b| {
        b.iter(|| black_box(digg_stats::fit::fit_alpha(&xs, 5)))
    });
}

fn bench_ml(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut ds = MlDataset::new(vec!["v10", "fans1"]);
    for _ in 0..2_000 {
        let v10 = rng.random_range(0..11) as f64;
        let fans = rng.random_range(0..500) as f64;
        let label = v10 < 4.0 || (fans > 85.0 && v10 < 8.0) || rng.random::<f64>() < 0.1;
        ds.push(Instance::new(vec![v10, fans], label));
    }
    c.bench_function("ml_c45_train_2k", |b| {
        b.iter(|| black_box(train(&ds, &C45Params::default())))
    });
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_graph, bench_sim, bench_stats, bench_ml
}
criterion_main!(perf);
