//! Criterion benches timing the analysis that regenerates each paper
//! figure. The expensive June-2006 synthesis happens once per process
//! (`shared_synthesis`); what is timed here is the figure analysis
//! itself, i.e. the cost a user pays to re-derive a figure from an
//! existing dataset.
//!
//! The printed figure artifacts themselves come from the
//! `src/bin/fig*` binaries; see DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion};
use digg_bench::shared_synthesis;
use digg_core::experiments::{decay, fig1, fig2, fig3, fig4, fig5, prediction, scatter};
use digg_core::pipeline::PipelineConfig;
use digg_ml::c45::C45Params;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let synthesis = shared_synthesis();
    let ds = &synthesis.dataset;

    c.bench_function("fig1_vote_timeseries", |b| {
        b.iter(|| black_box(fig1::run(&synthesis.sim, &fig1::Fig1Params::default())))
    });

    c.bench_function("fig2a_vote_histogram", |b| {
        b.iter(|| black_box(fig2::run_a(ds, 16, 4000.0)))
    });

    c.bench_function("fig2b_activity_histogram", |b| {
        b.iter(|| black_box(fig2::run_b(ds)))
    });

    c.bench_function("fig3a_influence", |b| b.iter(|| black_box(fig3::run_a(ds))));

    c.bench_function("fig3b_cascades", |b| b.iter(|| black_box(fig3::run_b(ds))));

    c.bench_function("fig4_innetwork_vs_final", |b| {
        b.iter(|| black_box(fig4::run(ds)))
    });

    c.bench_function("fig5_tree_training_cv", |b| {
        b.iter(|| black_box(fig5::run(ds, &C45Params::default(), 0x1e12)))
    });

    c.bench_function("prediction_holdout", |b| {
        b.iter(|| black_box(prediction::run(synthesis, &PipelineConfig::default())))
    });

    c.bench_function("user_scatter", |b| {
        b.iter(|| black_box(scatter::run(ds, 100)))
    });

    c.bench_function("decay_wu_huberman", |b| {
        b.iter(|| black_box(decay::run(&synthesis.sim, 2 * digg_sim::time::DAY, 72)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_figures
}
criterion_main!(figures);
