//! Criterion bench for CSR graph construction: the serial
//! `GraphBuilder::build` against the sharded `build_parallel` on the
//! same shuffled raw edge list, at 10k and 100k users (~10 edges per
//! user). The scale harness (`experiments graph_scale`) covers the
//! million-user point; this bench tracks the small/medium sizes where
//! the parallel path's fallback threshold and fan-out overhead live.

use criterion::{criterion_group, criterion_main, Criterion};
use digg_bench::scale::scale_edge_list;
use social_graph::{GraphBuilder, UserId};
use std::hint::black_box;

fn builder_from(users: usize, edges: &[(UserId, UserId)]) -> GraphBuilder {
    let mut b = GraphBuilder::new(users);
    b.extend_watches(edges.iter().copied());
    b
}

fn bench_build(c: &mut Criterion) {
    for users in [10_000usize, 100_000] {
        let edges = scale_edge_list(1, users, 10, 8);
        let label = if users >= 100_000 { "100k" } else { "10k" };
        c.bench_function(&format!("graph_build_serial_{label}"), |b| {
            b.iter(|| black_box(builder_from(users, &edges).build()))
        });
        c.bench_function(&format!("graph_build_parallel8_{label}"), |b| {
            b.iter(|| black_box(builder_from(users, &edges).build_parallel(8)))
        });
    }
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
