//! End-to-end recovery drill against the real `sweep_worker` binary:
//! the supervisor shards a grid across subprocesses, a deterministic
//! kill plan makes every worker die right after one of its
//! checkpoints, and the recovered sweep must serialize byte-identical
//! to an uninterrupted one. This is the tentpole property of the
//! checkpoint/replay stack (DESIGN.md §15) exercised across a true
//! process boundary — JSON frames, respawns, snapshot files and all.

use digg_data::SweepKillPlan;
use digg_sim::population::PopulationConfig;
use digg_sim::supervisor::{run_sweep_supervised, SupervisorConfig};
use digg_sim::sweep::{run_scenario, ScenarioSpec};
use digg_sim::{Kernel, SimConfig};

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_sweep_worker").to_string()]
}

fn small_specs() -> Vec<ScenarioSpec> {
    let mut quiet = SimConfig::toy(0);
    quiet.submissions_per_minute = 0.05;
    vec![
        ScenarioSpec {
            name: "toy-compat".into(),
            cfg: SimConfig::toy(0),
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::Compat,
            minutes: 240,
        },
        ScenarioSpec {
            name: "toy-streams".into(),
            cfg: quiet,
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::EventStreams,
            minutes: 240,
        },
    ]
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("digg-ckpt-recovery-{tag}-{}", std::process::id()))
}

#[test]
fn subprocess_sweep_matches_in_process_runs() {
    let specs = small_specs();
    let seeds = [11u64, 12];
    let cfg = SupervisorConfig {
        worker_cmd: Some(worker_cmd()),
        ..SupervisorConfig::in_process(2)
    };
    let outcomes = run_sweep_supervised(&specs, &seeds, &cfg).unwrap();
    assert_eq!(outcomes.len(), 4);
    let mut expected = Vec::new();
    for spec in &specs {
        for &s in &seeds {
            expected.push(run_scenario(spec, s));
        }
    }
    for (o, want) in outcomes.iter().zip(&expected) {
        assert_eq!(o.run(), Some(want));
    }
}

#[test]
fn killed_workers_recover_to_byte_identical_rows() {
    let specs = small_specs();
    let seeds = [21u64, 22];
    let cells = specs.len() * seeds.len();

    let clean_dir = temp_dir("clean");
    let clean_cfg = SupervisorConfig::subprocess(worker_cmd(), 2, 150, clean_dir.clone());
    let clean = run_sweep_supervised(&specs, &seeds, &clean_cfg).unwrap();

    // Every cell's worker dies after its first or second checkpoint.
    let plan = SweepKillPlan::kill_all(7, 2);
    let kills = plan.kills(cells);
    assert_eq!(kills.iter().flatten().count(), cells, "kill_all must kill");
    let killed_dir = temp_dir("killed");
    let killed_cfg = SupervisorConfig {
        kill_after_checkpoints: kills,
        ..SupervisorConfig::subprocess(worker_cmd(), 2, 150, killed_dir.clone())
    };
    let recovered = run_sweep_supervised(&specs, &seeds, &killed_cfg).unwrap();

    assert_eq!(recovered, clean);
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&clean).unwrap(),
        "recovered sweep rows are not byte-identical to the clean sweep"
    );
    // And both match straight single-process runs of the same cells.
    let mut k = 0;
    for spec in &specs {
        for &s in &seeds {
            assert_eq!(recovered[k].run(), Some(&run_scenario(spec, s)));
            k += 1;
        }
    }
    // Checkpoint files were consumed and removed on the way out.
    for dir in [clean_dir, killed_dir] {
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover checkpoints: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn respawn_budget_exhaustion_is_a_typed_error() {
    // A kill at every checkpoint index the budget allows: the worker
    // dies on the first attempt, resumes clean afterwards — so to
    // force exhaustion the budget must be zero.
    let specs = small_specs();
    let dir = temp_dir("exhaust");
    let mut cfg = SupervisorConfig::subprocess(worker_cmd(), 1, 150, dir.clone());
    cfg.max_respawns = 0;
    cfg.kill_after_checkpoints = vec![Some(1)];
    match run_sweep_supervised(&specs[..1], &[31], &cfg) {
        Err(digg_sim::supervisor::SweepError::WorkerExhausted { cell: 0, .. }) => {}
        other => panic!("expected WorkerExhausted, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
