//! End-to-end recovery drill against the real `sweep_worker` binary:
//! the supervisor shards a grid across subprocesses, a deterministic
//! chaos plan makes workers die, stall, emit garbage, or tear their
//! checkpoints, and the recovered sweep must serialize byte-identical
//! to an uninterrupted one. This is the tentpole property of the
//! checkpoint/replay stack (DESIGN.md §15, hardened §17) exercised
//! across a true process boundary — JSON frames, heartbeats,
//! watchdog SIGKILLs, respawns, generation files and all.

use digg_data::{ChaosPlan, SweepKillPlan};
use digg_sim::population::PopulationConfig;
use digg_sim::supervisor::{
    run_sweep_supervised, run_sweep_supervised_lenient, ChaosFault, FailureKind, SupervisorConfig,
};
use digg_sim::sweep::{run_scenario, ScenarioSpec};
use digg_sim::{Kernel, SimConfig};
use std::time::Duration;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_sweep_worker").to_string()]
}

fn small_specs() -> Vec<ScenarioSpec> {
    let mut quiet = SimConfig::toy(0);
    quiet.submissions_per_minute = 0.05;
    vec![
        ScenarioSpec {
            name: "toy-compat".into(),
            cfg: SimConfig::toy(0),
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::Compat,
            minutes: 240,
        },
        ScenarioSpec {
            name: "toy-streams".into(),
            cfg: quiet,
            pop_cfg: PopulationConfig::toy(400),
            kernel: Kernel::EventStreams,
            minutes: 240,
        },
    ]
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("digg-ckpt-recovery-{tag}-{}", std::process::id()))
}

#[test]
fn subprocess_sweep_matches_in_process_runs() {
    let specs = small_specs();
    let seeds = [11u64, 12];
    let cfg = SupervisorConfig {
        worker_cmd: Some(worker_cmd()),
        ..SupervisorConfig::in_process(2)
    };
    let outcomes = run_sweep_supervised(&specs, &seeds, &cfg).unwrap();
    assert_eq!(outcomes.len(), 4);
    let mut expected = Vec::new();
    for spec in &specs {
        for &s in &seeds {
            expected.push(run_scenario(spec, s));
        }
    }
    for (o, want) in outcomes.iter().zip(&expected) {
        assert_eq!(o.run(), Some(want));
    }
}

#[test]
fn killed_workers_recover_to_byte_identical_rows() {
    let specs = small_specs();
    let seeds = [21u64, 22];
    let cells = specs.len() * seeds.len();

    let clean_dir = temp_dir("clean");
    let clean_cfg = SupervisorConfig::subprocess(worker_cmd(), 2, 150, clean_dir.clone());
    let clean = run_sweep_supervised(&specs, &seeds, &clean_cfg).unwrap();

    // Every cell's worker dies after its first or second checkpoint.
    let plan = SweepKillPlan::kill_all(7, 2);
    let kills = plan.chaos(cells);
    assert_eq!(kills.iter().flatten().count(), cells, "kill_all must kill");
    let killed_dir = temp_dir("killed");
    let killed_cfg = SupervisorConfig {
        chaos: kills,
        ..SupervisorConfig::subprocess(worker_cmd(), 2, 150, killed_dir.clone())
    };
    let recovered = run_sweep_supervised(&specs, &seeds, &killed_cfg).unwrap();

    assert_eq!(recovered, clean);
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&clean).unwrap(),
        "recovered sweep rows are not byte-identical to the clean sweep"
    );
    // And both match straight single-process runs of the same cells.
    let mut k = 0;
    for spec in &specs {
        for &s in &seeds {
            assert_eq!(recovered[k].run(), Some(&run_scenario(spec, s)));
            k += 1;
        }
    }
    // Checkpoint files were consumed and removed on the way out.
    for dir in [clean_dir, killed_dir] {
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover checkpoints: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn respawn_budget_exhaustion_is_a_typed_error() {
    // A kill at every checkpoint index the budget allows: the worker
    // dies on the first attempt, resumes clean afterwards — so to
    // force exhaustion the budget must be zero.
    let specs = small_specs();
    let dir = temp_dir("exhaust");
    let mut cfg = SupervisorConfig::subprocess(worker_cmd(), 1, 150, dir.clone());
    cfg.max_respawns = 0;
    cfg.chaos = vec![Some(ChaosFault::Kill {
        after_checkpoints: 1,
    })];
    match run_sweep_supervised(&specs[..1], &[31], &cfg) {
        Err(digg_sim::supervisor::SweepError::WorkerExhausted { cell: 0, .. }) => {}
        other => panic!("expected WorkerExhausted, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_chaos_matrix_recovers_to_byte_identical_rows() {
    // Six cells, one fault class each (round-robin): kill, stall,
    // dawdle, corrupt frame, torn checkpoint, bit-flipped checkpoint.
    // The watchdog must SIGKILL the stalled and dawdling workers, the
    // generation ladder must absorb the damaged checkpoints, and the
    // recovered rows must still be byte-identical to a clean sweep.
    let specs = small_specs();
    let seeds = [41u64, 42, 43];
    let cells = specs.len() * seeds.len();

    let clean_dir = temp_dir("chaos-clean");
    let clean_cfg = SupervisorConfig::subprocess(worker_cmd(), 2, 150, clean_dir.clone());
    let clean = run_sweep_supervised(&specs, &seeds, &clean_cfg).unwrap();

    let chaos_dir = temp_dir("chaos-matrix");
    let mut chaos_cfg = SupervisorConfig::subprocess(worker_cmd(), 2, 150, chaos_dir.clone());
    chaos_cfg.chaos = ChaosPlan::fault_all(7, 2).matrix(cells);
    // Tight deadlines keep the stall and dawdle cells from dominating
    // the suite; toy cells finish well inside the 5 s deadline.
    chaos_cfg.watchdog.heartbeat_timeout = Duration::from_millis(500);
    chaos_cfg.watchdog.cell_deadline = Some(Duration::from_secs(5));
    let (results, report) = run_sweep_supervised_lenient(&specs, &seeds, &chaos_cfg).unwrap();

    assert_eq!(report.failed, vec![], "every faulted cell must recover");
    assert_eq!(report.completed, cells);
    let recovered: Vec<_> = results
        .iter()
        .map(|r| r.run().expect("completed cell").clone())
        .collect();
    let clean_rows: Vec<_> = clean.iter().map(|o| o.run().unwrap().clone()).collect();
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&clean_rows).unwrap(),
        "chaos-recovered rows are not byte-identical to the clean sweep"
    );
    // Every fault class left its signature in the observed counters.
    assert!(report.observed.hung >= 1, "stall: {:?}", report.observed);
    assert!(
        report.observed.deadline_exceeded >= 1,
        "dawdle: {:?}",
        report.observed
    );
    assert!(
        report.observed.corrupt_frame >= 1,
        "corrupt frame: {:?}",
        report.observed
    );
    assert!(report.observed.crashed >= 1, "kill: {:?}", report.observed);
    assert!(
        report.observed.corrupt_checkpoint >= 2,
        "torn + bit-flip fallbacks: {:?}",
        report.observed
    );
    assert!(report.respawns >= 6, "all six faults force a respawn");
    // Generation files were consumed and removed on the way out.
    for dir in [clean_dir, chaos_dir] {
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover checkpoints: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn lenient_sweep_degrades_one_cell_without_losing_survivors() {
    // Zero respawn budget + one killed cell: the batch must come back
    // with exactly that cell degraded and every survivor byte-equal
    // to its single-process run.
    let specs = small_specs();
    let seeds = [51u64, 52];
    let cells = specs.len() * seeds.len();
    let dir = temp_dir("lenient");
    let mut cfg = SupervisorConfig::subprocess(worker_cmd(), 2, 150, dir.clone());
    cfg.max_respawns = 0;
    cfg.chaos = vec![None; cells];
    cfg.chaos[1] = Some(ChaosFault::Kill {
        after_checkpoints: 1,
    });
    let (results, report) = run_sweep_supervised_lenient(&specs, &seeds, &cfg).unwrap();
    assert_eq!(results.len(), cells);
    assert_eq!(report.completed, cells - 1);
    assert_eq!(report.failed.len(), 1);
    let failure = &report.failed[0];
    assert_eq!(failure.cell, 1);
    assert_eq!(failure.kind, FailureKind::Crashed);
    assert_eq!(failure.respawns, 0);
    assert_eq!(results[1].failure(), Some(failure));
    let mut k = 0;
    for spec in &specs {
        for &s in &seeds {
            if k != 1 {
                assert_eq!(results[k].run(), Some(&run_scenario(spec, s)));
            }
            k += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
