//! The sweep experiments' artifact payloads must be byte-identical at
//! any worker-thread count.
//!
//! `DIGG_THREADS` is parsed in exactly one place —
//! [`digg_core::worker_threads`] (a re-export of
//! `des_core::par::worker_threads`) — and flows into the payload
//! builders as a plain `threads` argument, which is what these tests
//! drive directly with the values `DIGG_THREADS=1`, `2`, and `8` would
//! produce (mutating the process environment from tests is racy, and
//! the crate forbids unsafe code). The payloads carry no timings, so
//! the assertion is exact serialized equality, not "equal modulo
//! noise".

use digg_bench::sweeps::{epi_sweep_payload, sim_sweep_payload};

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("payload serializes")
}

#[test]
fn sim_sweep_payload_is_thread_invariant() {
    let base = sim_sweep_payload(2006, 1);
    assert!(base.equivalence.iter().all(|e| e.ok));
    for threads in [2, 8] {
        let other = sim_sweep_payload(2006, threads);
        assert_eq!(base, other, "diverged at {threads} threads");
        assert_eq!(json(&base), json(&other));
    }
}

#[test]
fn epi_sweep_payload_is_thread_invariant() {
    let base = epi_sweep_payload(2006, 1);
    assert!(base.cascade_exact);
    for threads in [2, 8] {
        let other = epi_sweep_payload(2006, threads);
        assert_eq!(base, other, "diverged at {threads} threads");
        assert_eq!(json(&base), json(&other));
    }
}
