//! # digg-snapshot
//!
//! Versioned, endian-fixed binary snapshot containers — the substrate
//! of deterministic checkpoint/replay across the workspace (DESIGN.md
//! §15).
//!
//! Every state-bearing layer (the `des-core` kernel, the `digg-sim`
//! engine, `digg-core`'s incremental analytics) keeps deterministic
//! state, and this crate is how that state leaves and re-enters the
//! process **bit-identically**: a [`SnapshotWriter`] packs named,
//! checksummed sections behind a magic + format-version header, and a
//! [`SnapshotReader`] refuses anything corrupted or from a different
//! format version with a typed [`SnapshotError`] — never a panic.
//!
//! Layout (all integers little-endian, floats as `to_bits`):
//!
//! ```text
//! magic   : 8 bytes  b"DIGGSNAP"
//! version : u32      FORMAT_VERSION
//! count   : u32      number of sections
//! table   : per section — name_len u32, name bytes,
//!           payload_len u64, FNV-1a64 checksum u64
//! payloads: section payloads concatenated in table order
//! ```
//!
//! The traits:
//!
//! * [`Snapshot`] — encode a value into one complete container
//!   (composition nests child containers as parent sections);
//! * [`Restore`] — decode it back, given a caller-supplied
//!   [`Restore::Context`] carrying the state that is deliberately
//!   *rebuilt* rather than serialized (e.g. a `Population` regenerated
//!   from its seed);
//! * [`Codec`] — the little-endian byte codec for payload items
//!   ([`ByteWriter`] / [`ByteReader`]).
//!
//! Snapshot files land on disk through [`write_atomic`] (tmp +
//! rename), so a crash mid-checkpoint never leaves a truncated
//! container where a recovering supervisor will look for one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write;

/// Container magic: the first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"DIGGSNAP";

/// Current container format version. Bump on any incompatible layout
/// change; readers reject other versions with
/// [`SnapshotError::VersionMismatch`] (see DESIGN.md §15 for the
/// compatibility policy).
pub const FORMAT_VERSION: u32 = 1;

/// Typed snapshot failure. Corrupt or incompatible snapshots must
/// surface as values, never as panics — a recovering supervisor treats
/// them as "checkpoint unusable, restart the cell from scratch".
#[derive(Debug)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// A section's payload does not match its recorded checksum.
    CorruptSection {
        /// Name of the failing section.
        name: String,
    },
    /// A section the reader needs is absent.
    MissingSection {
        /// Name of the absent section.
        name: String,
    },
    /// The buffer ended before the declared layout did.
    Truncated,
    /// The bytes decoded, but the decoded state is invalid (bad enum
    /// tag, context mismatch, out-of-range value).
    Malformed(String),
    /// Filesystem failure while reading or writing a snapshot file.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot container (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format version {found}, expected {expected}")
            }
            SnapshotError::CorruptSection { name } => {
                write!(f, "section '{name}' fails its checksum")
            }
            SnapshotError::MissingSection { name } => write!(f, "section '{name}' is missing"),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the per-section checksum. Not cryptographic;
/// it guards against truncation and bit-rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a value into a complete snapshot container.
///
/// Implementations must be **order-stable**: the bytes may depend only
/// on the logical state, never on hash-iteration order or thread
/// interleaving (`digg-lint`'s `no-unordered-serialize` rule flags
/// `HashMap`/`HashSet` fields inside implementing types).
pub trait Snapshot {
    /// Serialize into a versioned container.
    fn snapshot(&self) -> Vec<u8>;
}

/// Decode a value from a snapshot container produced by [`Snapshot`].
pub trait Restore: Sized {
    /// State deliberately rebuilt rather than serialized — the
    /// immutable inputs a restored value is reattached to (a social
    /// graph, a population, a configuration). `()` when everything is
    /// in the container.
    type Context<'a>;

    /// Deserialize from `bytes`, reattaching `ctx`.
    fn restore(bytes: &[u8], ctx: Self::Context<'_>) -> Result<Self, SnapshotError>;
}

/// Little-endian byte codec for one payload item. Implemented by event
/// payloads and other section elements so container layouts stay
/// explicit and endian-fixed.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut ByteWriter);
    /// Decode one value, advancing `r`.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError>;
}

/// Append-only little-endian byte sink for section payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the id space is 32-bit, counts fit
    /// comfortably; widening is always exact).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern — bit-exact round
    /// trips, no locale or formatting in the loop.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a raw byte run (length is the caller's business).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over a section payload; every read is bounds-checked and a
/// short buffer yields [`SnapshotError::Truncated`].
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a count/index written by [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Malformed(format!("count {v} overflows usize")))
    }

    /// Read an `f64` bit pattern written by [`ByteWriter::put_f64`].
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a raw byte run of length `n`.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }
}

/// Builder for one snapshot container: named sections in insertion
/// order, checksummed and length-prefixed in the header table.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty container.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Add a section. Names should be unique; on duplicates the reader
    /// returns the first.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serialize the container.
    pub fn finish(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // digg-lint: allow(no-truncating-cast) — section counts are writer-chosen and single-digit
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            // digg-lint: allow(no-truncating-cast) — section names are short string literals
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Parsed view of a snapshot container. Parsing validates the magic,
/// the format version, the declared lengths, and every section
/// checksum up front, so a reader holding a `SnapshotReader` knows the
/// payload bytes are exactly what the writer produced.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    version: u32,
    sections: Vec<(&'a str, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parse and validate a container.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.get_bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.get_u32()?;
        let mut table = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = r.get_u32()? as usize;
            let name_bytes = r.get_bytes(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| SnapshotError::Malformed("section name is not UTF-8".into()))?;
            let payload_len = r.get_usize()?;
            let checksum = r.get_u64()?;
            table.push((name, payload_len, checksum));
        }
        let mut sections = Vec::with_capacity(table.len());
        for (name, len, checksum) in table {
            let payload = r.get_bytes(len)?;
            if fnv1a64(payload) != checksum {
                return Err(SnapshotError::CorruptSection {
                    name: name.to_string(),
                });
            }
            sections.push((name, payload));
        }
        Ok(SnapshotReader { version, sections })
    }

    /// The container's format version (always [`FORMAT_VERSION`] after
    /// a successful parse).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section names, in container order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| *n)
    }

    /// A section's payload, or a typed error when absent.
    pub fn section(&self, name: &str) -> Result<&'a [u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_string(),
            })
    }

    /// A [`ByteReader`] positioned at the start of a section.
    pub fn section_reader(&self, name: &str) -> Result<ByteReader<'a>, SnapshotError> {
        Ok(ByteReader::new(self.section(name)?))
    }
}

/// Write `data` to `path` atomically **and durably**: write a sibling
/// `*.tmp` file, fsync it, then rename over the target and best-effort
/// fsync the parent directory. A crash mid-write (or a concurrent
/// reader — a supervisor recovering a worker while its checkpoint is
/// mid-flush) never sees a truncated file; the rename either fully
/// lands or doesn't, and the fsync-before-rename guarantees the bytes
/// behind a landed rename are on stable storage — a power cut cannot
/// leave a fully-renamed but half-persisted ("torn") checkpoint where
/// a recovering supervisor will look for one.
///
/// On any error path the `*.tmp` sibling is removed, so failed writes
/// leave no residue for directory scans (generation discovery, test
/// leftovers asserts) to trip over.
pub fn write_atomic(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    let write = std::fs::File::create(&tmp).and_then(|mut f| {
        f.write_all(data)?;
        // Durability boundary: the rename below must never publish a
        // name whose bytes are still in flight. Miri has no stable
        // storage to sync (and no fsync shim), so the barrier is
        // meaningless there; the write/rename semantics it checks are
        // unchanged.
        if cfg!(miri) {
            return Ok(());
        }
        f.sync_all()
    });
    let renamed = write.and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = renamed {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Best-effort: persist the directory entry too. Some filesystems
    // order the rename behind the data sync anyway; failure here is
    // not a correctness problem for readers, only a smaller durability
    // window, so it is deliberately not surfaced. Skipped under Miri,
    // which cannot open a directory as a file.
    #[cfg(not(miri))]
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Persist a snapshot container atomically.
pub fn write_snapshot(path: &std::path::Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    write_atomic(path, bytes).map_err(SnapshotError::Io)
}

/// Load a snapshot file. The caller parses the returned bytes with
/// [`SnapshotReader::parse`] (or a type's [`Restore`] impl).
pub fn read_snapshot(path: &std::path::Path) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(path).map_err(SnapshotError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_container() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![1, 2, 3]);
        w.section("beta", b"payload".to_vec());
        w.finish()
    }

    #[test]
    fn round_trips_sections_in_order() {
        let bytes = two_section_container();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.version(), FORMAT_VERSION);
        assert_eq!(r.section_names().collect::<Vec<_>>(), vec!["alpha", "beta"]);
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3]);
        assert_eq!(r.section("beta").unwrap(), b"payload");
        assert!(matches!(
            r.section("gamma"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = two_section_container();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = two_section_container();
        // Bump the version field (bytes 8..12).
        bytes[8] = bytes[8].wrapping_add(1);
        match SnapshotReader::parse(&bytes) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_its_checksum() {
        let mut bytes = two_section_container();
        // Flip a bit in the last payload byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match SnapshotReader::parse(&bytes) {
            Err(SnapshotError::CorruptSection { name }) => assert_eq!(name, "beta"),
            other => panic!("expected CorruptSection, got {other:?}"),
        }
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = two_section_container();
        for cut in 0..bytes.len() {
            // Every possible truncation parses to a typed error.
            assert!(SnapshotReader::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn byte_codec_round_trips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 42);
        // Bit-exact floats, including signed zero and NaN payloads.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_bytes(3).unwrap(), b"xyz");
        assert!(r.is_exhausted());
        assert!(matches!(r.get_u8(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn write_atomic_error_path_leaves_no_tmp_residue() {
        let dir = std::env::temp_dir().join(format!("digg-snapshot-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A directory at the target path makes the rename fail after
        // the tmp file has been written and fsynced — the latest
        // possible failure point.
        let target = dir.join("blocked.snap");
        std::fs::create_dir_all(&target).unwrap();
        let err = write_atomic(&target, b"payload").unwrap_err();
        assert!(
            err.kind() != std::io::ErrorKind::NotFound,
            "wrong failure: {err}"
        );
        assert!(
            !dir.join("blocked.snap.tmp").exists(),
            "failed write left a .tmp file behind"
        );
        // Only the blocking directory itself remains.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["blocked.snap".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_lands_content_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("digg-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let bytes = two_section_container();
        write_snapshot(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), bytes);
        assert!(!dir.join("state.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
