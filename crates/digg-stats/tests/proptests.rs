//! Property-based tests for the statistics substrate.

use digg_stats::binstats::GroupedSummary;
use digg_stats::ccdf::Ecdf;
use digg_stats::correlation::{pearson, ranks, spearman};
use digg_stats::descriptive::{mean, median, quantile, Summary};
use digg_stats::histogram::{integer_counts, Histogram, LogHistogram};
use digg_stats::sampling::{choose_indices, AliasTable};
use digg_stats::timeseries::CumulativeSeries;
use proptest::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn mean_bounded_by_extremes(xs in finite_vec()) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(xs in finite_vec(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (a, b) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile(&xs, a).unwrap();
        let vb = quantile(&xs, b).unwrap();
        prop_assert!(va <= vb + 1e-9);
    }

    #[test]
    fn median_is_middle_quantile(xs in finite_vec()) {
        prop_assert_eq!(median(&xs), quantile(&xs, 0.5));
    }

    #[test]
    fn summary_orders_its_fields(xs in finite_vec()) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }

    #[test]
    fn histogram_conserves_observations(xs in finite_vec(), bins in 1usize..50) {
        let h = Histogram::of(-1e6, 1e6, bins, &xs);
        prop_assert_eq!(h.total_with_outliers() as usize, xs.len());
    }

    #[test]
    fn log_histogram_conserves_observations(
        xs in prop::collection::vec(0.001..1e9f64, 1..200),
        bins in 1usize..40,
    ) {
        let mut h = LogHistogram::new(0.001, 10.0, bins);
        for &x in &xs { h.add(x); }
        prop_assert_eq!(
            (h.total() + h.underflow + h.overflow) as usize,
            xs.len()
        );
    }

    #[test]
    fn integer_counts_conserve(xs in prop::collection::vec(0u64..1000, 0..200)) {
        let m = integer_counts(&xs);
        let total: u64 = m.values().sum();
        prop_assert_eq!(total as usize, xs.len());
    }

    #[test]
    fn ecdf_cdf_is_monotone_in_x(xs in finite_vec(), a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let e = Ecdf::new(&xs).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(e.cdf(lo) <= e.cdf(hi));
        prop_assert!((0.0..=1.0).contains(&e.cdf(a)));
        prop_assert!((e.cdf(a) + e.ccdf(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_permutation_sums(xs in finite_vec()) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        // Sum of mid-ranks always equals n(n+1)/2.
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_in_unit_interval(
        pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Some(r) = spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn alias_table_samples_within_support(
        ws in prop::collection::vec(0.0..100.0f64, 1..50),
        seed in any::<u64>(),
    ) {
        if let Some(t) = AliasTable::new(&ws) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                let i = t.sample(&mut rng);
                prop_assert!(i < ws.len());
                prop_assert!(ws[i] > 0.0, "sampled zero-weight category {i}");
            }
        }
    }

    #[test]
    fn choose_indices_always_distinct(n in 0usize..200, k in 0usize..300, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = choose_indices(&mut rng, n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        prop_assert_eq!(t.len(), s.len());
    }

    #[test]
    fn cumulative_series_is_monotone(
        times in prop::collection::vec(0.0..1e4f64, 0..200),
        step in 0.5..100.0f64,
    ) {
        let s = CumulativeSeries::from_events(&times, step, 1e4);
        prop_assert!(s.values.windows(2).all(|w| w[0] <= w[1]));
        // The grid's last point may fall short of the horizon; the
        // final value counts exactly the events at or before it.
        let last_t = (s.values.len() - 1) as f64 * step;
        let expect = times.iter().filter(|&&t| t <= last_t).count();
        prop_assert_eq!(s.final_value() as usize, expect);
    }

    #[test]
    fn grouped_summary_rows_cover_all_keys(
        pairs in prop::collection::vec((0u64..20, -1e3..1e3f64), 1..200)
    ) {
        let g = GroupedSummary::from_pairs(pairs.clone());
        let rows = g.rows();
        let total: usize = rows.iter().map(|r| r.count).sum();
        prop_assert_eq!(total, pairs.len());
        for r in &rows {
            prop_assert!(r.lo <= r.median + 1e-9);
            prop_assert!(r.median <= r.hi + 1e-9);
        }
        // Keys strictly increasing.
        prop_assert!(rows.windows(2).all(|w| w[0].key < w[1].key));
    }
}
