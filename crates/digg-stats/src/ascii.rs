//! Terminal rendering of histograms, series and scatter plots.
//!
//! The example binaries print paper figures as ASCII so the
//! reproduction is inspectable without a plotting stack. Rendering is
//! deliberately simple: fixed-width bars, log-log scatter grids, and
//! aligned tables.

use crate::histogram::{Histogram, LogHistogram};

/// Render a fixed-width histogram as horizontal bars.
///
/// `width` is the maximum bar length in characters.
pub fn histogram_bars(h: &Histogram, width: usize) -> String {
    let max = h.counts().iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for i in 0..h.bins() {
        let (a, b) = h.bin_range(i);
        let c = h.count(i);
        let len = (c as f64 / max as f64 * width as f64).round() as usize;
        out.push_str(&format!(
            "[{:>7.0},{:>7.0}) |{:<width$}| {}\n",
            a,
            b,
            "#".repeat(len),
            c,
            width = width
        ));
    }
    out
}

/// Render a log histogram as horizontal bars with geometric bin labels.
pub fn log_histogram_bars(h: &LogHistogram, width: usize) -> String {
    let max = (0..h.bins()).map(|k| h.count(k)).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for k in 0..h.bins() {
        let (a, b) = h.bin_range(k);
        let c = h.count(k);
        let len = (c as f64 / max as f64 * width as f64).round() as usize;
        out.push_str(&format!(
            "[{:>9.1},{:>9.1}) |{:<width$}| {}\n",
            a,
            b,
            "#".repeat(len),
            c,
            width = width
        ));
    }
    out
}

/// Scatter plot of `(x, y)` points on log-log axes in a
/// `cols x rows` character grid. Non-positive points are skipped
/// (they have no place on log axes).
pub fn loglog_scatter(points: &[(f64, f64)], cols: usize, rows: usize) -> String {
    let pos: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    if pos.is_empty() || cols == 0 || rows == 0 {
        return String::from("(no positive data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pos {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    // Avoid a zero-width axis when all points coincide.
    if xmin == xmax {
        xmax = xmin * 10.0;
    }
    if ymin == ymax {
        ymax = ymin * 10.0;
    }
    let (lx0, lx1) = (xmin.ln(), xmax.ln());
    let (ly0, ly1) = (ymin.ln(), ymax.ln());
    let mut grid = vec![vec![b' '; cols]; rows];
    for &(x, y) in &pos {
        let cx = ((x.ln() - lx0) / (lx1 - lx0) * (cols - 1) as f64).round() as usize;
        let cy = ((y.ln() - ly0) / (ly1 - ly0) * (rows - 1) as f64).round() as usize;
        let r = rows - 1 - cy; // y grows upward
        grid[r][cx] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!("y: {:.1} .. {:.1} (log scale)\n", ymin, ymax));
    for row in grid {
        out.push('|');
        // digg-lint: allow(no-lib-unwrap) — grid cells are written only from the ASCII glyph set a few lines up
        out.push_str(std::str::from_utf8(&row).expect("ascii grid"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    out.push_str(&format!("x: {:.1} .. {:.1} (log scale)\n", xmin, xmax));
    out
}

/// Simple aligned two-column table: `(label, value)` rows.
pub fn kv_table(rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        out.push_str(&format!("{:<w$}  {}\n", k, v, w = w));
    }
    out
}

/// Sparkline of a numeric series using eighth-block characters; handy
/// for Fig. 1 vote-accrual curves in terminal output.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            TICKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bars_shape() {
        let h = Histogram::of(0.0, 10.0, 2, &[1.0, 1.5, 7.0]);
        let s = histogram_bars(&h, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("##########")); // max bar full width
        assert!(lines[0].ends_with("2"));
        assert!(lines[1].ends_with("1"));
    }

    #[test]
    fn log_histogram_bars_shape() {
        let h = LogHistogram::of(1.0, 10.0, 2, &[2.0, 3.0, 20.0]);
        let s = log_histogram_bars(&h, 4);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn scatter_handles_empty_and_degenerate() {
        assert!(loglog_scatter(&[], 10, 5).contains("no positive data"));
        assert!(loglog_scatter(&[(-1.0, 2.0)], 10, 5).contains("no positive data"));
        // Single point must not panic or divide by zero.
        let s = loglog_scatter(&[(5.0, 5.0)], 10, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn scatter_places_extremes_in_corners() {
        let s = loglog_scatter(&[(1.0, 1.0), (100.0, 100.0)], 11, 5);
        let lines: Vec<&str> = s.lines().collect();
        // First grid row (top) holds the max-y point at the far right.
        assert!(lines[1].ends_with('*'));
        // Last grid row (bottom) holds the min point at the left.
        assert_eq!(&lines[5][1..2], "*");
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table(&[("a".into(), "1".into()), ("long".into(), "2".into())]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0].find('1'), lines[1].find('2'));
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
