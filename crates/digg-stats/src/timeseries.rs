//! Cumulative time-series helpers for vote-accrual curves (Fig. 1).
//!
//! A story's observable history is a sequence of vote timestamps; the
//! paper plots cumulative votes against minutes since submission, and
//! describes the canonical shape: slow accrual in the upcoming queue, a
//! sharp jump at promotion, then saturation. This module turns event
//! times into those curves and extracts shape descriptors (promotion
//! knee, saturation level, half-life of the post-promotion surge).

/// A cumulative count series sampled on a regular grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeSeries {
    /// Grid step (minutes in the paper's units).
    pub step: f64,
    /// `values[i]` = cumulative count at time `i * step`.
    pub values: Vec<u64>,
}

impl CumulativeSeries {
    /// Build from raw event times (need not be sorted), sampling the
    /// cumulative count every `step` up to `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `horizon < 0`.
    pub fn from_events(times: &[f64], step: f64, horizon: f64) -> CumulativeSeries {
        assert!(step > 0.0, "step must be positive");
        assert!(horizon >= 0.0, "horizon must be non-negative");
        let mut sorted: Vec<f64> = times.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = (horizon / step).floor() as usize + 1;
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * step;
            let k = sorted.partition_point(|&x| x <= t);
            values.push(k as u64);
        }
        CumulativeSeries { step, values }
    }

    /// Final (saturation) value.
    pub fn final_value(&self) -> u64 {
        self.values.last().copied().unwrap_or(0)
    }

    /// Time at which the series first reaches `count`, or `None`.
    pub fn time_to_reach(&self, count: u64) -> Option<f64> {
        self.values
            .iter()
            .position(|&v| v >= count)
            .map(|i| i as f64 * self.step)
    }

    /// Largest single-step increment and the time at which it occurs —
    /// a robust locator of the promotion jump in Fig. 1 curves.
    pub fn steepest_step(&self) -> Option<(f64, u64)> {
        if self.values.len() < 2 {
            return None;
        }
        let mut best = (0usize, 0u64);
        for i in 1..self.values.len() {
            let d = self.values[i] - self.values[i - 1];
            if d > best.1 {
                best = (i, d);
            }
        }
        Some((best.0 as f64 * self.step, best.1))
    }

    /// Time for the count to go from `final/2` to `final` after the
    /// given start index — used to check the "half-life of about a day"
    /// decay observed by Wu & Huberman on front-page stories.
    pub fn half_life_from(&self, start_time: f64) -> Option<f64> {
        let start = (start_time / self.step).floor() as usize;
        if start >= self.values.len() {
            return None;
        }
        let base = self.values[start];
        let fin = self.final_value();
        if fin <= base {
            return None;
        }
        let half = base + (fin - base).div_ceil(2);
        let t_half = self.values[start..]
            .iter()
            .position(|&v| v >= half)
            .map(|i| (start + i) as f64 * self.step)?;
        Some(t_half - start_time)
    }

    /// `(t, cumulative)` pairs for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * self.step, v))
            .collect()
    }
}

/// Fraction of final votes accrued by `t`, in `[0, 1]`; 0 if the series
/// is all-zero.
pub fn fraction_accrued(series: &CumulativeSeries, t: f64) -> f64 {
    let fin = series.final_value();
    if fin == 0 {
        return 0.0;
    }
    let i = ((t / series.step).floor() as usize).min(series.values.len() - 1);
    series.values[i] as f64 / fin as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CumulativeSeries {
        // Events at t = 1, 2, 2, 5, 9.
        CumulativeSeries::from_events(&[5.0, 2.0, 1.0, 2.0, 9.0], 1.0, 10.0)
    }

    #[test]
    fn cumulative_counts_are_monotone_and_correct() {
        let s = demo();
        assert_eq!(s.values, vec![0, 1, 3, 3, 3, 4, 4, 4, 4, 5, 5]);
        assert!(s.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn final_value_and_time_to_reach() {
        let s = demo();
        assert_eq!(s.final_value(), 5);
        assert_eq!(s.time_to_reach(3), Some(2.0));
        assert_eq!(s.time_to_reach(6), None);
        assert_eq!(s.time_to_reach(0), Some(0.0));
    }

    #[test]
    fn steepest_step_finds_jump() {
        let s = demo();
        // Jump of 2 at t=2.
        assert_eq!(s.steepest_step(), Some((2.0, 2)));
    }

    #[test]
    fn steepest_step_degenerate() {
        let s = CumulativeSeries::from_events(&[], 1.0, 0.0);
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.steepest_step(), None);
    }

    #[test]
    fn half_life_measures_second_half() {
        // 10 events at t=0, then 10 spread so that half of the
        // remaining arrive by t=3.
        let mut ev = vec![0.0; 10];
        ev.extend([1.0, 2.0, 3.0, 3.0, 3.0, 8.0, 8.0, 9.0, 9.0, 10.0]);
        let s = CumulativeSeries::from_events(&ev, 1.0, 10.0);
        // From t=0: base 10, final 20, half target 15 reached at t=3.
        assert_eq!(s.half_life_from(0.0), Some(3.0));
    }

    #[test]
    fn half_life_none_when_flat() {
        let s = CumulativeSeries::from_events(&[0.0, 0.0], 1.0, 5.0);
        assert_eq!(s.half_life_from(0.0), None);
        assert_eq!(s.half_life_from(100.0), None);
    }

    #[test]
    fn fraction_accrued_clamps() {
        let s = demo();
        assert_eq!(fraction_accrued(&s, 0.0), 0.0);
        assert_eq!(fraction_accrued(&s, 2.0), 0.6);
        assert_eq!(fraction_accrued(&s, 1000.0), 1.0);
        let empty = CumulativeSeries::from_events(&[], 1.0, 2.0);
        assert_eq!(fraction_accrued(&empty, 1.0), 0.0);
    }

    #[test]
    fn series_pairs() {
        let s = CumulativeSeries::from_events(&[1.0], 0.5, 1.0);
        assert_eq!(s.series(), vec![(0.0, 0), (0.5, 0), (1.0, 1)]);
    }
}
