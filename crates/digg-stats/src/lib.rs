//! # digg-stats
//!
//! Statistics substrate for the Digg social-voting reproduction.
//!
//! The paper's analysis pipeline is built almost entirely from
//! elementary statistics: histograms of vote counts (Fig. 2a),
//! log-binned activity distributions (Fig. 2b), median-and-spread
//! summaries grouped by a key (Fig. 4), and heavy-tailed samplers for
//! the synthetic platform population. This crate provides all of those
//! from scratch so the workspace has no external statistics
//! dependencies.
//!
//! Modules:
//!
//! * [`descriptive`] — means, variances, medians, quantiles, summaries.
//! * [`histogram`] — fixed-width and logarithmic (multiplicative)
//!   binning, the two histogram styles used by Figs. 2–3.
//! * [`ccdf`] — empirical CDF / complementary CDF.
//! * [`distributions`] — samplers for Zipf, bounded discrete power
//!   laws, log-normal, exponential and Pareto variates.
//! * [`fit`] — discrete power-law maximum-likelihood fitting
//!   (Clauset-style) used to check generated degree sequences.
//! * [`correlation`] — Pearson and Spearman coefficients.
//! * [`sampling`] — alias-method weighted sampling and reservoir
//!   sampling.
//! * [`binstats`] — grouped summaries keyed by an integer (the Fig. 4
//!   "median and width of the distribution per in-network-vote count").
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for the
//!   reported medians and fractions.
//! * [`timeseries`] — cumulative vote series helpers (Fig. 1).
//! * [`ascii`] — terminal rendering of histograms and scatter plots for
//!   the example binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod binstats;
pub mod bootstrap;
pub mod ccdf;
pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod fit;
pub mod histogram;
pub mod sampling;
pub mod timeseries;

pub use binstats::GroupedSummary;
pub use ccdf::Ecdf;
pub use descriptive::Summary;
pub use histogram::{Histogram, LogHistogram};
