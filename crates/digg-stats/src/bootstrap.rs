//! Bootstrap confidence intervals.
//!
//! The reproduction reports medians and fractions over a ~200-story
//! sample; bootstrap percentile intervals quantify how much of any
//! paper-vs-reproduction gap is sampling noise. Plain percentile
//! bootstrap: resample with replacement, recompute the statistic,
//! take quantiles of the resampled distribution.

use crate::descriptive::quantile;
use rand::Rng;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap interval for an arbitrary statistic.
///
/// `level` is the coverage (e.g. 0.95). Returns `None` for an empty
/// sample, a degenerate level, or a statistic returning NaN on the
/// original sample.
pub fn bootstrap_ci<R, F>(
    rng: &mut R,
    xs: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
) -> Option<Interval>
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    if xs.is_empty() || !(0.0..1.0).contains(&level) || level <= 0.0 || resamples == 0 {
        return None;
    }
    let estimate = statistic(xs);
    if estimate.is_nan() {
        return None;
    }
    let n = xs.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.random_range(0..n)];
        }
        let s = statistic(&buf);
        if !s.is_nan() {
            stats.push(s);
        }
    }
    if stats.len() < 2 {
        return None;
    }
    let alpha = (1.0 - level) / 2.0;
    Some(Interval {
        estimate,
        lo: quantile(&stats, alpha)?,
        hi: quantile(&stats, 1.0 - alpha)?,
    })
}

/// Bootstrap CI for the median.
pub fn median_ci<R: Rng + ?Sized>(
    rng: &mut R,
    xs: &[f64],
    resamples: usize,
    level: f64,
) -> Option<Interval> {
    bootstrap_ci(
        rng,
        xs,
        |s| crate::descriptive::median(s).unwrap_or(f64::NAN),
        resamples,
        level,
    )
}

/// Bootstrap CI for the fraction of observations satisfying a
/// predicate (encoded per-observation as 0/1 before calling).
pub fn fraction_ci<R: Rng + ?Sized>(
    rng: &mut R,
    indicator: &[f64],
    resamples: usize,
    level: f64,
) -> Option<Interval> {
    bootstrap_ci(
        rng,
        indicator,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn degenerate_inputs_are_none() {
        let mut r = rng();
        assert!(median_ci(&mut r, &[], 100, 0.95).is_none());
        assert!(median_ci(&mut r, &[1.0], 0, 0.95).is_none());
        assert!(median_ci(&mut r, &[1.0], 100, 0.0).is_none());
        assert!(median_ci(&mut r, &[1.0], 100, 1.0).is_none());
    }

    #[test]
    fn constant_sample_gives_zero_width() {
        let mut r = rng();
        let ci = median_ci(&mut r, &[5.0; 30], 200, 0.95).unwrap();
        assert_eq!(ci.estimate, 5.0);
        assert_eq!((ci.lo, ci.hi), (5.0, 5.0));
        assert_eq!(ci.width(), 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let mut r = rng();
        let xs: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let ci = median_ci(&mut r, &xs, 500, 0.9).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn wider_level_means_wider_interval() {
        let mut r = rng();
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let narrow = median_ci(&mut r, &xs, 800, 0.5).unwrap();
        let wide = median_ci(&mut r, &xs, 800, 0.99).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn fraction_ci_covers_true_rate() {
        let mut r = rng();
        // 30% ones.
        let xs: Vec<f64> = (0..400)
            .map(|i| if i % 10 < 3 { 1.0 } else { 0.0 })
            .collect();
        let ci = fraction_ci(&mut r, &xs, 500, 0.95).unwrap();
        assert!((ci.estimate - 0.3).abs() < 1e-12);
        assert!(ci.contains(0.3));
        assert!(ci.width() < 0.12, "interval too wide: {ci:?}");
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let mut r = rng();
        let small: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 7) as f64).collect();
        let ci_s = bootstrap_ci(
            &mut r,
            &small,
            |s| s.iter().sum::<f64>() / s.len() as f64,
            400,
            0.95,
        )
        .unwrap();
        let ci_l = bootstrap_ci(
            &mut r,
            &large,
            |s| s.iter().sum::<f64>() / s.len() as f64,
            400,
            0.95,
        )
        .unwrap();
        assert!(ci_l.width() < ci_s.width());
    }
}
