//! Grouped summaries keyed by an integer.
//!
//! Fig. 4 of the paper plots, for each possible number of in-network
//! votes `k`, "the median and width of the distribution of votes
//! (except for the highest and lowest values)". [`GroupedSummary`]
//! computes exactly that: group a `(key, value)` stream by key and
//! summarise each group with median and trimmed range.

use std::collections::BTreeMap;

use crate::descriptive::{quantile_sorted, Summary};

/// One group's summary in a [`GroupedSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group key (e.g. number of in-network votes).
    pub key: u64,
    /// Number of observations in the group.
    pub count: usize,
    /// Group median.
    pub median: f64,
    /// Lower end of the trimmed range (second-smallest value; equals
    /// the median for groups of size ≤ 2).
    pub lo: f64,
    /// Upper end of the trimmed range (second-largest value).
    pub hi: f64,
    /// Group mean.
    pub mean: f64,
}

/// Values grouped by integer key, summarised per group.
#[derive(Debug, Clone, Default)]
pub struct GroupedSummary {
    groups: BTreeMap<u64, Vec<f64>>,
}

impl GroupedSummary {
    /// Empty accumulator.
    pub fn new() -> GroupedSummary {
        GroupedSummary::default()
    }

    /// Build from `(key, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u64, f64)>>(pairs: I) -> GroupedSummary {
        let mut g = GroupedSummary::new();
        for (k, v) in pairs {
            g.add(k, v);
        }
        g
    }

    /// Record one observation.
    pub fn add(&mut self, key: u64, value: f64) {
        self.groups.entry(key).or_default().push(value);
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Raw values of one group.
    pub fn group(&self, key: u64) -> Option<&[f64]> {
        self.groups.get(&key).map(|v| v.as_slice())
    }

    /// Per-group rows, ordered by key — the Fig. 4 series.
    pub fn rows(&self) -> Vec<GroupRow> {
        self.groups
            .iter()
            .map(|(&key, vals)| {
                let mut sorted = vals.clone();
                sorted.sort_by(f64::total_cmp);
                let median = quantile_sorted(&sorted, 0.5);
                // digg-lint: allow(no-lib-unwrap) — group vecs are created non-empty by the entry().push() accumulation above
                let (lo, hi) = Summary::trimmed_range(&sorted).expect("group is nonempty");
                let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
                GroupRow {
                    key,
                    count: sorted.len(),
                    median,
                    lo,
                    hi,
                    mean,
                }
            })
            .collect()
    }

    /// Spearman-style check of monotonicity of the group medians:
    /// returns the fraction of adjacent key pairs whose medians
    /// decrease. 1.0 means strictly decreasing medians (the Fig. 4
    /// "inverse relationship"), 0.0 strictly increasing.
    pub fn decreasing_median_fraction(&self) -> Option<f64> {
        let rows = self.rows();
        if rows.len() < 2 {
            return None;
        }
        let pairs = rows.len() - 1;
        let dec = rows
            .windows(2)
            .filter(|w| w[1].median < w[0].median)
            .count();
        Some(dec as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_key_ordered() {
        let g = GroupedSummary::from_pairs(vec![(3, 1.0), (1, 2.0), (2, 3.0)]);
        let keys: Vec<u64> = g.rows().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn group_statistics() {
        let g = GroupedSummary::from_pairs(vec![
            (0, 10.0),
            (0, 20.0),
            (0, 30.0),
            (0, 1000.0),
            (0, 1.0),
        ]);
        let r = &g.rows()[0];
        assert_eq!(r.count, 5);
        assert_eq!(r.median, 20.0);
        // Trimmed range drops 1.0 and 1000.0.
        assert_eq!(r.lo, 10.0);
        assert_eq!(r.hi, 30.0);
    }

    #[test]
    fn tiny_groups_degenerate_to_median() {
        let g = GroupedSummary::from_pairs(vec![(5, 7.0)]);
        let r = &g.rows()[0];
        assert_eq!((r.lo, r.hi), (7.0, 7.0));
    }

    #[test]
    fn decreasing_median_detection() {
        let g = GroupedSummary::from_pairs(vec![(0, 100.0), (1, 50.0), (2, 25.0)]);
        assert_eq!(g.decreasing_median_fraction(), Some(1.0));

        let inc = GroupedSummary::from_pairs(vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(inc.decreasing_median_fraction(), Some(0.0));

        let single = GroupedSummary::from_pairs(vec![(0, 1.0)]);
        assert_eq!(single.decreasing_median_fraction(), None);
    }

    #[test]
    fn group_lookup() {
        let mut g = GroupedSummary::new();
        g.add(4, 1.5);
        assert_eq!(g.group(4), Some(&[1.5][..]));
        assert_eq!(g.group(5), None);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }
}
