//! Descriptive statistics: means, variances, medians and quantiles.
//!
//! All functions take slices and are defined for empty input where a
//! sensible value exists (`None` otherwise); nothing panics on empty
//! data. Quantiles use linear interpolation between order statistics
//! (type-7, the default of most statistical packages), which matters
//! when matching the paper's "median and width of the distribution"
//! plots in Fig. 4.

/// Arithmetic mean. Returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`). Returns `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`). Returns `None` when `n < 2`.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (50th percentile). Returns `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Linearly interpolated quantile, `q` in `[0, 1]`.
///
/// Uses the "type 7" definition: the quantile of a sorted sample
/// `x[0..n]` at `q` is `x[h]` with `h = q * (n - 1)` interpolated
/// between the two neighbouring order statistics.
///
/// Returns `None` for empty input or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). See [`quantile`].
///
/// # Panics
///
/// Panics if `xs` is empty (callers arriving here have already
/// validated the input).
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let n = xs.len();
    if n == 1 {
        return xs[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let frac = h - lo as f64;
        xs[lo] + (xs[hi] - xs[lo]) * frac
    }
}

/// Five-point summary plus mean and count, the unit of reporting used
/// throughout the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarise a sample. Returns `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Range excluding the single highest and lowest observation — the
    /// "width of the distribution (except for the highest and lowest
    /// values)" whiskers drawn in the paper's Fig. 4. For samples of
    /// size ≤ 2 this degenerates to the median.
    pub fn trimmed_range(xs: &[f64]) -> Option<(f64, f64)> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        if sorted.len() <= 2 {
            let m = quantile_sorted(&sorted, 0.5);
            return Some((m, m));
        }
        Some((sorted[1], sorted[sorted.len() - 2]))
    }
}

/// Fraction of observations strictly below `threshold`.
pub fn fraction_below(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x < threshold).count() as f64 / xs.len() as f64
}

/// Fraction of observations strictly above `threshold`.
pub fn fraction_above(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x > threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[4.0, 4.0, 4.0]), Some(0.0));
    }

    #[test]
    fn sample_variance_needs_two_points() {
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(sample_variance(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn trimmed_range_drops_extremes() {
        let r = Summary::trimmed_range(&[100.0, 1.0, 2.0, 3.0, 0.0]).unwrap();
        assert_eq!(r, (1.0, 3.0));
    }

    #[test]
    fn trimmed_range_degenerate_small_samples() {
        assert_eq!(Summary::trimmed_range(&[5.0]), Some((5.0, 5.0)));
        assert_eq!(Summary::trimmed_range(&[2.0, 8.0]), Some((5.0, 5.0)));
        assert_eq!(Summary::trimmed_range(&[]), None);
    }

    #[test]
    fn fractions() {
        let xs = [100.0, 400.0, 600.0, 2000.0];
        assert_eq!(fraction_below(&xs, 500.0), 0.5);
        assert_eq!(fraction_above(&xs, 1500.0), 0.25);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
    }
}
