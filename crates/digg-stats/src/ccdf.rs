//! Empirical cumulative distributions.
//!
//! Heavy-tailed claims in the paper ("20% of the stories received
//! fewer than about 500 votes, and twenty percent were very
//! interesting, receiving more than 1500 votes") are statements about
//! the empirical CDF of final vote counts; this module provides that
//! object directly.

/// Empirical distribution of a sample, stored sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample. Returns `None` for empty input or input
    /// containing NaN.
    pub fn new(xs: &[f64]) -> Option<Ecdf> {
        if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Ecdf { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed Ecdf).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / n as f64
    }

    /// `P(X > x)` — the complementary CDF plotted on log–log axes for
    /// heavy-tail inspection.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Inverse CDF by linear search over order statistics: smallest
    /// sample value `v` with `cdf(v) >= q`. `q` is clamped to `[0,1]`.
    pub fn inverse(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, ccdf(x))` series over the distinct sample values, the
    /// standard log–log tail plot.
    pub fn ccdf_series(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, self.ccdf(x)));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(9.0), 1.0);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.ccdf(2.0), 0.5);
        assert_eq!(e.ccdf(4.0), 0.0);
    }

    #[test]
    fn inverse_hits_order_statistics() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.26), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
        assert_eq!(e.inverse(0.0), 10.0);
        assert_eq!(e.inverse(7.0), 40.0); // clamped
    }

    #[test]
    fn ccdf_series_uses_distinct_values() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]).unwrap();
        let s = e.ccdf_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, 1.0);
        assert!((s[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[1], (2.0, 0.0));
    }

    #[test]
    fn len_reports_sample_size() {
        let e = Ecdf::new(&[5.0, 6.0]).unwrap();
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
    }
}
