//! Weighted and streaming sampling utilities.
//!
//! The simulator draws voters proportionally to user activity (alias
//! method, O(1) per draw after O(n) setup) and subsamples stories for
//! Fig. 1 (reservoir sampling).

use rand::Rng;

/// Walker alias method for O(1) sampling from a fixed discrete
/// distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights. Returns `None` if `weights` is
    /// empty, contains a negative/non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<AliasTable> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Reservoir sampling: a uniform sample without replacement of size at
/// most `k` from an iterator of unknown length (Algorithm R).
pub fn reservoir<T, I, R>(rng: &mut R, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut out: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return out;
    }
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            out.push(item);
        } else {
            let j = rng.random_range(0..=i);
            if j < k {
                out[j] = item;
            }
        }
    }
    out
}

/// Uniformly choose `k` distinct indices from `0..n` (partial
/// Fisher–Yates). Returns fewer than `k` when `n < k`.
pub fn choose_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn alias_single_category() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_zero_weight_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut r), 1);
        }
    }

    #[test]
    fn alias_empirical_frequencies() {
        let t = AliasTable::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mut c = [0usize; 3];
        for _ in 0..n {
            c[t.sample(&mut r)] += 1;
        }
        let f: Vec<f64> = c.iter().map(|&x| x as f64 / n as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01);
        assert!((f[1] - 0.2).abs() < 0.01);
        assert!((f[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn reservoir_small_stream_returns_all() {
        let mut r = rng();
        let mut s = reservoir(&mut r, 0..3, 10);
        s.sort();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_k_zero() {
        let mut r = rng();
        let s: Vec<i32> = reservoir(&mut r, 0..100, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut r = rng();
        let trials = 20_000;
        let mut seen0 = 0;
        for _ in 0..trials {
            let s = reservoir(&mut r, 0..10, 2);
            assert_eq!(s.len(), 2);
            if s.contains(&0) {
                seen0 += 1;
            }
        }
        // P(0 in sample) = 2/10.
        let f = seen0 as f64 / trials as f64;
        assert!((f - 0.2).abs() < 0.02, "frequency {f}");
    }

    #[test]
    fn choose_indices_distinct_and_bounded() {
        let mut r = rng();
        let s = choose_indices(&mut r, 20, 5);
        assert_eq!(s.len(), 5);
        let mut t = s.clone();
        t.sort();
        t.dedup();
        assert_eq!(t.len(), 5);
        assert!(s.iter().all(|&i| i < 20));
    }

    #[test]
    fn choose_indices_truncates_when_n_small() {
        let mut r = rng();
        let mut s = choose_indices(&mut r, 3, 10);
        s.sort();
        assert_eq!(s, vec![0, 1, 2]);
    }
}
