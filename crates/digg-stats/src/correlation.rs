//! Pearson and Spearman correlation.
//!
//! The paper's central empirical claim is a *negative* association
//! between early in-network votes and final popularity (Fig. 4). The
//! experiment code quantifies that with Spearman's rank correlation
//! (robust to the heavy-tailed vote counts) alongside Pearson's r.

/// Pearson product-moment correlation. Returns `None` when the inputs
/// differ in length, have fewer than two points, or either side has
/// zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of a sample (ties get the average of the ranks they span),
/// 1-based as in classical rank statistics.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Average 1-based rank over the tie group [i, j).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            out[k] = avg;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation (Pearson over mid-ranks). Same `None`
/// conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Ordinary least-squares fit `y = a + b x`; returns `(a, b)`.
/// `None` under the same degeneracy conditions as [`pearson`].
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn ranks_without_ties() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_average_ties() {
        // 5 appears at sorted positions 2 and 3 -> rank 2.5 each.
        assert_eq!(ranks(&[5.0, 1.0, 5.0, 9.0]), vec![2.5, 1.0, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_antitone_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [100.0, 10.0, 1.0, 0.1];
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&xs, &ys).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[2.0, 2.0], &[1.0, 5.0]), None);
    }
}
