//! Samplers for the heavy-tailed distributions the synthetic platform
//! needs, implemented from scratch on top of `rand`'s uniform source.
//!
//! The Digg population is strongly skewed: "While most of the users
//! voted on only one story, some voted on many, and a few on well over
//! a hundred stories" (paper §3.1), and top users have
//! disproportionately many fans (§3.2). We model such quantities with
//! Zipf / bounded power-law / log-normal samplers. All samplers take an
//! explicit `&mut impl Rng` so experiments are reproducible from a
//! seed.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Sampled by inversion over the precomputed CDF, which
/// for the population sizes used here (≤ ~100k) is simple and exact.
///
/// # Examples
///
/// ```
/// use digg_stats::distributions::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// assert!(zipf.pmf(1) > zipf.pmf(2)); // rank 1 is most likely
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf sampler over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a positive support size");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let z = acc;
        for c in &mut cdf {
            *c /= z;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the
        // 0-based index of the first cdf entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Probability mass at rank `k` (1-based); 0 outside support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }
}

/// Discrete bounded power law on `xmin..=xmax` with `P(x) ∝ x^-alpha`.
///
/// This is the sampler used for fan counts and per-user activity; the
/// bound keeps the synthetic site finite the way a real scrape is.
#[derive(Debug, Clone)]
pub struct BoundedPowerLaw {
    xmin: u64,
    cdf: Vec<f64>,
}

impl BoundedPowerLaw {
    /// Create the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `xmin == 0` or `xmax < xmin`.
    pub fn new(xmin: u64, xmax: u64, alpha: f64) -> BoundedPowerLaw {
        assert!(xmin > 0, "power law support must be positive");
        assert!(xmax >= xmin, "xmax must be at least xmin");
        let n = (xmax - xmin + 1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for x in xmin..=xmax {
            acc += (x as f64).powf(-alpha);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        BoundedPowerLaw { xmin, cdf }
    }

    /// Draw a value in `xmin..=xmax`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.xmin + idx.min(self.cdf.len() - 1) as u64
    }
}

/// Standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sampler: `exp(mu + sigma * N(0,1))`.
///
/// Final vote counts of promoted stories are unimodal and right-skewed
/// (Fig. 2a); the platform's latent story-appeal variable is drawn
/// log-normally, which reproduces that shape after the voting process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal (must be >= 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Create the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or parameters are not finite.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Draw a variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential variate with rate `lambda`, by inversion.
///
/// Inter-arrival times of story submissions ("1-2 new submissions
/// every minute") are modelled as a Poisson process, i.e. exponential
/// gaps.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>(); // in (0, 1]
    -u.ln() / lambda
}

/// Continuous Pareto variate with scale `xmin` and shape `alpha`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xmin: f64, alpha: f64) -> f64 {
    assert!(
        xmin > 0.0 && alpha > 0.0,
        "Pareto parameters must be positive"
    );
    let u: f64 = 1.0 - rng.random::<f64>(); // in (0, 1]
    xmin * u.powf(-1.0 / alpha)
}

/// Inverse CDF (quantile function) of the standard normal
/// distribution, via the Beasley–Springer–Moro rational approximation
/// (absolute error < 3e-9 over the open unit interval).
///
/// Used by the C4.5 pruning machinery to turn a confidence factor into
/// a z-score. Returns `±INFINITY` at the endpoints and NaN outside
/// `[0, 1]`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        let num = y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0]);
        let den = (((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0;
        num / den
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let s = (-(r.ln())).ln();
        let mut x = C[0];
        let mut sp = 1.0;
        for &c in &C[1..] {
            sp *= s;
            x += c * sp;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

/// Bernoulli draw with probability `p` (clamped to `[0,1]`).
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.random::<f64>() < p
}

/// Poisson variate via Knuth's product-of-uniforms method; adequate for
/// the small means used by the simulator (per-minute arrival counts).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "Poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    // For large means fall back to a normal approximation to avoid
    // underflow of exp(-mean).
    if mean > 30.0 {
        let x = mean + mean.sqrt() * standard_normal(rng);
        return x.max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_rank_one_most_probable() {
        let z = Zipf::new(50, 1.2);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(10));
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(10, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            let k = z.sample(&mut r);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut r) - 1] += 1;
        }
        for k in 1..=5 {
            let emp = counts[k - 1] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn bounded_power_law_support() {
        let p = BoundedPowerLaw::new(1, 100, 2.1);
        let mut r = rng();
        for _ in 0..1000 {
            let x = p.sample(&mut r);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn bounded_power_law_is_heavy_headed() {
        // Most mass at small values for alpha > 1.
        let p = BoundedPowerLaw::new(1, 1000, 2.0);
        let mut r = rng();
        let n = 50_000;
        let ones = (0..n).filter(|_| p.sample(&mut r) == 1).count();
        // P(1) = 1/zeta-ish, should be > 0.5 for alpha=2 bounded at 1000.
        assert!(ones as f64 / n as f64 > 0.5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let ln = LogNormal::new(2.0, 0.5);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_000).map(|_| ln.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let n = 100_000;
        let m: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.75) - 0.6744898).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.9999) - 3.7190).abs() < 1e-3);
    }

    #[test]
    fn inverse_normal_cdf_edges() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_nan());
        assert!(inverse_normal_cdf(1.1).is_nan());
    }

    #[test]
    fn inverse_normal_cdf_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let x = inverse_normal_cdf(i as f64 / 100.0);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn coin_extremes() {
        let mut r = rng();
        assert!(!coin(&mut r, 0.0));
        assert!(coin(&mut r, 1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(coin(&mut r, 7.0));
        assert!(!coin(&mut r, -1.0));
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_small_mean_empirical() {
        let mut r = rng();
        let n = 100_000;
        let m: f64 = (0..n).map(|_| poisson(&mut r, 1.5) as f64).sum::<f64>() / n as f64;
        assert!((m - 1.5).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_tail() {
        let mut r = rng();
        let n = 20_000;
        let m: f64 = (0..n).map(|_| poisson(&mut r, 100.0) as f64).sum::<f64>() / n as f64;
        assert!((m - 100.0).abs() < 1.0, "mean {m}");
    }
}
