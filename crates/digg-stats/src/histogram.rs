//! Fixed-width and logarithmic histograms.
//!
//! Two binning schemes appear in the paper:
//!
//! * Fig. 2(a) and Fig. 3 use fixed-width bins over a linear axis
//!   ([`Histogram`]).
//! * Fig. 2(b) is a log–log plot of per-user activity, for which
//!   multiplicative ("logarithmic") bins are the standard presentation
//!   ([`LogHistogram`]); we also provide exact integer counts because
//!   the original figure plots raw `(x, #users with activity x)`
//!   points ([`integer_counts`]).

use std::collections::BTreeMap;

/// A histogram over `[lo, hi)` with equally wide bins.
///
/// # Examples
///
/// ```
/// use digg_stats::Histogram;
///
/// let h = Histogram::of(0.0, 4000.0, 16, &[120.0, 480.0, 1800.0]);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.count(0), 1);   // 120 in [0, 250)
/// assert_eq!(h.bin_width(), 250.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo` — these are programmer
    /// errors in experiment setup, not data conditions.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Convenience: build and fill in one call.
    pub fn of(lo: f64, hi: f64, bins: usize, xs: &[f64]) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let mut idx = ((x - self.lo) / w) as usize;
            // Guard against floating-point edge where x is a hair
            // below hi but division rounds up to the bin count.
            if idx >= self.counts.len() {
                idx = self.counts.len() - 1;
            }
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `[lo, hi)` edges of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        (a + b) / 2.0
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total observations including under/overflow.
    pub fn total_with_outliers(&self) -> u64 {
        self.total() + self.underflow + self.overflow
    }

    /// Iterate `(bin_center, count)` pairs — the series a plotting
    /// front-end would consume.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

/// A histogram with multiplicative bin edges `lo * ratio^k`, the usual
/// presentation for heavy-tailed data on log–log axes (Fig. 2b).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    /// Observations below `lo` (including zeros, which have no place
    /// on a log axis).
    pub underflow: u64,
    /// Observations at or above the last edge.
    pub overflow: u64,
}

impl LogHistogram {
    /// Bins `[lo*ratio^k, lo*ratio^(k+1))` for `k` in `0..bins`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `ratio <= 1`, or `bins == 0`.
    pub fn new(lo: f64, ratio: f64, bins: usize) -> LogHistogram {
        assert!(lo > 0.0, "log histogram lower edge must be positive");
        assert!(ratio > 1.0, "log histogram ratio must exceed 1");
        assert!(bins > 0, "log histogram needs at least one bin");
        LogHistogram {
            lo,
            ratio,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Convenience constructor filling from data.
    pub fn of(lo: f64, ratio: f64, bins: usize, xs: &[f64]) -> LogHistogram {
        let mut h = LogHistogram::new(lo, ratio, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let k = ((x / self.lo).ln() / self.ratio.ln()).floor() as usize;
        if k >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[k] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// `[lo, hi)` edges of bin `k`.
    pub fn bin_range(&self, k: usize) -> (f64, f64) {
        (
            // digg-lint: allow(no-truncating-cast) — powi exponent: bin index is bounded by the bin count (far below i32::MAX)
            self.lo * self.ratio.powi(k as i32),
            // digg-lint: allow(no-truncating-cast) — powi exponent: bin index is bounded by the bin count (far below i32::MAX)
            self.lo * self.ratio.powi(k as i32 + 1),
        )
    }

    /// Geometric centre of bin `k`.
    pub fn bin_center(&self, k: usize) -> f64 {
        let (a, b) = self.bin_range(k);
        (a * b).sqrt()
    }

    /// Count in bin `k`.
    pub fn count(&self, k: usize) -> u64 {
        self.counts[k]
    }

    /// Count normalised by bin width, the quantity whose log–log slope
    /// estimates the power-law exponent.
    pub fn density(&self, k: usize) -> f64 {
        let (a, b) = self.bin_range(k);
        self.counts[k] as f64 / (b - a)
    }

    /// Iterate `(geometric_center, count)` pairs.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins())
            .map(|k| (self.bin_center(k), self.counts[k]))
            .collect()
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Exact integer frequency table: for each distinct value `x`, how many
/// observations equal `x`. This is precisely the point cloud of
/// Fig. 2(b) ("# users making x submissions/votes").
pub fn integer_counts(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_places_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.99);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn linear_histogram_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.add(-0.5);
        h.add(1.0);
        h.add(2.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 0);
        assert_eq!(h.total_with_outliers(), 3);
    }

    #[test]
    fn linear_histogram_bin_geometry() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_width(), 25.0);
        assert_eq!(h.bin_range(1), (25.0, 50.0));
        assert_eq!(h.bin_center(0), 12.5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn log_histogram_edges_are_multiplicative() {
        let h = LogHistogram::new(1.0, 10.0, 3);
        assert_eq!(h.bin_range(0), (1.0, 10.0));
        assert_eq!(h.bin_range(2), (100.0, 1000.0));
    }

    #[test]
    fn log_histogram_places_values() {
        let mut h = LogHistogram::new(1.0, 10.0, 3);
        h.add(1.0);
        h.add(5.0);
        h.add(10.0);
        h.add(99.0);
        h.add(500.0);
        h.add(0.5); // underflow
        h.add(1e6); // overflow
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn log_histogram_density_normalises_by_width() {
        let mut h = LogHistogram::new(1.0, 10.0, 2);
        h.add(2.0);
        h.add(20.0);
        assert!((h.density(0) - 1.0 / 9.0).abs() < 1e-12);
        assert!((h.density(1) - 1.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn integer_counts_tabulates() {
        let m = integer_counts(&[1, 1, 2, 5, 5, 5]);
        assert_eq!(m[&1], 2);
        assert_eq!(m[&2], 1);
        assert_eq!(m[&5], 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn series_lengths_match_bins() {
        let h = Histogram::of(0.0, 4.0, 4, &[0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.series().len(), 4);
        let lh = LogHistogram::of(1.0, 2.0, 4, &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(lh.series().len(), 4);
        assert_eq!(lh.total(), 4);
    }
}
