//! Discrete power-law fitting.
//!
//! The paper's future-work section leans on the power-law degree
//! distributions "observed in many real-world networks"; our generated
//! fan graphs must actually be heavy-tailed for the epidemics
//! experiments (ABL4) to mean anything. This module implements the
//! standard continuous-approximation MLE for a discrete power law with
//! cutoff `xmin` (Clauset, Shalizi & Newman 2009, eq. 3.7) plus a
//! Kolmogorov–Smirnov distance for goodness-of-fit.

/// Result of a power-law fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent `alpha` (`P(x) ∝ x^-alpha` for `x >= xmin`).
    pub alpha: f64,
    /// Lower cutoff used for the fit.
    pub xmin: u64,
    /// Number of tail observations (`x >= xmin`).
    pub n_tail: usize,
    /// KS distance between the tail's empirical CDF and the fitted
    /// model.
    pub ks: f64,
}

/// MLE exponent for the tail `x >= xmin` using the continuous
/// approximation `alpha = 1 + n / sum(ln(x / (xmin - 0.5)))`.
///
/// Returns `None` if fewer than two observations lie in the tail.
pub fn fit_alpha(xs: &[u64], xmin: u64) -> Option<PowerLawFit> {
    if xmin == 0 {
        return None;
    }
    let tail: Vec<u64> = xs.iter().copied().filter(|&x| x >= xmin).collect();
    if tail.len() < 2 {
        return None;
    }
    let denom: f64 = tail
        .iter()
        .map(|&x| (x as f64 / (xmin as f64 - 0.5)).ln())
        .sum();
    if denom <= 0.0 {
        return None;
    }
    let alpha = 1.0 + tail.len() as f64 / denom;
    let ks = ks_distance(&tail, xmin, alpha);
    Some(PowerLawFit {
        alpha,
        xmin,
        n_tail: tail.len(),
        ks,
    })
}

/// Fit over a range of candidate `xmin` values, keeping the cutoff that
/// minimises the KS distance (the Clauset et al. selection rule).
pub fn fit_best_xmin(xs: &[u64], xmin_candidates: &[u64]) -> Option<PowerLawFit> {
    xmin_candidates
        .iter()
        .filter_map(|&m| fit_alpha(xs, m))
        .min_by(|a, b| a.ks.total_cmp(&b.ks))
}

/// KS distance between the empirical tail CDF and the fitted power
/// law with the usual discrete continuity correction,
/// `CDF(x) = 1 - ((x + 0.5) / (xmin - 0.5))^(1 - alpha)`.
fn ks_distance(tail: &[u64], xmin: u64, alpha: f64) -> f64 {
    let mut sorted = tail.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut worst: f64 = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == x {
            j += 1;
        }
        // For a discrete distribution both CDFs are step functions
        // with jumps on the support, so comparing at support points
        // (empirical CDF *at* x vs model CDF at x) is sufficient.
        let emp = j as f64 / n;
        let model = 1.0 - ((x as f64 + 0.5) / (xmin as f64 - 0.5)).powf(1.0 - alpha);
        worst = worst.max((emp - model).abs());
        i = j;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::BoundedPowerLaw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn too_small_tail_is_none() {
        assert!(fit_alpha(&[5], 1).is_none());
        assert!(fit_alpha(&[1, 1, 1], 10).is_none());
        assert!(fit_alpha(&[1, 2, 3], 0).is_none());
    }

    #[test]
    fn recovers_known_exponent() {
        let mut rng = StdRng::seed_from_u64(99);
        let gen = BoundedPowerLaw::new(1, 100_000, 2.5);
        let xs: Vec<u64> = (0..30_000).map(|_| gen.sample(&mut rng)).collect();
        let fit = fit_alpha(&xs, 5).expect("enough tail");
        assert!(
            (fit.alpha - 2.5).abs() < 0.15,
            "alpha estimate {} too far from 2.5",
            fit.alpha
        );
        assert!(fit.ks < 0.1, "KS {}", fit.ks);
    }

    #[test]
    fn best_xmin_prefers_lower_ks() {
        let mut rng = StdRng::seed_from_u64(123);
        let gen = BoundedPowerLaw::new(1, 10_000, 2.2);
        let xs: Vec<u64> = (0..20_000).map(|_| gen.sample(&mut rng)).collect();
        let best = fit_best_xmin(&xs, &[1, 2, 5, 10, 20]).unwrap();
        for &m in &[1u64, 2, 5, 10, 20] {
            if let Some(f) = fit_alpha(&xs, m) {
                assert!(best.ks <= f.ks + 1e-12);
            }
        }
    }

    #[test]
    fn non_powerlaw_data_has_large_ks() {
        // Uniform data on 50..=60 is not a power law from xmin=1-ish.
        let xs: Vec<u64> = (0..1000).map(|i| 50 + (i % 11) as u64).collect();
        let fit = fit_alpha(&xs, 50).unwrap();
        // Exponent will be huge and KS noticeable; just assert sanity.
        assert!(fit.alpha > 3.0);
        assert!(fit.n_tail == 1000);
    }
}
