//! Fixture tests: for every rule, the `bad.rs` fixture fires exactly
//! that rule and the `good.rs` fixture is silent; pragma fixtures
//! prove suppression works and that stale or unparseable pragmas are
//! themselves errors. Together these pin the acceptance property that
//! reintroducing a banned pattern (or deleting a load-bearing pragma)
//! turns the lint red.

use digg_lint::{lint_source, Config};

/// Lint fixture text as library code (every rule in scope).
fn lint_lib(src: &str) -> Vec<(String, usize)> {
    lint_source("crates/fixture/src/lib.rs", src, &Config::default())
        .violations
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

fn rules_fired(src: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint_lib(src).into_iter().map(|(r, _)| r).collect();
    rules.sort();
    rules.dedup();
    rules
}

macro_rules! rule_fixture {
    ($test:ident, $dir:literal, $rule:literal) => {
        #[test]
        fn $test() {
            let bad = include_str!(concat!("fixtures/", $dir, "/bad.rs"));
            let good = include_str!(concat!("fixtures/", $dir, "/good.rs"));
            assert_eq!(
                rules_fired(bad),
                vec![$rule.to_string()],
                "bad.rs must fire exactly {}",
                $rule
            );
            assert!(
                lint_lib(good).is_empty(),
                "good.rs must be silent, got {:?}",
                lint_lib(good)
            );
        }
    };
}

rule_fixture!(no_wallclock_fixture, "no-wallclock", "no-wallclock");
rule_fixture!(no_ambient_rng_fixture, "no-ambient-rng", "no-ambient-rng");
rule_fixture!(no_lib_unwrap_fixture, "no-lib-unwrap", "no-lib-unwrap");
rule_fixture!(
    no_unordered_serialize_fixture,
    "no-unordered-serialize",
    "no-unordered-serialize"
);
rule_fixture!(
    no_truncating_cast_fixture,
    "no-truncating-cast",
    "no-truncating-cast"
);
rule_fixture!(
    raw_thread_fanout_fixture,
    "raw-thread-fanout",
    "raw-thread-fanout"
);
rule_fixture!(
    no_unchecked_mmap_fixture,
    "no-unchecked-mmap",
    "no-unchecked-mmap"
);
rule_fixture!(
    snapshot_coverage_fixture,
    "snapshot-coverage",
    "snapshot-coverage"
);
rule_fixture!(hot_path_alloc_fixture, "hot-path-alloc", "hot-path-alloc");
rule_fixture!(
    unordered_taint_fixture,
    "unordered-taint",
    "unordered-taint"
);
rule_fixture!(
    no_async_kernel_fixture,
    "no-async-kernel",
    "no-async-kernel"
);

#[test]
fn hot_path_callee_alloc_reports_at_callee_line() {
    // The `tick` -> `refill` chain in the bad fixture must anchor the
    // violation at `refill`'s .extend( line, where the fix belongs.
    let bad = include_str!("fixtures/hot-path-alloc/bad.rs");
    let lines: Vec<usize> = lint_lib(bad)
        .into_iter()
        .filter(|(r, _)| r == "hot-path-alloc")
        .map(|(_, l)| l)
        .collect();
    let extend_line = bad
        .lines()
        .position(|l| l.contains(".extend("))
        .expect("fixture has .extend(")
        + 1;
    assert!(lines.contains(&extend_line), "{lines:?} vs {extend_line}");
}

#[test]
fn async_is_waived_in_shell_crates() {
    let bad = include_str!("fixtures/no-async-kernel/bad.rs");
    let config = Config {
        shell_paths: vec!["crates/fixture/".to_string()],
        ..Config::default()
    };
    let report = lint_source("crates/fixture/src/lib.rs", bad, &config);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn bad_fixtures_flag_every_expected_line() {
    // Spot-check line anchoring on the densest fixture.
    let bad = include_str!("fixtures/no-lib-unwrap/bad.rs");
    let lines: Vec<usize> = lint_lib(bad).into_iter().map(|(_, l)| l).collect();
    assert_eq!(lines.len(), 3, "unwrap, expect and todo! sites");
}

#[test]
fn allow_pragmas_suppress_in_both_placements() {
    let src = include_str!("fixtures/pragmas/allowed.rs");
    let report = lint_source("crates/fixture/src/lib.rs", src, &Config::default());
    assert!(
        report.violations.is_empty(),
        "both pragma placements must suppress, got {:?}",
        report.violations
    );
    assert_eq!(report.allows_honoured, 2);
}

#[test]
fn unused_allow_is_an_error() {
    let src = include_str!("fixtures/pragmas/unused.rs");
    assert_eq!(rules_fired(src), vec!["unused-allow".to_string()]);
}

#[test]
fn malformed_and_misplaced_pragmas_do_not_suppress() {
    let src = include_str!("fixtures/pragmas/malformed.rs");
    let fired = rules_fired(src);
    // Unknown rule id and missing reason are malformed; the unwraps
    // they failed to cover still fire; the pragma one line too far up
    // is unused.
    assert_eq!(
        fired,
        vec![
            "malformed-pragma".to_string(),
            "no-lib-unwrap".to_string(),
            "unused-allow".to_string(),
        ]
    );
    let unwraps = lint_lib(src)
        .into_iter()
        .filter(|(r, _)| r == "no-lib-unwrap")
        .count();
    assert_eq!(unwraps, 3, "none of the three unwraps may be suppressed");
}

#[test]
fn bin_files_skip_unwrap_but_keep_determinism_rules() {
    let src = "pub fn main() {\n    let _ = vec![1].pop().unwrap();\n    let _ = std::time::Instant::now();\n}\n";
    let report = lint_source("crates/fixture/src/bin/tool.rs", src, &Config::default());
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["no-wallclock"]);
}

#[test]
fn allowlisted_modules_are_exempt() {
    let clock = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    let report = lint_source("crates/bench/src/timing.rs", clock, &Config::default());
    assert!(report.violations.is_empty());

    let fanout = "pub fn go() { std::thread::scope(|_s| {}); }\n";
    let report = lint_source("crates/des-core/src/par.rs", fanout, &Config::default());
    assert!(report.violations.is_empty());

    let mapped = "pub fn bytes(p: *const u8, n: usize) -> &'static [u8] {\n    unsafe { std::slice::from_raw_parts(p, n) }\n}\n";
    let report = lint_source(
        "crates/social-graph/src/mmap.rs",
        mapped,
        &Config::default(),
    );
    assert!(report.violations.is_empty());
}
