//! Lexer edge cases: the token forms most likely to desynchronize a
//! hand-rolled scanner — raw strings whose bodies contain
//! almost-terminators, byte and raw-byte strings, and the lifetime
//! tick vs char literal ambiguity. Each case asserts both sides: the
//! literal body is blanked (a `panic!` inside a string must not fire
//! a rule) and the scanner resynchronizes (real code after the
//! literal is still seen).

use digg_lint::lexer::{has_token, lex};

#[test]
fn raw_string_body_with_hash_quote_inside() {
    // `"#` inside an `r##` string is not a terminator.
    let m = lex(r####"let s = r##"contains "# a fake end"##; x.unwrap();"####);
    assert!(!m.code[0].contains("fake"), "{}", m.code[0]);
    assert!(m.code[0].contains(".unwrap()"), "{}", m.code[0]);
}

#[test]
fn raw_string_with_more_hashes_than_needed_inside() {
    // The body holds `"###` but the string only opened with one hash:
    // the first `"#` closes it, the trailing hashes are code.
    let m = lex("let s = r#\"end\"### + tail\"#;");
    assert!(!m.code[0].contains("end"), "{}", m.code[0]);
    assert!(m.code[0].contains("## + tail"), "{}", m.code[0]);
}

#[test]
fn byte_string_with_escaped_quote() {
    let m = lex(r#"let b = b"bytes \" panic!(x)"; call();"#);
    assert!(!m.code[0].contains("panic!"), "{}", m.code[0]);
    assert!(m.code[0].contains("call();"), "{}", m.code[0]);
}

#[test]
fn raw_byte_string_with_hashes() {
    let m = lex(r###"let rb = br#"raw "quoted" panic!"#; after();"###);
    assert!(!m.code[0].contains("panic!"), "{}", m.code[0]);
    assert!(m.code[0].contains("after();"), "{}", m.code[0]);
}

#[test]
fn slashes_inside_strings_do_not_open_comments() {
    let m = lex("let u = r\"no // comment\"; trailing();\nlet v = \"also // not\"; tail();");
    assert!(m.code[0].contains("trailing();"), "{}", m.code[0]);
    assert!(m.code[1].contains("tail();"), "{}", m.code[1]);
    assert!(m.comments[0].is_empty(), "{:?}", m.comments[0]);
    assert!(m.comments[1].is_empty(), "{:?}", m.comments[1]);
}

#[test]
fn lifetimes_survive_char_literals_blank() {
    let m = lex("fn f<'a, 'b: 'a>(x: &'a str, y: &'b str) -> &'a str { let c = 'q'; x }");
    // Lifetimes are code; the char literal body is blanked.
    assert!(m.code[0].contains("'a, 'b: 'a"), "{}", m.code[0]);
    assert!(!m.code[0].contains('q'), "{}", m.code[0]);
}

#[test]
fn escaped_and_delimiter_char_literals() {
    let m = lex(r"let a = '\''; let b = '\\'; let c = '{'; let d = '}'; done();");
    assert!(m.code[0].contains("done();"), "{}", m.code[0]);
    // Brace chars must be blanked or rule brace-tracking desyncs.
    assert!(!m.code[0].contains('{'), "{}", m.code[0]);
    assert!(!m.code[0].contains('}'), "{}", m.code[0]);
}

#[test]
fn byte_char_literal() {
    let m = lex("let n = b'\\n'; let q = b'Q'; next();");
    assert!(m.code[0].contains("next();"), "{}", m.code[0]);
    assert!(!m.code[0].contains('Q'), "{}", m.code[0]);
}

#[test]
fn static_lifetime_is_not_a_char_literal() {
    let m = lex("fn s() -> &'static str { \"panic!(no)\" }");
    assert!(m.code[0].contains("'static str"), "{}", m.code[0]);
    assert!(!m.code[0].contains("panic!"), "{}", m.code[0]);
}

#[test]
fn multiline_raw_string_blanks_every_line() {
    let src = "let s = r#\"line one panic!\nline two Instant::now()\nend\"#;\nreal_code();";
    let m = lex(src);
    assert!(!has_token(&m.code[0], "panic"), "{}", m.code[0]);
    assert!(!m.code[1].contains("Instant"), "{}", m.code[1]);
    assert_eq!(m.code[3], "real_code();");
}

#[test]
fn adjacent_raw_strings_resync_between_literals() {
    let m = lex("f(r#\"a\"#, x.unwrap(), r\"b\", y.unwrap());");
    let unwraps = m.code[0].matches(".unwrap()").count();
    assert_eq!(unwraps, 2, "{}", m.code[0]);
}
