//! Fixture: sorted containers serialize deterministically, a
//! `#[serde(skip)]` field never reaches the bytes, and a HashMap in a
//! plain (non-Serialize) struct is fine.

use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};

#[derive(Serialize)]
pub struct Artifact {
    pub per_user: BTreeMap<u32, u64>,
    pub sorted_pairs: Vec<(u32, u64)>,
    #[serde(skip)]
    pub scratch: HashSet<u32>,
}

pub struct Scratch {
    pub counts: HashMap<u32, u64>,
}
