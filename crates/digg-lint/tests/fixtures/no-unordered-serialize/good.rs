//! Fixture: sorted containers serialize deterministically, a
//! `#[serde(skip)]` field never reaches serde bytes, a HashMap in a
//! plain (non-Serialize, non-Snapshot) struct is fine, and a Snapshot
//! type may keep a hash container behind a pragma that names the
//! ordering argument.

use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};

#[derive(Serialize)]
pub struct Artifact {
    pub per_user: BTreeMap<u32, u64>,
    pub sorted_pairs: Vec<(u32, u64)>,
    #[serde(skip)]
    pub scratch: HashSet<u32>,
}

pub struct Scratch {
    pub counts: HashMap<u32, u64>,
}

pub struct Ledger {
    pub rows: Vec<(u64, u64)>,
    // digg-lint: allow(no-unordered-serialize) — snapshot sorts the keys before encoding
    pub index: HashMap<u64, usize>,
}

impl digg_snapshot::Snapshot for Ledger {
    fn snapshot(&self) -> Vec<u8> {
        Vec::with_capacity(self.rows.len() + self.index.len())
    }
}
