//! Fixture: hash-ordered container reaching serialized bytes.

use serde::Serialize;
use std::collections::{HashMap, HashSet};

#[derive(Serialize)]
pub struct Artifact {
    pub per_user: HashMap<u32, u64>,
    pub flagged: HashSet<u32>,
}
