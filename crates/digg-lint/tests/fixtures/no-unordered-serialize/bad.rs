//! Fixture: hash-ordered container reaching serialized bytes — via a
//! serde derive and via a hand-written Snapshot impl. `#[serde(skip)]`
//! exempts nothing in a Snapshot type: the snapshot encoder sees every
//! field regardless of serde attributes.

use serde::Serialize;
use std::collections::{HashMap, HashSet};

#[derive(Serialize)]
pub struct Artifact {
    pub per_user: HashMap<u32, u64>,
    pub flagged: HashSet<u32>,
}

pub struct Journal {
    pub seen: HashSet<u64>,
}

impl digg_snapshot::Snapshot for Journal {
    fn snapshot(&self) -> Vec<u8> {
        Vec::with_capacity(self.seen.len())
    }
}

#[derive(Serialize)]
pub struct Hybrid {
    #[serde(skip)]
    pub scratch: HashMap<u32, u64>,
}

impl digg_snapshot::Snapshot for Hybrid {
    fn snapshot(&self) -> Vec<u8> {
        Vec::with_capacity(self.scratch.len())
    }
}
