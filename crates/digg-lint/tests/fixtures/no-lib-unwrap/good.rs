//! Fixture: the same APIs, panic-free — and unwraps inside
//! `#[cfg(test)]` are out of scope by design.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
