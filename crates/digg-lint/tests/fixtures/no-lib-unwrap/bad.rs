//! Fixture: panic paths in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passed garbage")
}

pub fn later() {
    todo!("not written yet")
}
