//! Fixture: synchronous kernel code. Identifiers and comments that
//! merely mention asynchrony (or contain `await` as a substring of a
//! larger word) are not violations.

/// Batched, not async: callers drive this from the event loop.
pub fn fetch(id: u64) -> u64 {
    worker(id)
}

fn worker(id: u64) -> u64 {
    let asynchronously_named = id;
    asynchronously_named * 2
}
