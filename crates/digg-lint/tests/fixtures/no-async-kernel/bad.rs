//! Fixture: async in a kernel crate. The replay kernel is
//! synchronous by design — an executor's poll order is a scheduler
//! decision the snapshot cannot capture.

pub async fn fetch(id: u64) -> u64 {
    worker(id).await
}

async fn worker(id: u64) -> u64 {
    id * 2
}
