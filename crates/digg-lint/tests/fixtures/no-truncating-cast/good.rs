//! Fixture: widening casts are exempt; narrowing goes through
//! checked conversions.

pub fn to_index(id: u32) -> usize {
    id as usize
}

pub fn widen(id: u32) -> u64 {
    u64::from(id)
}

pub fn to_id(i: usize) -> Option<u32> {
    u32::try_from(i).ok()
}
