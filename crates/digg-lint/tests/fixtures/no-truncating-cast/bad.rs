//! Fixture: id/count-truncating casts.

pub fn to_id(i: usize) -> u32 {
    i as u32
}

pub fn exponent(k: usize) -> f64 {
    2.0f64.powi(k as i32)
}
