//! Fixture: unsafe code outside the allowlisted mmap module.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn alias(p: *const u32, n: usize) -> &'static [u32] {
    std::slice::from_raw_parts(p, n)
}
