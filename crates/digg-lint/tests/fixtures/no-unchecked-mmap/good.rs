//! Fixture: mapped memory consumed through checked safe accessors
//! only; mentions of unsafe in comments or strings never fire.

pub fn row(offsets: &[u64], targets: &[u32], i: usize) -> Option<&[u32]> {
    let lo = usize::try_from(*offsets.get(i)?).ok()?;
    let hi = usize::try_from(*offsets.get(i + 1)?).ok()?;
    targets.get(lo..hi)
}

pub fn doc() -> &'static str {
    "the single unsafe module is crates/social-graph/src/mmap.rs"
}
