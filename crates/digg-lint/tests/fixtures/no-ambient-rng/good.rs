//! Fixture: caller-seeded randomness only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u32 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random_range(0..6)
}
