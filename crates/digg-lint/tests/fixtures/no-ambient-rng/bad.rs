//! Fixture: ambient (OS-seeded) randomness.

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.random_range(0..6)
}

pub fn seed_from_os() -> u64 {
    rand::random()
}
