//! Fixture: hash-iteration order flowing into written bytes through
//! the call graph. `export` is a sink (it writes); `summarize` is
//! reachable from it and iterates a HashMap in storage order, so the
//! written rows differ run to run.

use std::collections::HashMap;

pub fn summarize(counts: &HashMap<u32, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    for (k, v) in counts.iter() {
        rows.push(format!("{k} {v}"));
    }
    rows
}

pub fn export(counts: &HashMap<u32, u64>, w: &mut impl std::io::Write) {
    let rows = summarize(counts);
    for r in rows {
        let _ = w.write_all(r.as_bytes());
    }
}
