//! Fixture: the deterministic ways to get hash data into bytes —
//! sort before encoding, keep keyed lookups keyed, or use an ordered
//! container from the start.

use std::collections::{BTreeMap, HashMap};

pub fn summarize(counts: &HashMap<u32, u64>) -> Vec<String> {
    let mut rows: Vec<(u32, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    rows.into_iter().map(|(k, v)| format!("{k} {v}")).collect()
}

pub fn lookup(counts: &HashMap<u32, u64>, key: u32) -> u64 {
    counts.get(&key).copied().unwrap_or(0)
}

pub fn ordered(counts: &BTreeMap<u32, u64>) -> Vec<String> {
    counts.iter().map(|(k, v)| format!("{k} {v}")).collect()
}

pub fn export(counts: &HashMap<u32, u64>, w: &mut impl std::io::Write) {
    for r in summarize(counts) {
        let _ = w.write_all(r.as_bytes());
    }
    let _ = lookup(counts, 0);
}
