//! Fixture: time handled as plain data — no clock reads.
//! The string and the comment below must not fire: Instant::now()
//! only counts in code position.

/// "Instant::now" in a string is inert.
pub fn label() -> &'static str {
    "Instant::now"
}

pub fn advance(now_minutes: u64, dt: u64) -> u64 {
    now_minutes + dt
}
