//! Fixture: wall-clock reads outside the allowlisted timing module.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch_ms() -> u128 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
