//! Fixture: fan-out through the deterministic primitives.

pub fn fan_out(xs: &[u64], threads: usize) -> u64 {
    des_core::par::par_map(xs, threads, |&x| x).iter().sum()
}
