//! Fixture: raw thread fan-out instead of the des-core primitives.

pub fn fan_out(xs: &[u64]) -> u64 {
    std::thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum::<u64>());
        h.join().unwrap_or(0)
    })
}
