//! Fixture: heap allocation on a marked hot path — directly, and one
//! call level out (the callee's allocation is reported at the
//! callee's line, where the fix or pragma belongs).

// digg-lint: hot-path
pub fn absorb(xs: &[u32], out: &mut Vec<u32>) {
    for &x in xs {
        out.push(x);
    }
}

// digg-lint: hot-path
pub fn tick(buf: &mut Vec<u32>) {
    refill(buf);
}

fn refill(buf: &mut Vec<u32>) {
    buf.extend([1, 2, 3]);
}
