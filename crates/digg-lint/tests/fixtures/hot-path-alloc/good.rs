//! Fixture: hot paths that stay on the stack, cold setup code that
//! allocates freely, and an amortized push carried by a pragma.

// digg-lint: hot-path
pub fn lookup(xs: &[u32], x: u32) -> bool {
    xs.binary_search(&x).is_ok()
}

pub fn setup(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.extend(std::iter::repeat(0).take(n));
    v
}

// digg-lint: hot-path
pub fn record(log: &mut Vec<u32>, x: u32) {
    // digg-lint: allow(hot-path-alloc) — amortized: capacity reserved by setup, one story never doubles it
    log.push(x);
}
