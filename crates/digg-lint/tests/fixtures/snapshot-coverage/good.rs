//! Fixture: full field coverage on both sides, plus a derived field
//! carried by a field-level pragma naming why it is rebuilt rather
//! than serialized. Each side is checked independently: the Restore
//! struct literal covering `page` would not excuse a missing
//! snapshot write.

pub struct Cursor {
    pub pos: u64,
    pub budget: u64,
    // digg-lint: allow(snapshot-coverage) — derived: recomputed from pos on restore
    pub page: u32,
}

impl Snapshot for Cursor {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u64(self.pos);
        w.put_u64(self.budget);
    }
}

impl Restore for Cursor {
    fn restore(r: &mut ByteReader) -> Cursor {
        let pos = r.u64();
        let budget = r.u64();
        let page = page_of(pos);
        Cursor { pos, budget, page }
    }
}
