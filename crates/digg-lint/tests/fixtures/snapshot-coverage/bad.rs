//! Fixture: a Snapshot impl that forgets a field — the PR-7
//! `voter_pos` bug class. `budget` is never written, so a
//! restored cursor would silently come back with a default.

pub struct Cursor {
    pub pos: u64,
    pub budget: u64,
}

impl Snapshot for Cursor {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u64(self.pos);
    }
}
