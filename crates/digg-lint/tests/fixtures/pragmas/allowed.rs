//! Fixture: both pragma placements — standalone line covering the
//! next line, and trailing comment covering its own line.

pub fn first(xs: &[u32]) -> u32 {
    // digg-lint: allow(no-lib-unwrap) — fixture: caller guarantees non-empty input
    *xs.first().unwrap()
}

pub fn to_id(i: usize) -> u32 {
    i as u32 // digg-lint: allow(no-truncating-cast) — fixture: index bounded by u32 population
}
