//! Fixture: unparseable pragmas are never silently ignored.

pub fn a(xs: &[u32]) -> u32 {
    // digg-lint: allow(no-such-rule) — unknown rule id
    *xs.first().unwrap()
}

pub fn b(xs: &[u32]) -> u32 {
    // digg-lint: allow(no-lib-unwrap)
    *xs.first().unwrap()
}

pub fn c(xs: &[u32]) -> u32 {
    // digg-lint: allow(no-lib-unwrap) — covers only the next line, not two down
    let n = xs.len();
    *xs.get(n - 1).unwrap()
}
