//! Fixture: a pragma that suppresses nothing must itself be flagged.

pub fn fine(xs: &[u32]) -> Option<u32> {
    // digg-lint: allow(no-lib-unwrap) — stale: this line no longer unwraps
    xs.first().copied()
}
