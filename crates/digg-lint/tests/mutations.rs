//! Mutation self-test: prove the linter *catches* the bug classes it
//! exists for, not merely that the current tree is clean. Each case
//! seeds one source mutation — the minimal edit a distracted refactor
//! would make — into a miniature two-crate workspace and asserts that
//! exactly the expected rule fires. The final test replays the PR-7
//! `voter_pos` incident against the real tree: deleting one field
//! write from `Sim::snapshot` must turn the lint red.

use digg_lint::{lint_source, lint_workspace, Config};
use std::path::{Path, PathBuf};

/// The pristine mini workspace: a kernel crate with a Snapshot type,
/// a hot-path fn, and a sorted serialization path; a shell crate it
/// must not depend on. Lints clean before any mutation.
const BOUNDARY: &str = r#"
[crates]
kernel = ["mini-kern"]
shell = ["mini-shell"]

[allow]
wallclock = []
fanout = []
unsafe_mmap = []
"#;

const ROOT_MANIFEST: &str = r#"
[workspace]
members = ["crates/mini-kern", "crates/mini-shell"]
"#;

const KERN_MANIFEST: &str = r#"
[package]
name = "mini-kern"
version = "0.1.0"

[dependencies]
"#;

const SHELL_MANIFEST: &str = r#"
[package]
name = "mini-shell"
version = "0.1.0"

[dependencies]
"#;

const KERN_LIB: &str = r#"//! Mini kernel crate for mutation tests.

use std::collections::HashMap;

pub struct Cursor {
    pub pos: u64,
    pub budget: u64,
}

impl Snapshot for Cursor {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u64(self.pos);
        w.put_u64(self.budget);
    }
}

// digg-lint: hot-path
pub fn lookup(xs: &[u32], x: u32) -> bool {
    xs.binary_search(&x).is_ok()
}

pub fn summarize(counts: &HashMap<u32, u64>) -> Vec<String> {
    let mut rows: Vec<(u32, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    rows.into_iter().map(|(k, v)| format_row(k, v)).collect()
}

fn format_row(k: u32, v: u64) -> String {
    format!("{k} {v}")
}

pub fn export(counts: &HashMap<u32, u64>, w: &mut impl std::io::Write) {
    for r in summarize(counts) {
        let _ = w.write_all(r.as_bytes());
    }
}

pub fn step(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}
"#;

const SHELL_LIB: &str = r#"//! Mini shell crate: timing and CLI panics are legal here.

pub fn measure() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
"#;

struct MiniWorkspace {
    root: PathBuf,
}

impl MiniWorkspace {
    /// Write the pristine tree under a per-process temp dir.
    fn new(case: &str) -> MiniWorkspace {
        let root =
            std::env::temp_dir().join(format!("digg-lint-mutation-{}-{case}", std::process::id()));
        // A leftover tree from a crashed prior run would corrupt the
        // case; start from nothing.
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in [
            ("Cargo.toml", ROOT_MANIFEST),
            ("lint-boundary.toml", BOUNDARY),
            ("crates/mini-kern/Cargo.toml", KERN_MANIFEST),
            ("crates/mini-kern/src/lib.rs", KERN_LIB),
            ("crates/mini-shell/Cargo.toml", SHELL_MANIFEST),
            ("crates/mini-shell/src/lib.rs", SHELL_LIB),
        ] {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
            std::fs::write(&path, text).expect("write fixture");
        }
        MiniWorkspace { root }
    }

    /// Apply one string mutation to one file. Panics if the needle is
    /// absent — a vacuous mutation must fail loudly.
    fn mutate(&self, rel: &str, from: &str, to: &str) {
        let path = self.root.join(rel);
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains(from), "mutation needle `{from}` not in {rel}");
        std::fs::write(&path, text.replace(from, to)).expect("write");
    }

    /// Rule ids surviving a workspace lint, deduped and sorted.
    fn fired(&self) -> Vec<String> {
        let ws = lint_workspace(&self.root, &Config::default()).expect("lint");
        let mut rules: Vec<String> = ws
            .dirty
            .iter()
            .flat_map(|f| f.violations.iter().map(|v| v.rule.to_string()))
            .collect();
        rules.sort();
        rules.dedup();
        rules
    }
}

impl Drop for MiniWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn pristine_mini_workspace_is_clean() {
    let ws = MiniWorkspace::new("pristine");
    assert_eq!(ws.fired(), Vec::<String>::new());
}

#[test]
fn deleting_a_snapshot_field_write_fires_snapshot_coverage() {
    let ws = MiniWorkspace::new("snapfield");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "        w.put_u64(self.budget);\n",
        "",
    );
    assert_eq!(ws.fired(), vec!["snapshot-coverage".to_string()]);
}

#[test]
fn wallclock_in_kernel_fires_no_wallclock() {
    let ws = MiniWorkspace::new("wallclock");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "pub fn step(seed: u64) -> u64 {",
        "pub fn step(seed: u64) -> u64 {\n    let _t = std::time::Instant::now();",
    );
    assert_eq!(ws.fired(), vec!["no-wallclock".to_string()]);
}

#[test]
fn alloc_in_hot_path_fires_hot_path_alloc() {
    let ws = MiniWorkspace::new("hotalloc");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "    xs.binary_search(&x).is_ok()",
        "    let owned = xs.to_vec();\n    owned.binary_search(&x).is_ok()",
    );
    assert_eq!(ws.fired(), vec!["hot-path-alloc".to_string()]);
}

#[test]
fn kernel_depending_on_shell_fires_kernel_dep_shell() {
    let ws = MiniWorkspace::new("depshell");
    ws.mutate(
        "crates/mini-kern/Cargo.toml",
        "[dependencies]\n",
        "[dependencies]\nmini-shell = { path = \"../mini-shell\" }\n",
    );
    assert_eq!(ws.fired(), vec!["kernel-dep-shell".to_string()]);
}

#[test]
fn async_in_kernel_fires_no_async_kernel() {
    let ws = MiniWorkspace::new("async");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "pub fn step(seed: u64) -> u64 {",
        "pub async fn step(seed: u64) -> u64 {",
    );
    assert_eq!(ws.fired(), vec!["no-async-kernel".to_string()]);
}

#[test]
fn removing_the_sort_rescue_fires_unordered_taint() {
    let ws = MiniWorkspace::new("taint");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "    rows.sort_unstable();\n",
        "",
    );
    assert_eq!(ws.fired(), vec!["unordered-taint".to_string()]);
}

#[test]
fn ambient_rng_in_kernel_fires_no_ambient_rng() {
    let ws = MiniWorkspace::new("rng");
    ws.mutate(
        "crates/mini-kern/src/lib.rs",
        "pub fn step(seed: u64) -> u64 {",
        "pub fn step(seed: u64) -> u64 {\n    let _r: u64 = rand::thread_rng().gen();",
    );
    assert_eq!(ws.fired(), vec!["no-ambient-rng".to_string()]);
}

#[test]
fn same_mutations_are_legal_in_the_shell_crate() {
    // The boundary is the whole point: the wallclock/async edits that
    // turn the kernel red are fine in the shell crate.
    let ws = MiniWorkspace::new("shellok");
    ws.mutate(
        "crates/mini-shell/src/lib.rs",
        "pub fn measure() -> std::time::Duration {",
        "pub async fn measure_async() {}\n\npub fn measure() -> std::time::Duration {",
    );
    assert_eq!(ws.fired(), Vec::<String>::new());
}

/// The PR-7 incident replayed against the real tree: `Sim::snapshot`
/// once forgot a field and replay diverged after restore. Deleting
/// that field's write today must fire snapshot-coverage even though
/// `Sim::restore`'s struct literal still names every field (coverage
/// is per-side, not a union).
#[test]
fn deleting_a_real_sim_snapshot_write_fires() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let engine = std::fs::read_to_string(root.join("crates/digg-sim/src/engine.rs"))
        .expect("read engine.rs");
    let config = Config::default();

    let clean = lint_source("crates/digg-sim/src/engine.rs", &engine, &config);
    assert!(
        clean.violations.is_empty(),
        "pristine engine.rs must lint clean: {:?}",
        clean.violations
    );

    let needle = "        w.put_u64(self.front_sessions);\n";
    assert!(
        engine.contains(needle),
        "snapshot write moved — update test"
    );
    let mutated = engine.replace(needle, "");
    let report = lint_source("crates/digg-sim/src/engine.rs", &mutated, &config);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "snapshot-coverage" && v.snippet.contains("front_sessions")),
        "deleting the front_sessions write must fire snapshot-coverage, got {:?}",
        report.violations
    );
}
