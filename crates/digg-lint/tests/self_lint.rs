//! The workspace must lint clean with every shipped pragma earning
//! its keep — the same gate CI runs via `cargo run -p digg-lint --
//! --workspace`, pinned here so `cargo test` alone catches a
//! regression.

use digg_lint::{lint_workspace, Config};

#[test]
fn workspace_is_clean_with_no_unused_pragmas() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = digg_lint::walk::workspace_root(here).expect("workspace root above digg-lint");
    let report = lint_workspace(&root, &Config::default()).expect("workspace readable");
    assert!(report.files_scanned > 100, "walker must see the whole tree");
    let mut message = String::new();
    for file in &report.dirty {
        for v in &file.violations {
            message.push_str(&format!(
                "{}:{}: [{}] {}\n",
                file.path, v.line, v.rule, v.snippet
            ));
        }
    }
    assert!(
        report.is_clean(),
        "workspace must lint clean (unused pragmas included):\n{message}"
    );
}
