//! Workspace discovery: which `.rs` files get linted, and as what.

use std::path::{Path, PathBuf};

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies, including the panic and
    /// narrowing-cast rules.
    Lib,
    /// Binary target (`src/bin/*`, `src/main.rs`): panic/cast rules
    /// are waived (a CLI may exit via panic-free messages it owns),
    /// the determinism rules still apply.
    Bin,
    /// Integration tests, benches, examples: determinism rules only.
    TestOrBench,
}

/// Classify a path (workspace-relative, `/`-separated).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let has_dir = |d: &str| parts.contains(&d);
    if has_dir("tests") || has_dir("benches") || has_dir("examples") {
        return FileKind::TestOrBench;
    }
    if rel.ends_with("src/main.rs") || rel.contains("/src/bin/") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Directories never linted: vendored third-party subsets, build
/// output, and the linter's own rule fixtures (which are deliberate
/// violations).
fn skip_dir(rel: &str) -> bool {
    rel == "vendor"
        || rel == "target"
        || rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/digg-lint/tests/fixtures")
        || rel.split('/').any(|p| p.starts_with('.'))
}

/// Find the workspace root: ascend from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All workspace `.rs` files under `root`, as sorted workspace-relative
/// paths — sorted so reports and JSON output are byte-stable across
/// filesystems and runs.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if skip_dir(&rel_str) {
        return Ok(());
    }
    let abs = root.join(rel);
    let mut entries: Vec<_> = std::fs::read_dir(&abs)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .collect();
    entries.sort();
    for name in entries {
        let child_rel = rel.join(&name);
        let child_abs = root.join(&child_rel);
        // Never follow symlinks: a link back up the tree would recurse
        // forever, and a link out of the tree would lint files that are
        // not part of the workspace. `symlink_metadata` stats the link
        // itself where `is_dir` would stat the target.
        let meta = std::fs::symlink_metadata(&child_abs)?;
        if meta.file_type().is_symlink() {
            continue;
        }
        if meta.is_dir() {
            collect(root, &child_rel, out)?;
        } else if child_rel.extension().is_some_and(|e| e == "rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/digg-sim/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/calibrate.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/core/tests/thread_invariance.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(
            classify("crates/bench/benches/perf.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::TestOrBench);
    }

    #[test]
    fn skips_vendor_fixtures_and_dotdirs() {
        assert!(skip_dir("vendor"));
        assert!(skip_dir("vendor/serde"));
        assert!(skip_dir("target/debug"));
        assert!(skip_dir("crates/digg-lint/tests/fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("crates/digg-lint/tests"));
        assert!(!skip_dir("crates"));
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = workspace_root(here).expect("workspace root not found");
        assert!(root.join("crates/digg-lint").is_dir());
    }

    /// Scratch tree under the target dir, removed on drop. Named by
    /// pid + case so concurrent test binaries cannot collide.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(case: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("digg-lint-walk-{}-{case}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");
            Scratch(dir)
        }

        fn write(&self, rel: &str, text: &str) {
            let p = self.0.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, text).expect("write");
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn rels(dir: &Path) -> Vec<String> {
        workspace_files(dir)
            .expect("walk")
            .into_iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect()
    }

    #[test]
    fn visits_files_in_sorted_order() {
        let s = Scratch::new("sorted");
        s.write("src/zeta.rs", "");
        s.write("src/alpha.rs", "");
        s.write("crates/a/src/lib.rs", "");
        s.write("notes.md", "");
        assert_eq!(
            rels(&s.0),
            vec!["crates/a/src/lib.rs", "src/alpha.rs", "src/zeta.rs"]
        );
    }

    #[test]
    fn excludes_target_and_vendor_trees() {
        let s = Scratch::new("excl");
        s.write("src/lib.rs", "");
        s.write("target/debug/build/gen.rs", "");
        s.write("vendor/dep/src/lib.rs", "");
        s.write("crates/digg-lint/tests/fixtures/x/bad.rs", "");
        assert_eq!(rels(&s.0), vec!["src/lib.rs"]);
    }

    #[cfg(unix)]
    #[test]
    fn symlink_cycles_terminate_and_links_are_not_followed() {
        let s = Scratch::new("cycle");
        s.write("src/lib.rs", "");
        s.write("outside.rs", "");
        // A directory symlink pointing back at the root: following it
        // would recurse forever.
        std::os::unix::fs::symlink(&s.0, s.0.join("src/loop")).expect("symlink");
        // A file symlink to an .rs file: linked sources are not
        // workspace members.
        std::os::unix::fs::symlink(s.0.join("outside.rs"), s.0.join("src/linked.rs"))
            .expect("symlink");
        assert_eq!(rels(&s.0), vec!["outside.rs", "src/lib.rs"]);
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_names_do_not_panic() {
        use std::ffi::OsStr;
        use std::os::unix::ffi::OsStrExt;
        let s = Scratch::new("nonutf8");
        s.write("src/lib.rs", "");
        let weird_dir = s.0.join(OsStr::from_bytes(b"src/b\xc3dir\xff"));
        std::fs::create_dir_all(&weird_dir).expect("mkdir");
        std::fs::write(weird_dir.join("inner.rs"), "").expect("write");
        std::fs::write(s.0.join(OsStr::from_bytes(b"src/we\xffird.rs")), "").expect("write");
        let got = rels(&s.0);
        assert!(got.contains(&"src/lib.rs".to_string()), "{got:?}");
        // The mangled names are still walked (lossily) without panics.
        assert_eq!(got.len(), 3, "{got:?}");
    }
}
