//! Workspace discovery: which `.rs` files get linted, and as what.

use std::path::{Path, PathBuf};

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies, including the panic and
    /// narrowing-cast rules.
    Lib,
    /// Binary target (`src/bin/*`, `src/main.rs`): panic/cast rules
    /// are waived (a CLI may exit via panic-free messages it owns),
    /// the determinism rules still apply.
    Bin,
    /// Integration tests, benches, examples: determinism rules only.
    TestOrBench,
}

/// Classify a path (workspace-relative, `/`-separated).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let has_dir = |d: &str| parts.contains(&d);
    if has_dir("tests") || has_dir("benches") || has_dir("examples") {
        return FileKind::TestOrBench;
    }
    if rel.ends_with("src/main.rs") || rel.contains("/src/bin/") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Directories never linted: vendored third-party subsets, build
/// output, and the linter's own rule fixtures (which are deliberate
/// violations).
fn skip_dir(rel: &str) -> bool {
    rel == "vendor"
        || rel == "target"
        || rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/digg-lint/tests/fixtures")
        || rel.split('/').any(|p| p.starts_with('.'))
}

/// Find the workspace root: ascend from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All workspace `.rs` files under `root`, as sorted workspace-relative
/// paths — sorted so reports and JSON output are byte-stable across
/// filesystems and runs.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if skip_dir(&rel_str) {
        return Ok(());
    }
    let abs = root.join(rel);
    let mut entries: Vec<_> = std::fs::read_dir(&abs)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .collect();
    entries.sort();
    for name in entries {
        let child_rel = rel.join(&name);
        let child_abs = root.join(&child_rel);
        if child_abs.is_dir() {
            collect(root, &child_rel, out)?;
        } else if child_rel.extension().is_some_and(|e| e == "rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/digg-sim/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/calibrate.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/core/tests/thread_invariance.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(
            classify("crates/bench/benches/perf.rs"),
            FileKind::TestOrBench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::TestOrBench);
    }

    #[test]
    fn skips_vendor_fixtures_and_dotdirs() {
        assert!(skip_dir("vendor"));
        assert!(skip_dir("vendor/serde"));
        assert!(skip_dir("target/debug"));
        assert!(skip_dir("crates/digg-lint/tests/fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("crates/digg-lint/tests"));
        assert!(!skip_dir("crates"));
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = workspace_root(here).expect("workspace root not found");
        assert!(root.join("crates/digg-lint").is_dir());
    }
}
