//! The determinism-and-robustness rules.
//!
//! Every rule is line-level over the blanked code of a [`SourceMap`]
//! (comments and string bodies can never match), scoped by file kind
//! and by the `#[cfg(test)]` region map. DESIGN.md §13 names the
//! workspace invariant each rule enforces.

use crate::lexer::{has_token, SourceMap};
use crate::walk::FileKind;

/// Stable rule identifiers (the ids pragmas name).
pub const NO_WALLCLOCK: &str = "no-wallclock";
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
pub const NO_LIB_UNWRAP: &str = "no-lib-unwrap";
pub const NO_UNORDERED_SERIALIZE: &str = "no-unordered-serialize";
pub const NO_TRUNCATING_CAST: &str = "no-truncating-cast";
pub const RAW_THREAD_FANOUT: &str = "raw-thread-fanout";
pub const NO_UNCHECKED_MMAP: &str = "no-unchecked-mmap";
/// Workspace analysis (DESIGN.md §18): a named field of a type with an
/// `impl Snapshot`/`Restore` that the corresponding impl bodies never
/// reference.
pub const SNAPSHOT_COVERAGE: &str = "snapshot-coverage";
/// Boundary rule: async constructs in a kernel crate.
pub const NO_ASYNC_KERNEL: &str = "no-async-kernel";
/// Boundary rule: a kernel crate's `[dependencies]` names a shell
/// crate (reported against the `Cargo.toml` line; no pragma escape).
pub const KERNEL_DEP_SHELL: &str = "kernel-dep-shell";
/// Workspace analysis: heap allocation in (or one call level below) a
/// `// digg-lint: hot-path` function.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Workspace analysis: hash-order iteration reachable from a
/// serialization or artifact-write sink.
pub const UNORDERED_TAINT: &str = "unordered-taint";
/// Meta-rule: an `allow` pragma that suppressed nothing. Errors, so
/// the pragma ledger can only shrink — dead exemptions never linger.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// Meta-rule: a pragma the engine cannot honour (unknown rule id,
/// missing reason). Never suppressible.
pub const MALFORMED_PRAGMA: &str = "malformed-pragma";

/// The suppressible rules, in reporting order.
pub const RULES: [&str; 12] = [
    NO_WALLCLOCK,
    NO_AMBIENT_RNG,
    NO_LIB_UNWRAP,
    NO_UNORDERED_SERIALIZE,
    NO_TRUNCATING_CAST,
    RAW_THREAD_FANOUT,
    NO_UNCHECKED_MMAP,
    SNAPSHOT_COVERAGE,
    NO_ASYNC_KERNEL,
    KERNEL_DEP_SHELL,
    HOT_PATH_ALLOC,
    UNORDERED_TAINT,
];

/// One-line description per rule (for `--explain` style output and
/// the JSON report).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        NO_WALLCLOCK => {
            "wall-clock read (Instant::now/SystemTime) outside the allowlisted timing module; \
             artifacts must not depend on real time"
        }
        NO_AMBIENT_RNG => {
            "ambient randomness (thread_rng/from_entropy/rand::random/OsRng); all randomness \
             must flow through des_core::StreamRng or a caller-seeded rng"
        }
        NO_LIB_UNWRAP => {
            "panic path (unwrap/expect/panic!/unreachable!) in non-test library code; return a \
             typed error or justify with a pragma"
        }
        NO_UNORDERED_SERIALIZE => {
            "HashMap/HashSet field in a #[derive(Serialize)] item or a type implementing the \
             digg_snapshot::Snapshot trait; serialized artifacts and snapshots must use \
             BTreeMap, a sorted Vec, or encode in an explicit order so bytes are \
             iteration-order independent"
        }
        NO_TRUNCATING_CAST => {
            "narrowing `as` cast to a <=32-bit integer; use try_into or a checked-id helper \
             (UserId::from_index, StoryId::from_index, try_build)"
        }
        RAW_THREAD_FANOUT => {
            "raw std::thread spawn/scope outside des_core::par; fan-out must go through the \
             deterministic chunked primitives"
        }
        NO_UNCHECKED_MMAP => {
            "`unsafe` block/fn or from_raw_parts outside the single allowlisted mmap module \
             (crates/social-graph/src/mmap.rs); all other code stays safe Rust and consumes \
             mapped memory only through GraphMap's checked slice accessors"
        }
        SNAPSHOT_COVERAGE => {
            "named field of a Snapshot/Restore type never referenced in that impl's bodies \
             (per side, one same-file call level deep); a silently dropped field is the \
             PR-7 voter_pos bug class — reference it or justify the derived state with a \
             field-level pragma"
        }
        NO_ASYNC_KERNEL => {
            "async construct (async fn/.await/tokio) in a kernel crate; the replay kernel is \
             synchronous by decree — async belongs in shell crates (lint-boundary.toml)"
        }
        KERNEL_DEP_SHELL => {
            "kernel crate lists a shell crate in [dependencies]; the kernel must not reach \
             the shell through the build graph (dev-dependencies are exempt). Fix the edge \
             or move the crate in lint-boundary.toml — there is no pragma escape"
        }
        HOT_PATH_ALLOC => {
            "heap allocation in (or one call level below) a `// digg-lint: hot-path` \
             function; the per-vote kernels must stay allocation-free"
        }
        UNORDERED_TAINT => {
            "HashMap/HashSet iteration reachable from a serialization or artifact-write \
             sink through the intra-crate call graph; sort the collected entries or reduce \
             order-independently on the same line"
        }
        UNUSED_ALLOW => "digg-lint allow pragma that suppressed no violation",
        MALFORMED_PRAGMA => "unparseable digg-lint pragma (unknown rule id or missing reason)",
        _ => "unknown rule",
    }
}

/// A single violation (pre-pragma-filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Per-file scope configuration resolved by the caller.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub kind: FileKind,
    /// File belongs to a shell crate (`lint-boundary.toml`): the
    /// harness/driver layer. Wall clock, ambient RNG, async, and CLI
    /// panics are legal there; artifact-order and unsafe rules are
    /// not.
    pub shell: bool,
    /// File is allowlisted for wall-clock reads (the bench timing
    /// module).
    pub wallclock_exempt: bool,
    /// File is allowlisted for raw thread fan-out (`des_core::par`).
    pub fanout_exempt: bool,
    /// File is the one allowlisted unsafe mmap module
    /// (`social-graph::mmap`).
    pub mmap_exempt: bool,
}

/// Run every rule over one lexed file. Returned violations are in
/// line order; pragma filtering happens in [`crate::pragma`].
pub fn check(map: &SourceMap, scope: Scope, raw_lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, code) in map.code.iter().enumerate() {
        let line = idx + 1;
        let in_test = map.in_test.get(idx).copied().unwrap_or(false);
        let snippet = || {
            raw_lines
                .get(idx)
                .map(|l| l.trim().to_string())
                .unwrap_or_default()
        };
        let mut push = |rule: &'static str| {
            out.push(Violation {
                rule,
                line,
                snippet: snippet(),
            })
        };

        if !scope.shell
            && !scope.wallclock_exempt
            && (code.contains("Instant::now") || has_token(code, "SystemTime"))
        {
            push(NO_WALLCLOCK);
        }

        if !scope.shell
            && (has_token(code, "thread_rng")
                || has_token(code, "from_entropy")
                || has_token(code, "from_os_rng")
                || has_token(code, "OsRng")
                || code.contains("rand::random"))
        {
            push(NO_AMBIENT_RNG);
        }

        if !scope.shell
            && (has_token(code, "async")
                || code.contains(".await")
                || has_token(code, "tokio")
                || has_token(code, "async_std"))
        {
            push(NO_ASYNC_KERNEL);
        }

        if scope.kind == FileKind::Lib && !in_test && !scope.shell {
            let panicky = code.contains(".unwrap()")
                || code.contains(".unwrap_err()")
                || code.contains(".expect(")
                || code.contains(".expect_err(")
                || code.contains("panic!(")
                || code.contains("unreachable!(")
                || code.contains("todo!(")
                || code.contains("unimplemented!(");
            if panicky {
                push(NO_LIB_UNWRAP);
            }
            if has_narrowing_cast(code) {
                push(NO_TRUNCATING_CAST);
            }
        }

        let in_serialize = map.in_serialize.get(idx).copied().unwrap_or(false);
        let in_snapshot = map.in_snapshot.get(idx).copied().unwrap_or(false);
        if (in_serialize || in_snapshot)
            && (has_token(code, "HashMap") || has_token(code, "HashSet"))
        {
            // A `#[serde(skip)]`-annotated field (attribute on the same
            // or the preceding line) never reaches the serialized
            // bytes, so its iteration order is unobservable. That
            // exemption does NOT extend to Snapshot-implementing types:
            // a hand-written `snapshot()` sees every field regardless
            // of serde attributes, so an exemption there needs a
            // pragma naming the ordering argument.
            let skipped = !in_snapshot
                && (code.contains("serde(skip")
                    || idx
                        .checked_sub(1)
                        .and_then(|p| map.code.get(p))
                        .is_some_and(|prev| prev.contains("serde(skip")));
            if !skipped {
                push(NO_UNORDERED_SERIALIZE);
            }
        }

        if !scope.fanout_exempt
            && (code.contains("thread::spawn")
                || code.contains("thread::scope")
                || code.contains("thread::Builder"))
        {
            push(RAW_THREAD_FANOUT);
        }

        // Applies everywhere, tests included: the soundness argument
        // for the mapped-memory casts lives in one audited module, and
        // a second `unsafe` anywhere would silently widen it.
        if !scope.mmap_exempt && (has_token(code, "unsafe") || has_token(code, "from_raw_parts")) {
            push(NO_UNCHECKED_MMAP);
        }
    }
    out
}

/// `expr as u8|u16|u32|i8|i16|i32` — the id/count-truncating casts.
/// Casts to `u64`/`usize` are exempt: ids are `u32`, so those widen on
/// every supported target (`usize` is at least 32 bits here, and the
/// CSR builders reject graphs that would overflow it).
fn has_narrowing_cast(code: &str) -> bool {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let tokens: Vec<&str> = code
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect();
    tokens
        .windows(2)
        .any(|w| w[0] == "as" && NARROW.contains(&w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_scope() -> Scope {
        Scope {
            kind: FileKind::Lib,
            shell: false,
            wallclock_exempt: false,
            fanout_exempt: false,
            mmap_exempt: false,
        }
    }

    fn check_src(src: &str, scope: Scope) -> Vec<Violation> {
        let map = lex(src);
        let raw: Vec<&str> = src.split('\n').collect();
        check(&map, scope, &raw)
    }

    #[test]
    fn narrowing_casts_flag_only_narrow_targets() {
        assert!(has_narrowing_cast("let x = n as u32;"));
        assert!(has_narrowing_cast("powi(p as i32)"));
        assert!(!has_narrowing_cast("let x = n as u64;"));
        assert!(!has_narrowing_cast("let x = n as usize;"));
        assert!(!has_narrowing_cast("let x = nas u32;"));
    }

    #[test]
    fn unwrap_only_fires_in_lib_non_test() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t {\n    fn g() { y.unwrap(); }\n}";
        let v = check_src(src, lib_scope());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        let bin = Scope {
            kind: FileKind::Bin,
            ..lib_scope()
        };
        assert!(check_src(src, bin).is_empty());
    }

    #[test]
    fn wallclock_respects_exemption() {
        let src = "let t0 = Instant::now();";
        assert_eq!(check_src(src, lib_scope())[0].rule, NO_WALLCLOCK);
        let exempt = Scope {
            wallclock_exempt: true,
            ..lib_scope()
        };
        assert!(check_src(src, exempt).is_empty());
    }

    #[test]
    fn rng_in_string_or_comment_is_ignored() {
        let src = "// thread_rng is banned\nlet s = \"thread_rng\";";
        assert!(check_src(src, lib_scope()).is_empty());
        assert_eq!(
            check_src("let r = rand::thread_rng();", lib_scope())[0].rule,
            NO_AMBIENT_RNG
        );
    }

    #[test]
    fn serialize_derive_with_hashmap_fires() {
        let src = "#[derive(Serialize)]\nstruct S {\n    m: HashMap<u32, u32>,\n}";
        let v = check_src(src, lib_scope());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, NO_UNORDERED_SERIALIZE);
        let plain = "#[derive(Debug)]\nstruct S {\n    m: HashMap<u32, u32>,\n}";
        assert!(check_src(plain, lib_scope()).is_empty());
    }

    #[test]
    fn serde_skip_field_is_exempt() {
        let src = "#[derive(Serialize)]\nstruct S {\n    #[serde(skip)]\n    m: HashSet<u32>,\n}";
        assert!(check_src(src, lib_scope()).is_empty());
        let inline = "#[derive(Serialize)]\nstruct S {\n    #[serde(skip)] m: HashSet<u32>,\n}";
        assert!(check_src(inline, lib_scope()).is_empty());
    }

    #[test]
    fn snapshot_impl_with_hashmap_fires() {
        let src = "struct Q {\n    m: HashMap<u64, u64>,\n}\nimpl Snapshot for Q {\n    fn snapshot(&self) -> Vec<u8> { Vec::new() }\n}";
        let v = check_src(src, lib_scope());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, NO_UNORDERED_SERIALIZE);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn serde_skip_does_not_exempt_snapshot_types() {
        // serde(skip) keeps a field out of serde bytes, but a
        // hand-written snapshot() still sees it.
        let src = "#[derive(Serialize)]\nstruct Q {\n    #[serde(skip)]\n    m: HashSet<u32>,\n}\nimpl Snapshot for Q {}";
        let v = check_src(src, lib_scope());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, NO_UNORDERED_SERIALIZE);
    }

    #[test]
    fn unsafe_fires_everywhere_except_the_mmap_module() {
        let src = "unsafe { std::slice::from_raw_parts(p, n) }";
        let v = check_src(src, lib_scope());
        // Both the `unsafe` token and the cast helper fire on the line.
        assert!(v.iter().all(|v| v.rule == NO_UNCHECKED_MMAP));
        assert!(!v.is_empty());
        let exempt = Scope {
            mmap_exempt: true,
            ..lib_scope()
        };
        assert!(check_src(src, exempt).is_empty());
        // Tests are NOT exempt: unsafe in a test is still unsafe.
        let in_test = "#[cfg(test)]\nmod t {\n    fn g() { unsafe { f() } }\n}";
        assert_eq!(check_src(in_test, lib_scope()).len(), 1);
        // Comments and strings never match.
        assert!(check_src("// unsafe from_raw_parts\n", lib_scope()).is_empty());
    }

    #[test]
    fn fanout_rule_and_exemption() {
        let src = "std::thread::scope(|s| {});";
        assert_eq!(check_src(src, lib_scope())[0].rule, RAW_THREAD_FANOUT);
        let exempt = Scope {
            fanout_exempt: true,
            ..lib_scope()
        };
        assert!(check_src(src, exempt).is_empty());
    }

    #[test]
    fn async_is_banned_in_kernel_but_legal_in_shell() {
        let shell = Scope {
            shell: true,
            ..lib_scope()
        };
        for src in [
            "pub async fn pump() {}",
            "let x = fut.await;",
            "tokio::spawn(task);",
        ] {
            let v = check_src(src, lib_scope());
            assert!(v.iter().any(|v| v.rule == NO_ASYNC_KERNEL), "{src}: {v:?}");
            assert!(
                check_src(src, shell)
                    .iter()
                    .all(|v| v.rule != NO_ASYNC_KERNEL),
                "{src} must be legal in a shell crate"
            );
        }
        // Comments and identifiers with the substring do not fire.
        assert!(check_src("// async is shell-only\nlet asynchrony = 1;", lib_scope()).is_empty());
    }

    #[test]
    fn shell_scope_waives_harness_rules_but_keeps_order_and_unsafe() {
        let shell = Scope {
            shell: true,
            ..lib_scope()
        };
        // Wall clock, ambient RNG, panics, casts: the shell owns them.
        let harness = "fn main() { let t = Instant::now(); let r = rand::thread_rng(); let n = big as u32; x.unwrap(); }";
        assert!(
            check_src(harness, shell).is_empty(),
            "{:?}",
            check_src(harness, shell)
        );
        assert_eq!(check_src(harness, lib_scope()).len(), 4);
        // Artifact order, fan-out, and unsafe stay policed.
        let ordered = "#[derive(Serialize)]\nstruct S {\n    m: HashMap<u32, u32>,\n}";
        assert_eq!(check_src(ordered, shell).len(), 1);
        assert_eq!(check_src("std::thread::spawn(f);", shell).len(), 1);
        assert_eq!(check_src("unsafe { f() }", shell).len(), 1);
    }
}
