//! Manifest parsing: crate names and dependency edges from
//! `Cargo.toml`, and the kernel/shell partition from
//! `lint-boundary.toml`.
//!
//! Both parsers cover exactly the TOML subset this workspace uses —
//! `[section]` headers, `key = "string"`, `key = [ …string array… ]`
//! (possibly multi-line, with `#` comments), and dotted dependency
//! keys like `digg-core.workspace = true`. The linter stays
//! dependency-free, and a malformed file is a typed error, never a
//! panic: the lint crate is kernel code and lints itself.

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// One crate's manifest, reduced to what the boundary analysis needs.
#[derive(Debug, Clone, Default)]
pub struct CrateManifest {
    /// `[package] name`, empty for a virtual workspace manifest.
    pub name: String,
    /// `[dependencies]` entries as `(dep_name, 1-based line)`.
    /// Dev- and build-dependencies are excluded: they never ship in
    /// the kernel, so a kernel crate may use a shell crate in tests.
    pub deps: Vec<(String, usize)>,
}

/// Strip a trailing `#` comment (quote-aware: `#` inside a quoted
/// string does not start a comment).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `[section]` or `[section.sub]` header → the section path.
fn section_header(line: &str) -> Option<&str> {
    let t = line.trim();
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    Some(inner.trim_matches('[').trim_matches(']'))
}

/// Unquote a TOML key (`"digg-core"` or bare `digg-core`), taking the
/// first dotted segment (`serde.workspace` → `serde`).
fn key_name(raw: &str) -> String {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        if let Some(end) = rest.find('"') {
            return rest[..end].to_string();
        }
    }
    raw.split('.').next().unwrap_or(raw).trim().to_string()
}

/// Parse a `Cargo.toml`: package name plus `[dependencies]` edges.
pub fn parse_cargo_toml(text: &str) -> Result<CrateManifest, ManifestError> {
    let mut out = CrateManifest::default();
    let mut section = String::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(sec) = section_header(line) {
            section = sec.to_string();
            // `[dependencies.foo]` declares a dependency by itself.
            if let Some(dep) = section.strip_prefix("dependencies.") {
                out.deps.push((key_name(dep), idx + 1));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match section.as_str() {
            "package" if key.trim() == "name" => {
                out.name = key_name(value);
            }
            "dependencies" => {
                out.deps.push((key_name(key), idx + 1));
            }
            _ => {}
        }
    }
    Ok(out)
}

/// The parsed `lint-boundary.toml`: the kernel/shell crate partition
/// and the file-level allowlists that used to live in per-site
/// pragmas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoundaryFile {
    /// `[crates] kernel`: crates where determinism rules are strict.
    pub kernel: Vec<String>,
    /// `[crates] shell`: harness/driver crates — wall clock, ambient
    /// RNG, async, and CLI panics are legal; artifact-order rules
    /// still apply.
    pub shell: Vec<String>,
    /// `[allow] wallclock`: kernel files allowed to read the clock.
    pub wallclock: Vec<String>,
    /// `[allow] fanout`: files allowed raw `std::thread` use.
    pub fanout: Vec<String>,
    /// `[allow] unsafe_mmap`: the audited unsafe module(s).
    pub unsafe_mmap: Vec<String>,
}

/// Extract the quoted strings of a TOML array body fragment.
fn quoted_strings(fragment: &str, out: &mut Vec<String>) {
    let mut rest = fragment;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else {
            return;
        };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
}

/// Parse `lint-boundary.toml`. Unknown sections or keys are an error:
/// a typo'd allowlist key must not silently allow nothing.
pub fn parse_boundary(text: &str) -> Result<BoundaryFile, ManifestError> {
    let mut out = BoundaryFile::default();
    let mut section = String::new();
    // (section, key) the multi-line array currently being filled.
    let mut open_array: Option<(String, String)> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim().to_string();
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some((sec, key)) = open_array.clone() {
            let mut vals = Vec::new();
            quoted_strings(&line, &mut vals);
            push_values(&mut out, &sec, &key, vals, lineno)?;
            if line.contains(']') {
                open_array = None;
            }
            continue;
        }
        if let Some(sec) = section_header(&line) {
            if sec != "crates" && sec != "allow" {
                return Err(ManifestError {
                    line: lineno,
                    msg: format!("unknown section [{sec}]"),
                });
            }
            section = sec.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ManifestError {
                line: lineno,
                msg: format!("expected `key = [..]`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let value = value.trim();
        if !value.starts_with('[') {
            return Err(ManifestError {
                line: lineno,
                msg: format!("`{key}` must be a string array"),
            });
        }
        let mut vals = Vec::new();
        quoted_strings(value, &mut vals);
        push_values(&mut out, &section, &key, vals, lineno)?;
        if !value.contains(']') {
            open_array = Some((section.clone(), key));
        }
    }
    if let Some((sec, key)) = open_array {
        return Err(ManifestError {
            line: text.lines().count(),
            msg: format!("unterminated array {sec}.{key}"),
        });
    }
    Ok(out)
}

fn push_values(
    out: &mut BoundaryFile,
    section: &str,
    key: &str,
    mut vals: Vec<String>,
    lineno: usize,
) -> Result<(), ManifestError> {
    let target = match (section, key) {
        ("crates", "kernel") => &mut out.kernel,
        ("crates", "shell") => &mut out.shell,
        ("allow", "wallclock") => &mut out.wallclock,
        ("allow", "fanout") => &mut out.fanout,
        ("allow", "unsafe_mmap") => &mut out.unsafe_mmap,
        _ => {
            return Err(ManifestError {
                line: lineno,
                msg: format!("unknown key `{key}` in section [{section}]"),
            })
        }
    };
    target.append(&mut vals);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_toml_name_and_deps() {
        let m = parse_cargo_toml(
            "[package]\nname = \"digg-sim\"\nversion = \"0.1.0\"\n\n[dependencies]\ndes-core = { path = \"../des-core\" }\nserde.workspace = true # comment\n\n[dev-dependencies]\nproptest = { path = \"../../vendor/proptest\" }\n",
        )
        .unwrap();
        assert_eq!(m.name, "digg-sim");
        let names: Vec<&str> = m.deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["des-core", "serde"]);
        assert_eq!(m.deps[0].1, 6);
    }

    #[test]
    fn dotted_dependency_section() {
        let m = parse_cargo_toml(
            "[package]\nname = \"x\"\n[dependencies.digg-core]\npath = \"../core\"\n",
        )
        .unwrap();
        assert_eq!(m.deps, vec![("digg-core".to_string(), 3)]);
    }

    #[test]
    fn workspace_manifest_has_no_name() {
        let m = parse_cargo_toml("[workspace]\nmembers = [\"crates/*\"]\n").unwrap();
        assert!(m.name.is_empty());
        assert!(m.deps.is_empty());
    }

    #[test]
    fn boundary_roundtrip() {
        let b = parse_boundary(
            "# header comment\n[crates]\nkernel = [\n  \"des-core\", \"digg-sim\", # trailing\n]\nshell = [\"digg-bench\"]\n\n[allow]\nwallclock = [\n  \"crates/digg-sim/src/supervisor.rs\",  # watchdog\n]\nfanout = []\nunsafe_mmap = [\"crates/social-graph/src/mmap.rs\"]\n",
        )
        .unwrap();
        assert_eq!(b.kernel, vec!["des-core", "digg-sim"]);
        assert_eq!(b.shell, vec!["digg-bench"]);
        assert_eq!(b.wallclock, vec!["crates/digg-sim/src/supervisor.rs"]);
        assert!(b.fanout.is_empty());
        assert_eq!(b.unsafe_mmap.len(), 1);
    }

    #[test]
    fn boundary_rejects_unknown_keys() {
        assert!(parse_boundary("[crates]\nkrenel = [\"x\"]\n").is_err());
        assert!(parse_boundary("[boundary]\n").is_err());
        assert!(parse_boundary("[allow]\nwallclock = \"not-an-array\"\n").is_err());
        assert!(parse_boundary("[crates]\nkernel = [\n\"unterminated\",\n").is_err());
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let b = parse_boundary("[allow]\nwallclock = [\"crates/a#b.rs\"]\n").unwrap();
        assert_eq!(b.wallclock, vec!["crates/a#b.rs"]);
    }
}
