//! The workspace model the cross-file analyses run over: every linted
//! file lexed and item-parsed, mapped to its owning crate, plus the
//! crate manifests and an intra-crate call-graph resolver.

use crate::lexer::SourceMap;
use crate::manifest::{self, CrateManifest};
use crate::symbols::{self, FileSymbols};
use std::path::Path;

/// One crate of the workspace.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Workspace-relative manifest path (`/`-separated).
    pub manifest_rel: String,
    /// Workspace-relative directory prefix owning this crate's files
    /// (empty for the root package, else `crates/<dir>/`).
    pub dir_prefix: String,
    /// `[dependencies]` edges as `(dep_name, 1-based manifest line)`.
    pub deps: Vec<(String, usize)>,
}

/// One linted file, fully prepared.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Index into [`WorkspaceModel::crates`], if the file maps to one.
    pub crate_idx: Option<usize>,
    pub map: SourceMap,
    /// Raw source lines (for snippets).
    pub raw: Vec<String>,
    pub syms: FileSymbols,
}

/// The whole workspace, ready for analysis.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    pub crates: Vec<CrateInfo>,
    pub files: Vec<FileEntry>,
}

/// Discover the workspace's crates: the root package (if any) plus
/// every `crates/*/Cargo.toml`. Vendored crates are out of scope, as
/// in [`crate::walk`].
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<CrateInfo>> {
    let bad = |rel: &str, e: manifest::ManifestError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{rel}: {e}"))
    };
    let mut crates = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&root_manifest) {
        let m: CrateManifest =
            manifest::parse_cargo_toml(&text).map_err(|e| bad("Cargo.toml", e))?;
        if !m.name.is_empty() {
            crates.push(CrateInfo {
                name: m.name,
                manifest_rel: "Cargo.toml".to_string(),
                dir_prefix: String::new(),
                deps: m.deps,
            });
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .collect();
        dirs.sort();
        for d in dirs {
            let dir_lossy = d.to_string_lossy().replace('\\', "/");
            let manifest_abs = crates_dir.join(&d).join("Cargo.toml");
            let Ok(text) = std::fs::read_to_string(&manifest_abs) else {
                continue;
            };
            let rel = format!("crates/{dir_lossy}/Cargo.toml");
            let m = manifest::parse_cargo_toml(&text).map_err(|e| bad(&rel, e))?;
            if m.name.is_empty() {
                continue;
            }
            crates.push(CrateInfo {
                name: m.name,
                manifest_rel: rel,
                dir_prefix: format!("crates/{dir_lossy}/"),
                deps: m.deps,
            });
        }
    }
    Ok(crates)
}

impl WorkspaceModel {
    /// Map a workspace-relative file path to its crate index: the
    /// longest matching `dir_prefix` wins (the root package's empty
    /// prefix matches everything, so `src/`, `examples/`, `tests/`
    /// fall to it).
    pub fn crate_for(crates: &[CrateInfo], rel: &str) -> Option<usize> {
        crates
            .iter()
            .enumerate()
            .filter(|(_, c)| rel.starts_with(c.dir_prefix.as_str()))
            .max_by_key(|(_, c)| c.dir_prefix.len())
            .map(|(i, _)| i)
    }

    /// Build a single-file model (the fixture/unit-test path): one
    /// anonymous kernel crate owning the file.
    pub fn single(rel: &str, src: &str) -> WorkspaceModel {
        let map = crate::lexer::lex(src);
        let syms = symbols::parse(&map);
        WorkspaceModel {
            crates: vec![CrateInfo {
                name: "local".to_string(),
                manifest_rel: String::new(),
                dir_prefix: String::new(),
                deps: Vec::new(),
            }],
            files: vec![FileEntry {
                rel: rel.to_string(),
                crate_idx: Some(0),
                map,
                raw: src.split('\n').map(str::to_string).collect(),
                syms,
            }],
        }
    }

    /// Indices of files belonging to crate `crate_idx`.
    pub fn crate_files(&self, crate_idx: usize) -> Vec<usize> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.crate_idx == Some(crate_idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Resolve a callee name from `from_file` inside one crate.
    ///
    /// Resolution is deliberately conservative: same-file functions by
    /// name first; otherwise a crate-wide match only when the name is
    /// unambiguous (exactly one function in the whole crate). An
    /// ambiguous bare name (`new`, `insert`, …) resolves to nothing
    /// rather than to everything.
    pub fn resolve_call(
        &self,
        crate_files: &[usize],
        from_file: usize,
        callee: &str,
    ) -> Vec<(usize, usize)> {
        let local: Vec<(usize, usize)> = self.files[from_file]
            .syms
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == callee && f.body.is_some())
            .map(|(j, _)| (from_file, j))
            .collect();
        if !local.is_empty() {
            return local;
        }
        let global: Vec<(usize, usize)> = crate_files
            .iter()
            .flat_map(|&fi| {
                self.files[fi]
                    .syms
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.name == callee && f.body.is_some())
                    .map(move |(j, _)| (fi, j))
            })
            .collect();
        if global.len() == 1 {
            global
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_file_model() {
        let m = WorkspaceModel::single("crates/x/src/lib.rs", "fn a() {}\nfn b() { a(); }\n");
        assert_eq!(m.files.len(), 1);
        assert_eq!(m.files[0].syms.fns.len(), 2);
        let r = m.resolve_call(&[0], 0, "a");
        assert_eq!(r, vec![(0, 0)]);
    }

    #[test]
    fn ambiguous_cross_file_call_resolves_to_nothing() {
        let mut m = WorkspaceModel::single("crates/x/src/a.rs", "fn go() { step(); }\n");
        let extra = |rel: &str, src: &str| {
            let map = crate::lexer::lex(src);
            let syms = symbols::parse(&map);
            FileEntry {
                rel: rel.to_string(),
                crate_idx: Some(0),
                map,
                raw: src.split('\n').map(str::to_string).collect(),
                syms,
            }
        };
        m.files
            .push(extra("crates/x/src/b.rs", "pub fn step() {}\n"));
        assert_eq!(m.resolve_call(&[0, 1], 0, "step"), vec![(1, 0)]);
        m.files
            .push(extra("crates/x/src/c.rs", "pub fn step() {}\n"));
        assert!(m.resolve_call(&[0, 1, 2], 0, "step").is_empty());
    }

    #[test]
    fn crate_mapping_prefers_longest_prefix() {
        let crates = vec![
            CrateInfo {
                name: "digg-repro".into(),
                manifest_rel: "Cargo.toml".into(),
                dir_prefix: String::new(),
                deps: vec![],
            },
            CrateInfo {
                name: "digg-sim".into(),
                manifest_rel: "crates/digg-sim/Cargo.toml".into(),
                dir_prefix: "crates/digg-sim/".into(),
                deps: vec![],
            },
        ];
        assert_eq!(
            WorkspaceModel::crate_for(&crates, "crates/digg-sim/src/engine.rs"),
            Some(1)
        );
        assert_eq!(WorkspaceModel::crate_for(&crates, "src/lib.rs"), Some(0));
        assert_eq!(
            WorkspaceModel::crate_for(&crates, "examples/quickstart.rs"),
            Some(0)
        );
    }

    #[test]
    fn discovers_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::walk::workspace_root(here).expect("workspace root");
        let crates = discover_crates(&root).expect("discover");
        assert!(crates.iter().any(|c| c.name == "digg-lint"));
        assert!(crates.iter().any(|c| c.name == "des-core"));
        assert!(crates.iter().any(|c| c.dir_prefix.is_empty()));
    }
}
