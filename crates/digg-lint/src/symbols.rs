//! Lightweight item parser: from a lexed [`SourceMap`] to the file's
//! symbols — functions (with owner impl, body range, callee names and
//! body tokens), named-field structs, impl blocks, and modules.
//!
//! This is deliberately *not* a Rust parser (the crate stays
//! dependency-free; no `syn`). It is a brace-depth scan over blanked
//! code that recovers exactly the structure the workspace analyses
//! need: which fields a type has, which function bodies mention which
//! identifiers, and who calls whom inside a crate. Generic parameter
//! lists are stripped from item *headers* only ([`strip_generics`]);
//! brace tracking always runs on the raw blanked line, where `<`/`>`
//! are harmless.
//!
//! The `// digg-lint: hot-path` marker is parsed here too: standing
//! immediately above a `fn` (doc comments and attributes may
//! intervene) it marks that function, before the first item of the
//! file it marks the whole module. A marker that binds to neither is
//! reported by the caller as a malformed pragma, so markers cannot
//! silently rot.

use crate::lexer::SourceMap;

/// A function definition (or trait default method).
#[derive(Debug, Clone)]
pub struct FnSym {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive body line range (`{` line through `}` line);
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Type name of the enclosing `impl` block, if any.
    pub owner: Option<String>,
    /// Trait the enclosing `impl` block implements, if any.
    pub trait_name: Option<String>,
    /// Marked `// digg-lint: hot-path` (directly or via a file-level
    /// marker).
    pub hot_path: bool,
    /// The function's signature line is inside a `#[cfg(test)]`
    /// region.
    pub in_test: bool,
    /// Identifier tokens that appear immediately before a `(` in the
    /// body — the callee-name overapproximation the call graph uses.
    pub calls: Vec<String>,
    /// All identifier tokens appearing in the body, deduplicated.
    pub body_tokens: Vec<String>,
}

impl FnSym {
    /// Does the body mention `ident` as a token?
    pub fn mentions(&self, ident: &str) -> bool {
        self.body_tokens.iter().any(|t| t == ident)
    }
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldSym {
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
    /// Declared type mentions `HashMap` or `HashSet`.
    pub is_hash: bool,
}

/// A struct with named fields (tuple/unit structs and enums carry no
/// named fields and are not recorded).
#[derive(Debug, Clone)]
pub struct StructSym {
    pub name: String,
    /// 0-based line of the `struct` keyword.
    pub line: usize,
    pub fields: Vec<FieldSym>,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// An `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplSym {
    /// Trait being implemented (last path segment), `None` for
    /// inherent impls.
    pub trait_name: Option<String>,
    /// Target type name (last path segment, generics stripped).
    pub type_name: String,
    /// 0-based line of the `impl` keyword.
    pub line: usize,
}

/// A `mod name { … }` or `mod name;` item.
#[derive(Debug, Clone)]
pub struct ModSym {
    pub name: String,
    pub line: usize,
}

/// A local `let` binding of a `HashMap`/`HashSet` inside a function
/// body — the taint analysis seeds from these and from hash-typed
/// struct fields.
#[derive(Debug, Clone)]
pub struct LocalHash {
    /// Variable name.
    pub name: String,
    /// 0-based line of the binding.
    pub line: usize,
    /// Index into [`FileSymbols::fns`] of the enclosing function.
    pub fn_idx: usize,
}

/// Everything the analyses need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    pub fns: Vec<FnSym>,
    pub structs: Vec<StructSym>,
    pub impls: Vec<ImplSym>,
    pub mods: Vec<ModSym>,
    pub local_hashes: Vec<LocalHash>,
    /// File carries a module-level `// digg-lint: hot-path` marker.
    pub file_hot_path: bool,
    /// 0-based lines of `hot-path` markers that bound to nothing.
    pub dangling_hot_path: Vec<usize>,
}

impl FileSymbols {
    /// Indices of the functions inside the impl blocks for `type_name`
    /// implementing `trait_name`.
    pub fn impl_fns(&self, type_name: &str, trait_name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.owner.as_deref() == Some(type_name) && f.trait_name.as_deref() == Some(trait_name)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Strip balanced `<…>` generic argument lists from an item *header*
/// line. Only safe on headers (impl/struct/fn signatures), where `<`
/// cannot be a comparison; `->`/`=>` arrows are preserved.
pub fn strip_generics(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut depth = 0u32;
    let mut prev = ' ';
    for c in line.chars() {
        match c {
            '<' if prev != '-' && prev != '=' && prev != '<' => depth += 1,
            '>' if depth > 0 && prev != '-' && prev != '=' => depth -= 1,
            _ if depth == 0 => out.push(c),
            _ => {}
        }
        prev = c;
    }
    out
}

/// Split a line into identifier tokens (alphanumerics + `_`).
fn idents(line: &str) -> Vec<&str> {
    line.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect()
}

#[derive(Debug)]
enum Ctx {
    Impl {
        type_name: String,
        trait_name: Option<String>,
        floor: i64,
    },
    Struct {
        idx: usize,
        floor: i64,
    },
    Fn {
        idx: usize,
        floor: i64,
    },
    Other {
        floor: i64,
    },
}

impl Ctx {
    fn floor(&self) -> i64 {
        match self {
            Ctx::Impl { floor, .. }
            | Ctx::Struct { floor, .. }
            | Ctx::Fn { floor, .. }
            | Ctx::Other { floor } => *floor,
        }
    }
}

/// A multi-line item header being accumulated until its `{` or `;`.
#[derive(Debug)]
enum Pending {
    Fn { sig_line: usize },
    Struct { header: String, sig_line: usize },
    Impl { header: String, sig_line: usize },
}

/// Parse a lexed file into its symbols.
pub fn parse(map: &SourceMap) -> FileSymbols {
    let mut out = FileSymbols::default();
    let mut depth: i64 = 0;
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Pending> = None;
    // (marker_line, consumed)
    let mut markers: Vec<(usize, bool)> = map
        .comments
        .iter()
        .enumerate()
        .filter(|(_, c)| c.trim() == "digg-lint: hot-path")
        .map(|(ln, _)| (ln, false))
        .collect();
    let mut first_item_line: Option<usize> = None;

    for (ln, code) in map.code.iter().enumerate() {
        let in_fn_body = matches!(stack.last(), Some(Ctx::Fn { .. }));
        let in_struct_body = matches!(stack.last(), Some(Ctx::Struct { .. }));
        let toks = idents(code);

        // Resolve a pending multi-line header against this line.
        if let Some(p) = pending.take() {
            let opens = code.contains('{');
            let ends = code.contains(';') && !opens;
            match p {
                Pending::Fn { sig_line } => {
                    if opens {
                        open_fn(&mut out, &mut stack, map, sig_line, ln, depth, &mut markers);
                    } else if !ends {
                        pending = Some(Pending::Fn { sig_line });
                    }
                }
                Pending::Struct { header, sig_line } => {
                    let header = format!("{header} {code}");
                    if opens && !header.contains('(') {
                        open_struct(&mut out, &mut stack, map, &header, sig_line, depth);
                    } else if !ends && !header.contains('(') && !header.contains(';') {
                        pending = Some(Pending::Struct { header, sig_line });
                    }
                }
                Pending::Impl { header, sig_line } => {
                    let header = format!("{header} {code}");
                    if opens {
                        open_impl(&mut stack, &mut out, &header, sig_line, depth);
                    } else if !ends {
                        pending = Some(Pending::Impl { header, sig_line });
                    }
                }
            }
        } else if !in_fn_body && !in_struct_body {
            // New item?
            if let Some(fpos) = toks.iter().position(|t| *t == "fn") {
                // `type F = fn(..)` aliases and `impl Fn(..)` bounds
                // are not function items.
                let is_alias = toks[..fpos].contains(&"type");
                if toks.len() > fpos + 1 && !is_alias {
                    first_item_line.get_or_insert(ln);
                    if code.contains('{') {
                        open_fn(&mut out, &mut stack, map, ln, ln, depth, &mut markers);
                    } else if !code.contains(';') {
                        pending = Some(Pending::Fn { sig_line: ln });
                    } else {
                        // Bodyless trait declaration: record without body.
                        record_fn(&mut out, &stack, map, ln, None, &mut markers);
                    }
                }
            } else if toks.first() == Some(&"impl")
                || (toks.first() == Some(&"unsafe") && toks.get(1) == Some(&"impl"))
            {
                first_item_line.get_or_insert(ln);
                if code.contains('{') {
                    open_impl(&mut stack, &mut out, code, ln, depth);
                } else {
                    pending = Some(Pending::Impl {
                        header: code.clone(),
                        sig_line: ln,
                    });
                }
            } else if let Some(spos) = toks.iter().position(|t| *t == "struct") {
                // `struct` token in a header position (not `impl X for
                // struct` — impossible — and not a field type).
                let is_header = spos == 0
                    || toks[..spos]
                        .iter()
                        .all(|t| ["pub", "crate", "super", "self"].contains(t));
                if is_header && toks.len() > spos + 1 {
                    first_item_line.get_or_insert(ln);
                    if code.contains('{') && !code.contains('(') {
                        open_struct(&mut out, &mut stack, map, code, ln, depth);
                    } else if !code.contains(';') && !code.contains('(') {
                        pending = Some(Pending::Struct {
                            header: code.clone(),
                            sig_line: ln,
                        });
                    }
                }
            } else if let Some(mpos) = toks.iter().position(|t| *t == "mod") {
                let is_header = mpos == 0
                    || toks[..mpos]
                        .iter()
                        .all(|t| ["pub", "crate", "super", "self"].contains(t));
                if is_header && toks.len() > mpos + 1 {
                    first_item_line.get_or_insert(ln);
                    out.mods.push(ModSym {
                        name: toks[mpos + 1].to_string(),
                        line: ln,
                    });
                    if code.contains('{') {
                        stack.push(Ctx::Other { floor: depth });
                    }
                }
            } else if !toks.is_empty()
                && first_item_line.is_none()
                && toks.first() != Some(&"use")
                && !code.trim_start().starts_with("#[")
                && !code.trim_start().starts_with("#!")
            {
                // Any other leading code (consts, statics) also counts
                // as the first item for file-level marker binding.
                first_item_line = Some(ln);
            } else if code.contains('{') && (toks.contains(&"trait") || toks.contains(&"enum")) {
                // Trait and enum bodies open a context so the fns
                // inside a trait are still recorded at the right level.
                first_item_line.get_or_insert(ln);
                stack.push(Ctx::Other { floor: depth });
            }
        }

        // Body/field collection for the innermost context.
        match stack.last() {
            Some(Ctx::Fn { idx, .. }) => {
                let idx = *idx;
                collect_body_line(&mut out, idx, ln, code);
            }
            Some(Ctx::Struct { idx, floor })
                if depth == *floor + 1 || (depth == *floor && code.contains('{')) =>
            {
                collect_field_line(&mut out, *idx, ln, code);
            }
            _ => {}
        }

        // Brace accounting + context closing.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|t| t.floor() == depth) {
                        if let Some(Ctx::Fn { idx, .. }) = stack.last() {
                            if let Some((start, _)) = out.fns[*idx].body {
                                out.fns[*idx].body = Some((start, ln));
                            }
                        }
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
    }

    let before_first_item = |ln: usize| first_item_line.map(|f| ln < f).unwrap_or(true);
    out.file_hot_path = markers
        .iter()
        .any(|&(ln, used)| !used && before_first_item(ln));
    out.dangling_hot_path = markers
        .iter()
        .filter(|&&(ln, used)| !used && !before_first_item(ln))
        .map(|&(ln, _)| ln)
        .collect();
    if out.file_hot_path {
        for f in &mut out.fns {
            f.hot_path = true;
        }
    }
    out
}

/// Does a marker sit immediately above `sig_line` (only attribute,
/// doc-comment, or comment lines between — a blank line breaks the
/// binding, leaving the marker to the file level)? Consumes it if so.
fn marker_above(map: &SourceMap, sig_line: usize, markers: &mut [(usize, bool)]) -> bool {
    'outer: for (mln, used) in markers.iter_mut() {
        if *used || *mln >= sig_line {
            continue;
        }
        for between in (*mln + 1)..sig_line {
            let code = map.code[between].trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#!");
            let is_comment =
                code.is_empty() && !map.comments.get(between).is_some_and(|c| c.is_empty());
            if !(is_attr || is_comment) {
                continue 'outer;
            }
        }
        *used = true;
        return true;
    }
    false
}

fn enclosing_impl(stack: &[Ctx]) -> (Option<String>, Option<String>) {
    for ctx in stack.iter().rev() {
        if let Ctx::Impl {
            type_name,
            trait_name,
            ..
        } = ctx
        {
            return (Some(type_name.clone()), trait_name.clone());
        }
    }
    (None, None)
}

fn record_fn(
    out: &mut FileSymbols,
    stack: &[Ctx],
    map: &SourceMap,
    sig_line: usize,
    body: Option<(usize, usize)>,
    markers: &mut [(usize, bool)],
) -> usize {
    let stripped = strip_generics(&map.code[sig_line]);
    let toks = idents(&stripped);
    let name = toks
        .iter()
        .position(|t| *t == "fn")
        .and_then(|p| toks.get(p + 1))
        .map(|t| t.to_string())
        .unwrap_or_default();
    let (owner, trait_name) = enclosing_impl(stack);
    let hot = marker_above(map, sig_line, markers);
    out.fns.push(FnSym {
        name,
        sig_line,
        body,
        owner,
        trait_name,
        hot_path: hot,
        in_test: map.in_test.get(sig_line).copied().unwrap_or(false),
        calls: Vec::new(),
        body_tokens: Vec::new(),
    });
    let idx = out.fns.len() - 1;
    seed_param_hashes(out, idx, sig_line, &map.code[sig_line]);
    idx
}

/// Record hash-typed parameters (`m: &HashMap<..>`) of a signature
/// line as local hash bindings, so the taint analysis can seed from
/// them like it does from `let` bindings and struct fields.
fn seed_param_hashes(out: &mut FileSymbols, fn_idx: usize, line: usize, sig_code: &str) {
    for frag in sig_code.split([',', '(']) {
        let Some((name_part, ty)) = frag.split_once(':') else {
            continue;
        };
        if !(crate::lexer::has_token(ty, "HashMap") || crate::lexer::has_token(ty, "HashSet")) {
            continue;
        }
        let name = name_part.trim().trim_start_matches("mut ").trim();
        if name.is_empty()
            || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            continue;
        }
        out.local_hashes.push(LocalHash {
            name: name.to_string(),
            line,
            fn_idx,
        });
    }
}

fn open_fn(
    out: &mut FileSymbols,
    stack: &mut Vec<Ctx>,
    map: &SourceMap,
    sig_line: usize,
    body_start: usize,
    depth: i64,
    markers: &mut [(usize, bool)],
) {
    let idx = record_fn(
        out,
        stack,
        map,
        sig_line,
        Some((body_start, body_start)),
        markers,
    );
    stack.push(Ctx::Fn { idx, floor: depth });
}

fn open_struct(
    out: &mut FileSymbols,
    stack: &mut Vec<Ctx>,
    map: &SourceMap,
    header: &str,
    sig_line: usize,
    depth: i64,
) {
    let stripped = strip_generics(header);
    let toks = idents(&stripped);
    let Some(pos) = toks.iter().position(|t| *t == "struct") else {
        return;
    };
    let Some(name) = toks.get(pos + 1) else {
        return;
    };
    out.structs.push(StructSym {
        name: name.to_string(),
        line: sig_line,
        fields: Vec::new(),
        in_test: map.in_test.get(sig_line).copied().unwrap_or(false),
    });
    let idx = out.structs.len() - 1;
    stack.push(Ctx::Struct { idx, floor: depth });
}

fn open_impl(
    stack: &mut Vec<Ctx>,
    out: &mut FileSymbols,
    header: &str,
    sig_line: usize,
    depth: i64,
) {
    let stripped = strip_generics(header);
    let toks = idents(&stripped);
    let (type_name, trait_name) = match toks.iter().position(|t| *t == "for") {
        Some(fpos) if fpos > 0 && toks.len() > fpos + 1 => {
            (toks[fpos + 1].to_string(), Some(toks[fpos - 1].to_string()))
        }
        _ => {
            let Some(ipos) = toks.iter().position(|t| *t == "impl") else {
                return;
            };
            let mut i = ipos + 1;
            // Skip `dyn` in `impl dyn Trait`.
            if toks.get(i) == Some(&"dyn") {
                i += 1;
            }
            match toks.get(i) {
                Some(t) => (t.to_string(), None),
                None => return,
            }
        }
    };
    out.impls.push(ImplSym {
        trait_name: trait_name.clone(),
        type_name: type_name.clone(),
        line: sig_line,
    });
    stack.push(Ctx::Impl {
        type_name,
        trait_name,
        floor: depth,
    });
}

/// Accumulate one body line of `fns[idx]`: tokens, callee names, and
/// local hash bindings.
fn collect_body_line(out: &mut FileSymbols, idx: usize, ln: usize, code: &str) {
    for t in idents(code) {
        if !out.fns[idx].body_tokens.iter().any(|x| x == t) {
            out.fns[idx].body_tokens.push(t.to_string());
        }
    }
    // Callee names: identifier immediately followed by `(`.
    let bytes: Vec<char> = code.chars().collect();
    let mut start = None;
    for (i, &c) in bytes.iter().enumerate() {
        if c.is_alphanumeric() || c == '_' {
            start.get_or_insert(i);
        } else {
            if c == '(' {
                if let Some(s) = start {
                    let name: String = bytes[s..i].iter().collect();
                    if !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                        && !out.fns[idx].calls.contains(&name)
                    {
                        out.fns[idx].calls.push(name);
                    }
                }
            }
            start = None;
        }
    }
    // Local hash bindings: `let [mut] name … HashMap::new()` etc.
    let toks = idents(code);
    let is_hash_ctor = ["HashMap", "HashSet"].iter().any(|h| {
        code.contains(&format!("{h}::new")) || code.contains(&format!("{h}::with_capacity"))
    }) || (code.contains("HashMap<") || code.contains("HashSet<"));
    if is_hash_ctor {
        if let Some(lpos) = toks.iter().position(|t| *t == "let") {
            let mut n = lpos + 1;
            if toks.get(n) == Some(&"mut") {
                n += 1;
            }
            if let Some(name) = toks.get(n) {
                if !["HashMap", "HashSet"].contains(name) {
                    out.local_hashes.push(LocalHash {
                        name: name.to_string(),
                        line: ln,
                        fn_idx: idx,
                    });
                }
            }
        }
    }
}

/// Accumulate one field line of `structs[idx]`.
fn collect_field_line(out: &mut FileSymbols, idx: usize, ln: usize, code: &str) {
    let trimmed = code.trim_start();
    if trimmed.starts_with("#[") || trimmed.starts_with('}') {
        return;
    }
    // Strip visibility: `pub`, `pub(crate)`, `pub(in …)`.
    let mut rest = trimmed;
    if let Some(r) = rest.strip_prefix("pub") {
        rest = match r.trim_start().strip_prefix('(') {
            Some(after) => match after.find(')') {
                Some(close) => &after[close + 1..],
                None => return,
            },
            None => r,
        };
    }
    let rest = rest.trim_start();
    // A field is `ident:` (not `ident::`) before any `(` or `{`.
    let Some(colon) = rest.find(':') else {
        return;
    };
    if rest[colon..].starts_with("::") {
        return;
    }
    let name = rest[..colon].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return;
    }
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return;
    }
    // Skip things that merely look like fields inside struct bodies
    // (`where` bounds never reach here: fields sit one level deeper).
    if ["fn", "const", "static", "type", "struct", "enum", "impl"].contains(&name) {
        return;
    }
    let ty = &rest[colon + 1..];
    let is_hash = crate::lexer::has_token(ty, "HashMap") || crate::lexer::has_token(ty, "HashSet");
    out.structs[idx].fields.push(FieldSym {
        name: name.to_string(),
        line: ln,
        is_hash,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSymbols {
        parse(&lex(src))
    }

    #[test]
    fn strip_generics_keeps_arrows() {
        assert_eq!(
            strip_generics("impl<T: Codec> Snapshot for Q<T> {"),
            "impl Snapshot for Q {"
        );
        assert_eq!(
            strip_generics("fn f<T>(x: T) -> u64 {"),
            "fn f(x: T) -> u64 {"
        );
        assert_eq!(
            strip_generics("fn g(h: impl Fn(u32) -> Vec<u8>) {"),
            "fn g(h: impl Fn(u32) -> Vec) {"
        );
    }

    #[test]
    fn parses_struct_fields_and_hash_flag() {
        let s = parse_src(
            "pub struct Sim {\n    cfg: Config,\n    #[serde(skip)]\n    pub scheduled: HashSet<(u32, u32)>,\n    pub(crate) tau: f64,\n}\n",
        );
        assert_eq!(s.structs.len(), 1);
        let f: Vec<_> = s.structs[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.is_hash))
            .collect();
        assert_eq!(f, vec![("cfg", false), ("scheduled", true), ("tau", false)]);
    }

    #[test]
    fn tuple_structs_and_enums_are_skipped() {
        let s = parse_src("pub struct Id(u32);\npub enum E {\n    A { x: u32 },\n}\n");
        assert!(s.structs.is_empty());
    }

    #[test]
    fn parses_impl_fns_with_owner_and_trait() {
        let s = parse_src(
            "impl Snapshot for Sim {\n    fn snapshot(&self) -> Vec<u8> {\n        self.encode()\n    }\n}\nimpl Sim {\n    fn tick(&mut self) {\n        self.step(1);\n    }\n}\n",
        );
        assert_eq!(s.impls.len(), 2);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "snapshot");
        assert_eq!(s.fns[0].owner.as_deref(), Some("Sim"));
        assert_eq!(s.fns[0].trait_name.as_deref(), Some("Snapshot"));
        assert!(s.fns[0].mentions("encode"));
        assert_eq!(s.fns[1].trait_name, None);
        assert!(s.fns[1].calls.iter().any(|c| c == "step"));
    }

    #[test]
    fn multiline_signatures_and_where_clauses() {
        let s = parse_src(
            "fn f<T>(\n    x: T,\n) -> u64\nwhere\n    T: Into<u64>,\n{\n    x.into()\n}\n",
        );
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "f");
        assert_eq!(s.fns[0].body, Some((5, 7)));
        assert!(s.fns[0].mentions("into"));
    }

    #[test]
    fn multiline_impl_header() {
        let s = parse_src("impl<T: Codec> Snapshot\n    for EventQueue<T>\n{\n}\n");
        assert_eq!(s.impls.len(), 1);
        assert_eq!(s.impls[0].type_name, "EventQueue");
        assert_eq!(s.impls[0].trait_name.as_deref(), Some("Snapshot"));
    }

    #[test]
    fn hot_path_marker_binds_to_next_fn() {
        let s = parse_src(
            "fn cold() {}\n// digg-lint: hot-path\n#[inline]\npub fn hot(x: u32) -> u32 {\n    x\n}\n",
        );
        assert!(!s.fns[0].hot_path);
        assert!(s.fns[1].hot_path);
        assert!(!s.file_hot_path);
        assert!(s.dangling_hot_path.is_empty());
    }

    #[test]
    fn file_level_hot_path_marker() {
        let s = parse_src("// digg-lint: hot-path\n\nuse std::x;\n\nfn a() {}\nfn b() {}\n");
        assert!(s.file_hot_path);
        assert!(s.fns.iter().all(|f| f.hot_path));
    }

    #[test]
    fn dangling_marker_is_reported() {
        let s = parse_src("fn a() {}\n// digg-lint: hot-path\nstruct S {\n    x: u32,\n}\n");
        assert_eq!(s.dangling_hot_path, vec![1]);
    }

    #[test]
    fn local_hash_bindings_are_recorded() {
        let s = parse_src(
            "fn f() {\n    let mut seen = HashSet::new();\n    let counts: HashMap<u32, u32> = HashMap::new();\n    seen.insert(1);\n}\n",
        );
        assert_eq!(s.local_hashes.len(), 2);
        assert_eq!(s.local_hashes[0].name, "seen");
        assert_eq!(s.local_hashes[1].name, "counts");
    }

    #[test]
    fn bodyless_trait_methods_are_recorded() {
        let s = parse_src("pub trait T {\n    fn probe(&self) -> bool;\n    fn d(&self) -> u32 {\n        4\n    }\n}\n");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].body, None);
        assert!(s.fns[1].body.is_some());
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let s = parse_src(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x();\n    }\n}\n",
        );
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0].in_test);
        assert_eq!(s.mods.len(), 1);
    }
}
