//! The `digg-lint: allow(...)` pragma: the only way to suppress a
//! violation, and itself policed.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! digg-lint: allow(rule-id[, rule-id…]) — reason text
//! ```
//!
//! The separator may be an em-dash, `--`, or `:`; the reason is
//! mandatory. A pragma covers its own line and, when it is the only
//! thing on its line, the next code line. Every allow must suppress at
//! least one violation — an unused allow is an error ([`UNUSED_ALLOW`])
//! so the exemption ledger can only shrink over time.

use crate::lexer::SourceMap;
use crate::rules::{Violation, MALFORMED_PRAGMA, RULES, UNUSED_ALLOW};

/// One parsed allow pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids this pragma suppresses.
    pub rules: Vec<String>,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Justification text (non-empty by construction).
    pub reason: String,
}

/// Scan a file's comments for pragmas. Returns the well-formed allows
/// plus violations for every malformed one.
pub fn parse(map: &SourceMap, raw_lines: &[&str]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, comment) in map.comments.iter().enumerate() {
        // Doc comments (`///`, `//!`) are documentation — they may
        // *describe* the pragma syntax (as this module does) without
        // being pragmas. The lexer strips only the leading `//`, so a
        // doc comment's text starts with `/` or `!`.
        if comment.starts_with('/') || comment.starts_with('!') {
            continue;
        }
        let Some(at) = comment.find("digg-lint:") else {
            continue;
        };
        let line = idx + 1;
        let snippet = raw_lines
            .get(idx)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        let rest = comment[at + "digg-lint:".len()..].trim_start();
        // The `hot-path` marker is not a pragma: it is parsed (and
        // policed for dangling placement) by [`crate::symbols`].
        if rest.trim() == "hot-path" {
            continue;
        }
        let mut fail = |_why: &str| {
            bad.push(Violation {
                rule: MALFORMED_PRAGMA,
                line,
                snippet: snippet.clone(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("expected `allow(`");
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("unclosed allow(");
            continue;
        };
        let ids: Vec<String> = args[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if ids.is_empty() || ids.iter().any(|id| !RULES.contains(&id.as_str())) {
            fail("unknown rule id");
            continue;
        }
        let mut reason = args[close + 1..].trim_start();
        for sep in ["—", "--", "-", ":"] {
            if let Some(r) = reason.strip_prefix(sep) {
                reason = r.trim_start();
                break;
            }
        }
        if reason.trim().is_empty() {
            fail("missing reason");
            continue;
        }
        allows.push(Allow {
            rules: ids,
            line,
            reason: reason.trim().to_string(),
        });
    }
    (allows, bad)
}

/// Apply `allows` to `violations`: a violation on the pragma's line or
/// on the next line (for a pragma standing alone on its line) is
/// suppressed. Returns the surviving violations plus an
/// [`UNUSED_ALLOW`] violation per pragma that suppressed nothing.
pub fn apply(
    map: &SourceMap,
    raw_lines: &[&str],
    violations: Vec<Violation>,
    allows: &[Allow],
) -> Vec<Violation> {
    apply_counted(map, raw_lines, violations, allows).0
}

/// [`apply`], also returning the rule id of every suppressed
/// violation — the per-rule ledger the baseline gate compares.
pub fn apply_counted(
    map: &SourceMap,
    raw_lines: &[&str],
    violations: Vec<Violation>,
    allows: &[Allow],
) -> (Vec<Violation>, Vec<&'static str>) {
    let mut used = vec![false; allows.len()];
    let mut suppressed: Vec<&'static str> = Vec::new();
    let mut out = Vec::new();
    'violations: for v in violations {
        for (i, a) in allows.iter().enumerate() {
            if !a.rules.iter().any(|r| r == v.rule) {
                continue;
            }
            let own_line = v.line == a.line;
            // A comment-only pragma line covers the next line.
            let comment_only = map
                .code
                .get(a.line - 1)
                .is_some_and(|c| c.trim().is_empty());
            let next_line = comment_only && v.line == a.line + 1;
            if own_line || next_line {
                used[i] = true;
                suppressed.push(v.rule);
                continue 'violations;
            }
        }
        out.push(v);
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            out.push(Violation {
                rule: UNUSED_ALLOW,
                line: a.line,
                snippet: raw_lines
                    .get(a.line - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
    out.sort_by_key(|v| v.line);
    (out, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{check, Scope, NO_LIB_UNWRAP};
    use crate::walk::FileKind;

    fn run(src: &str) -> Vec<Violation> {
        let map = lex(src);
        let raw: Vec<&str> = src.split('\n').collect();
        let scope = Scope {
            kind: FileKind::Lib,
            shell: false,
            wallclock_exempt: false,
            fanout_exempt: false,
            mmap_exempt: false,
        };
        let (allows, mut bad) = parse(&map, &raw);
        let mut v = apply(&map, &raw, check(&map, scope, &raw), &allows);
        v.append(&mut bad);
        v.sort_by_key(|v| v.line);
        v
    }

    #[test]
    fn trailing_pragma_suppresses_own_line() {
        let src =
            "fn f() { x.unwrap(); } // digg-lint: allow(no-lib-unwrap) — invariant: x is Some";
        assert!(run(src).is_empty());
    }

    #[test]
    fn standalone_pragma_covers_next_line() {
        let src = "// digg-lint: allow(no-lib-unwrap) — checked above\nfn f() { x.unwrap(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// digg-lint: allow(no-lib-unwrap) — stale\nfn f() {}";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNUSED_ALLOW);
    }

    #[test]
    fn pragma_does_not_reach_across_code() {
        let src =
            "// digg-lint: allow(no-lib-unwrap) — misplaced\nfn f() {}\nfn g() { x.unwrap(); }";
        let v = run(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.rule == UNUSED_ALLOW));
        assert!(v.iter().any(|v| v.rule == NO_LIB_UNWRAP));
    }

    #[test]
    fn missing_reason_or_unknown_rule_is_malformed() {
        for src in [
            "fn f() { x.unwrap(); } // digg-lint: allow(no-lib-unwrap)",
            "fn f() {} // digg-lint: allow(made-up-rule) — why",
            "fn f() {} // digg-lint: allowing things",
        ] {
            let v = run(src);
            assert!(v.iter().any(|v| v.rule == MALFORMED_PRAGMA), "{src}: {v:?}");
        }
    }

    #[test]
    fn multi_rule_pragma() {
        let src = "fn f() { let x = (t.unwrap() as u32, Instant::now()); } // digg-lint: allow(no-lib-unwrap, no-truncating-cast, no-wallclock) — fixture exercising all three";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
