//! CLI: `digg-lint [--workspace] [--json] [--root DIR]
//! [--baseline PATH] [--write-baseline PATH] [FILES…]`.
//!
//! Exit codes: 0 clean, 1 violations or baseline regression, 2 usage
//! or I/O error.

use digg_lint::{baseline, lint_source, lint_workspace, report, Config, FileReport};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        workspace: false,
        json: false,
        root: None,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--workspace" => out.workspace = true,
            "--json" => out.json = true,
            "--root" => match argv.next() {
                Some(dir) => out.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory".to_string()),
            },
            "--baseline" => match argv.next() {
                Some(p) => out.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline requires a file".to_string()),
            },
            "--write-baseline" => match argv.next() {
                Some(p) => out.write_baseline = Some(PathBuf::from(p)),
                None => return Err("--write-baseline requires a file".to_string()),
            },
            "--help" | "-h" => {
                return Err("usage: digg-lint [--workspace] [--json] [--root DIR] \
                     [--baseline PATH] [--write-baseline PATH] [FILES…]"
                    .to_string())
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => out.files.push(PathBuf::from(file)),
        }
    }
    if !out.workspace && out.files.is_empty() {
        out.workspace = true;
    }
    if (out.baseline.is_some() || out.write_baseline.is_some()) && !out.workspace {
        return Err("--baseline/--write-baseline require --workspace".to_string());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("digg-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let config = Config::default();

    let start = args
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));

    let empty_ledger = BTreeMap::new();
    let (reports, files_scanned, allows, ledger): (
        Vec<FileReport>,
        usize,
        usize,
        BTreeMap<String, usize>,
    );
    let mut gate_failed = false;
    if args.workspace {
        let Some(root) = digg_lint::walk::workspace_root(&start) else {
            eprintln!(
                "digg-lint: no workspace Cargo.toml above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        let ws = match lint_workspace(&root, &config) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("digg-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(path) = &args.write_baseline {
            let json = report::render_json(
                &ws.dirty,
                ws.files_scanned,
                ws.allows_honoured,
                &ws.suppressed_by_rule,
            );
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("digg-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("digg-lint: baseline written to {}", path.display());
        }
        if let Some(path) = &args.baseline {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("digg-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("digg-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let cmp = baseline::compare(&ws, &base);
            for note in &cmp.notes {
                eprintln!("digg-lint: note: {note}");
            }
            for fail in &cmp.failures {
                eprintln!("digg-lint: baseline: {fail}");
            }
            gate_failed = !cmp.passed();
        }
        reports = ws.dirty;
        files_scanned = ws.files_scanned;
        allows = ws.allows_honoured;
        ledger = ws.suppressed_by_rule;
    } else {
        let mut out = Vec::new();
        let mut n_allows = 0usize;
        for f in &args.files {
            let rel = f.to_string_lossy().replace('\\', "/");
            // Relative paths anchor at --root (when given) so rule
            // scoping sees the same workspace-relative path CI does.
            let on_disk = if f.is_absolute() {
                f.clone()
            } else {
                start.join(f)
            };
            match std::fs::read_to_string(&on_disk) {
                Ok(src) => {
                    let fr = lint_source(&rel, &src, &config);
                    n_allows += fr.allows_honoured;
                    out.push(fr);
                }
                Err(e) => {
                    eprintln!("digg-lint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        files_scanned = out.len();
        allows = n_allows;
        reports = out;
        ledger = empty_ledger;
    }

    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    if args.json {
        print!(
            "{}",
            report::render_json(&reports, files_scanned, allows, &ledger)
        );
    } else {
        print!("{}", report::render_text(&reports, files_scanned, allows));
    }
    if total == 0 && !gate_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
