//! CLI: `digg-lint [--workspace] [--json] [--root DIR] [FILES…]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use digg_lint::{lint_source, lint_workspace, report, Config, FileReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        workspace: false,
        json: false,
        root: None,
        files: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--workspace" => out.workspace = true,
            "--json" => out.json = true,
            "--root" => match argv.next() {
                Some(dir) => out.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory".to_string()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: digg-lint [--workspace] [--json] [--root DIR] [FILES…]".to_string(),
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => out.files.push(PathBuf::from(file)),
        }
    }
    if !out.workspace && out.files.is_empty() {
        out.workspace = true;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("digg-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let config = Config::default();

    let start = args
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));

    let (reports, files_scanned, allows): (Vec<FileReport>, usize, usize) = if args.workspace {
        let Some(root) = digg_lint::walk::workspace_root(&start) else {
            eprintln!(
                "digg-lint: no workspace Cargo.toml above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        match lint_workspace(&root, &config) {
            Ok(ws) => (ws.dirty, ws.files_scanned, ws.allows_honoured),
            Err(e) => {
                eprintln!("digg-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut reports = Vec::new();
        let mut allows = 0usize;
        for f in &args.files {
            let rel = f.to_string_lossy().replace('\\', "/");
            // Relative paths anchor at --root (when given) so rule
            // scoping sees the same workspace-relative path CI does.
            let on_disk = if f.is_absolute() {
                f.clone()
            } else {
                start.join(f)
            };
            match std::fs::read_to_string(&on_disk) {
                Ok(src) => {
                    let fr = lint_source(&rel, &src, &config);
                    allows += fr.allows_honoured;
                    reports.push(fr);
                }
                Err(e) => {
                    eprintln!("digg-lint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        let n = reports.len();
        (reports, n, allows)
    };

    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    if args.json {
        print!("{}", report::render_json(&reports, files_scanned, allows));
    } else {
        print!("{}", report::render_text(&reports, files_scanned, allows));
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
