//! The lint-baseline gate: the committed ledger the CI job compares
//! against, so the pragma count can only shrink.
//!
//! `results/lint_baseline.json` is simply the `--json` report of a
//! clean tree (refresh it with `--write-baseline`). The gate
//! (`--baseline PATH`) re-lints the workspace and fails if the total
//! honoured-pragma count grew, or if any single rule's suppressed
//! count grew — so trading a wallclock exemption for three new unwrap
//! exemptions is caught even when the total is flat. Shrinkage is
//! reported as a friendly nudge to refresh the committed file.
//!
//! Parsing is a deliberately tiny key scanner over the fixed-format
//! JSON [`crate::report::render_json`] emits — not a general JSON
//! parser; the linter stays dependency-free.

use crate::WorkspaceReport;
use std::collections::BTreeMap;

/// The subset of the committed report the gate compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Total allow pragmas honoured when the baseline was written.
    pub allows_honoured: usize,
    /// Per-rule suppressed-violation counts.
    pub suppressed_by_rule: BTreeMap<String, usize>,
}

/// Extract the baseline fields from a committed `--json` report.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let allows_honoured = scan_usize(text, "\"allows_honoured\":")
        .ok_or_else(|| "baseline missing \"allows_honoured\"".to_string())?;
    let mut suppressed_by_rule = BTreeMap::new();
    if let Some(at) = text.find("\"suppressed_by_rule\":") {
        let rest = &text[at + "\"suppressed_by_rule\":".len()..];
        let open = rest
            .find('{')
            .ok_or_else(|| "baseline: suppressed_by_rule is not an object".to_string())?;
        let body = &rest[open + 1..];
        let close = body
            .find('}')
            .ok_or_else(|| "baseline: unterminated suppressed_by_rule".to_string())?;
        for pair in body[..close].split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("baseline: bad ledger entry `{pair}`"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline: bad ledger count `{pair}`"))?;
            suppressed_by_rule.insert(key, value);
        }
    } else {
        return Err("baseline missing \"suppressed_by_rule\"".to_string());
    }
    Ok(Baseline {
        allows_honoured,
        suppressed_by_rule,
    })
}

fn scan_usize(text: &str, key: &str) -> Option<usize> {
    let at = text.find(key)?;
    let rest = text[at + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Regressions — any entry here fails the gate.
    pub failures: Vec<String>,
    /// Improvements worth folding into a refreshed baseline.
    pub notes: Vec<String>,
}

impl Comparison {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a fresh workspace report against the committed baseline.
pub fn compare(current: &WorkspaceReport, baseline: &Baseline) -> Comparison {
    let mut failures = Vec::new();
    let mut notes = Vec::new();

    match current.allows_honoured.cmp(&baseline.allows_honoured) {
        std::cmp::Ordering::Greater => failures.push(format!(
            "pragma ledger grew: {} allow(s) honoured vs {} in the baseline — \
             remove an exemption instead of adding one",
            current.allows_honoured, baseline.allows_honoured
        )),
        std::cmp::Ordering::Less => notes.push(format!(
            "pragma ledger shrank ({} -> {}): refresh with --write-baseline",
            baseline.allows_honoured, current.allows_honoured
        )),
        std::cmp::Ordering::Equal => {}
    }

    let rules: std::collections::BTreeSet<&String> = current
        .suppressed_by_rule
        .keys()
        .chain(baseline.suppressed_by_rule.keys())
        .collect();
    for rule in rules {
        let now = *current.suppressed_by_rule.get(rule.as_str()).unwrap_or(&0);
        let then = *baseline.suppressed_by_rule.get(rule.as_str()).unwrap_or(&0);
        match now.cmp(&then) {
            std::cmp::Ordering::Greater => failures.push(format!(
                "suppressions for `{rule}` grew: {now} vs {then} in the baseline"
            )),
            std::cmp::Ordering::Less => notes.push(format!(
                "suppressions for `{rule}` shrank ({then} -> {now}): refresh with --write-baseline"
            )),
            std::cmp::Ordering::Equal => {}
        }
    }

    Comparison { failures, notes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(allows: usize, ledger: &[(&str, usize)]) -> WorkspaceReport {
        WorkspaceReport {
            dirty: Vec::new(),
            files_scanned: 10,
            allows_honoured: allows,
            suppressed_by_rule: ledger.iter().map(|(r, n)| (r.to_string(), *n)).collect(),
        }
    }

    fn baseline(allows: usize, ledger: &[(&str, usize)]) -> Baseline {
        Baseline {
            allows_honoured: allows,
            suppressed_by_rule: ledger.iter().map(|(r, n)| (r.to_string(), *n)).collect(),
        }
    }

    #[test]
    fn round_trips_through_render_json() {
        let ws = report(7, &[("no-wallclock", 3), ("no-lib-unwrap", 4)]);
        let json = crate::report::render_json(
            &ws.dirty,
            ws.files_scanned,
            ws.allows_honoured,
            &ws.suppressed_by_rule,
        );
        let b = parse(&json).expect("parse");
        assert_eq!(b.allows_honoured, 7);
        assert_eq!(b.suppressed_by_rule.get("no-wallclock"), Some(&3));
        assert_eq!(b.suppressed_by_rule.get("no-lib-unwrap"), Some(&4));
        assert!(compare(&ws, &b).passed());
    }

    #[test]
    fn total_growth_fails() {
        let b = baseline(5, &[("no-wallclock", 5)]);
        let cmp = compare(&report(6, &[("no-wallclock", 5)]), &b);
        assert!(!cmp.passed());
        assert!(cmp.failures[0].contains("ledger grew"));
    }

    #[test]
    fn per_rule_growth_fails_even_when_total_is_flat() {
        // Trading one wallclock exemption for one unwrap exemption
        // keeps the total flat but still fails the gate.
        let b = baseline(5, &[("no-wallclock", 3), ("no-lib-unwrap", 2)]);
        let cmp = compare(&report(5, &[("no-wallclock", 2), ("no-lib-unwrap", 3)]), &b);
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("no-lib-unwrap")));
    }

    #[test]
    fn new_rule_key_with_nonzero_count_fails() {
        let b = baseline(2, &[("no-wallclock", 2)]);
        let cmp = compare(
            &report(2, &[("no-wallclock", 1), ("hot-path-alloc", 1)]),
            &b,
        );
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("hot-path-alloc")));
    }

    #[test]
    fn shrinkage_passes_with_refresh_note() {
        let b = baseline(5, &[("no-wallclock", 5)]);
        let cmp = compare(&report(4, &[("no-wallclock", 4)]), &b);
        assert!(cmp.passed());
        assert_eq!(cmp.notes.len(), 2);
        assert!(cmp.notes[0].contains("--write-baseline"));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"allows_honoured\": 3}").is_err());
        assert!(parse("{\"allows_honoured\": 3, \"suppressed_by_rule\": {\"x\": \"y\"}}").is_err());
    }
}
