//! Report rendering: human text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (the linter is dependency-free by
//! design) and emits keys in a fixed order with sorted file entries,
//! so the report bytes are stable for a given tree — stable enough to
//! commit as the baseline the CI gate compares against ([`crate::baseline`]).

use crate::FileReport;
use std::collections::BTreeMap;

/// Human-readable report: one `path:line: [rule] snippet` per
/// violation plus a summary line.
pub fn render_text(reports: &[FileReport], files_scanned: usize, allows: usize) -> String {
    let mut out = String::new();
    let mut total = 0usize;
    for fr in reports {
        for v in &fr.violations {
            total += 1;
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                fr.path, v.line, v.rule, v.snippet
            ));
        }
    }
    if total == 0 {
        out.push_str(&format!(
            "digg-lint: clean — {files_scanned} files, {allows} justified allow pragma(s)\n"
        ));
    } else {
        out.push_str(&format!(
            "digg-lint: {total} violation(s) in {files_scanned} files ({allows} allow pragma(s) honoured)\n"
        ));
    }
    out
}

/// Machine-readable report. `suppressed_by_rule` is the per-rule
/// pragma ledger; pass an empty map in single-file mode.
pub fn render_json(
    reports: &[FileReport],
    files_scanned: usize,
    allows: usize,
    suppressed_by_rule: &BTreeMap<String, usize>,
) -> String {
    let mut out = String::from("{\n");
    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"allows_honoured\": {allows},\n"));
    out.push_str(&format!("  \"violations\": {total},\n"));
    out.push_str("  \"suppressed_by_rule\": {");
    let mut first = true;
    for (rule, n) in suppressed_by_rule {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {n}", json_str(rule)));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    let mut first = true;
    for fr in reports {
        for v in &fr.violations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}}}",
                json_str(&fr.path),
                v.line,
                json_str(v.rule),
                json_str(&v.snippet)
            ));
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    fn sample() -> Vec<FileReport> {
        vec![FileReport {
            path: "crates/x/src/lib.rs".into(),
            violations: vec![Violation {
                rule: "no-lib-unwrap",
                line: 3,
                snippet: "x.unwrap(); \"q\"".into(),
            }],
            allows_honoured: 2,
            suppressed_rules: vec!["no-wallclock", "no-wallclock"],
        }]
    }

    #[test]
    fn text_report_lists_and_sums() {
        let text = render_text(&sample(), 5, 2);
        assert!(text.contains("crates/x/src/lib.rs:3: [no-lib-unwrap]"));
        assert!(text.contains("1 violation(s) in 5 files (2 allow pragma(s) honoured)"));
        let clean = render_text(&[], 5, 2);
        assert!(clean.contains("clean"));
    }

    #[test]
    fn json_report_is_valid_and_escaped() {
        let ledger: BTreeMap<String, usize> = [("no-wallclock".to_string(), 2)].into();
        let json = render_json(&sample(), 5, 2, &ledger);
        assert!(json.contains("\"files_scanned\": 5"));
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"rule\": \"no-lib-unwrap\""));
        assert!(json.contains("\"no-wallclock\": 2"));
        // Balanced braces/brackets as a cheap validity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_ledger_renders_empty_object() {
        let json = render_json(&[], 0, 0, &BTreeMap::new());
        assert!(json.contains("\"suppressed_by_rule\": {},"));
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
    }
}
