//! Comment- and string-aware source preparation.
//!
//! The rule engine never looks at raw source: it looks at a
//! [`SourceMap`], where every comment and every string/char-literal
//! body has been blanked to spaces (structure and line numbers
//! preserved) and the comment text is kept separately for pragma
//! scanning. A rule pattern can therefore never false-positive on a
//! doc sentence like "uses `thread_rng`" or on a format string.
//!
//! A second pass over the blanked code tracks brace depth to mark
//! the `#[cfg(test)]` / `#[test]` regions (where the library-panic
//! rules do not apply), the bodies of `#[derive(Serialize)]` items
//! (where the unordered-collection rule does), and the bodies of
//! types with an `impl Snapshot for …` in the same file (where the
//! same rule applies: snapshot bytes must not depend on hash order).

/// One file, lexed for the rule engine. All vectors are indexed by
/// zero-based line number and have identical length.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// Source line with comments and literal bodies blanked to spaces.
    pub code: Vec<String>,
    /// Concatenated comment text of the line (without `//`/`/*`).
    pub comments: Vec<String>,
    /// Line is inside a `#[cfg(test)]` module or `#[test]` function.
    pub in_test: Vec<bool>,
    /// Line is inside the body of a `#[derive(.. Serialize ..)]` item.
    pub in_serialize: Vec<bool>,
    /// Line is inside the body of a `struct`/`enum` that has an
    /// `impl … Snapshot for <Name>` somewhere in the same file.
    pub in_snapshot: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Rust block comments nest; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` + `n` `#`s.
    RawStr(u32),
    CharLit,
}

/// Lex `src` into a [`SourceMap`]. Never fails: unterminated literals
/// simply blank to end of file, which is what a later rustc run will
/// reject anyway.
pub fn lex(src: &str) -> SourceMap {
    let mut code: Vec<String> = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    let mut state = State::Code;

    for line in src.split('\n') {
        let mut code_line = String::with_capacity(line.len());
        let mut comment_line = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment_line.extend(&chars[i + 2..]);
                        // Keep column alignment for the rest of the line.
                        for _ in i..chars.len() {
                            code_line.push(' ');
                        }
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code_line.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        code_line.push('"');
                    }
                    'r' | 'b' if !prev_is_ident(&code_line) => {
                        // Possible raw-string / byte-string prefix.
                        if let Some((hashes, skip)) = raw_string_prefix(&chars[i..]) {
                            state = State::RawStr(hashes);
                            for _ in 0..skip {
                                code_line.push(' ');
                            }
                            code_line.pop();
                            code_line.push('"');
                            i += skip;
                            continue;
                        }
                        code_line.push(c);
                    }
                    '\'' => {
                        // Lifetime or char literal? A char literal has a
                        // closing quote within a few characters.
                        if is_char_literal(&chars[i..]) {
                            state = State::CharLit;
                            code_line.push('\'');
                        } else {
                            code_line.push('\'');
                        }
                    }
                    _ => code_line.push(c),
                },
                // Entered only via the `//` branch, which consumes the
                // rest of the line; cleared at the top of each line.
                State::LineComment => code_line.push(' '),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth > 1 {
                            State::BlockComment(depth - 1)
                        } else {
                            State::Code
                        };
                        code_line.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code_line.push_str("  ");
                        i += 2;
                        continue;
                    }
                    comment_line.push(c);
                    code_line.push(' ');
                }
                State::Str => match c {
                    '\\' => {
                        code_line.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Code;
                        code_line.push('"');
                    }
                    _ => code_line.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = State::Code;
                        code_line.push('"');
                        for _ in 0..hashes {
                            code_line.push(' ');
                        }
                        i += 1 + usize_of(hashes);
                        continue;
                    }
                    code_line.push(' ');
                }
                State::CharLit => match c {
                    '\\' => {
                        code_line.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        state = State::Code;
                        code_line.push('\'');
                    }
                    _ => code_line.push(' '),
                },
            }
            i += 1;
        }
        code.push(code_line);
        comments.push(comment_line);
    }

    let in_test = attribute_regions(&code, &["#[cfg(test)]", "#[test]"]);
    let in_serialize = serialize_regions(&code);
    let in_snapshot = snapshot_regions(&code);
    SourceMap {
        code,
        comments,
        in_test,
        in_serialize,
        in_snapshot,
    }
}

fn usize_of(n: u32) -> usize {
    n.try_into().unwrap_or(usize::MAX)
}

/// Does the blanked code built so far end in an identifier character
/// (so an `r` / `b` here is part of a name like `for` or `sub`, not a
/// raw-string prefix)?
fn prev_is_ident(code_line: &str) -> bool {
    code_line
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `chars` starts a raw/byte string prefix (`r"`, `r#"`, `br##"`,
/// `b"` …), return `(hash_count, chars_consumed_through_quote)`.
fn raw_string_prefix(chars: &[char]) -> Option<(u32, usize)> {
    let mut i = 0usize;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    // Plain `b"…"` is an ordinary (escaped) string: let the `Str`
    // state handle it so `\"` works.
    if !raw {
        return None;
    }
    Some((hashes, i + 1))
}

/// Does `rest` (starting at the char after a `"`) close a raw string
/// with `hashes` hashes?
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    let need = usize_of(hashes);
    rest.len() >= need && rest.iter().take(need).all(|&c| c == '#')
}

/// Is `chars[0] == '\''` the start of a char literal (vs a lifetime)?
fn is_char_literal(chars: &[char]) -> bool {
    match chars.get(1) {
        Some('\\') => true,
        Some(_) => chars.get(2) == Some(&'\''),
        None => false,
    }
}

/// Mark the lines belonging to items annotated with any of `needles`.
///
/// A marker arms on the attribute; the region spans from the next `{`
/// to its matching `}` (a `;` first — e.g. an annotated `use` or a
/// unit struct — just disarms).
fn attribute_regions(code: &[String], needles: &[&str]) -> Vec<bool> {
    marked_regions(code, |line| needles.iter().any(|n| line.contains(n)))
}

/// The brace scan behind [`attribute_regions`]: mark every line from
/// a `marker`-matching line through the matching `}` of the next `{`
/// (a `;` first just disarms, marking only the header lines).
fn marked_regions(code: &[String], marker: impl Fn(&str) -> bool) -> Vec<bool> {
    let mut out = vec![false; code.len()];
    let mut depth = 0i64;
    let mut armed = false;
    let mut region_floor: Option<i64> = None;
    for (ln, line) in code.iter().enumerate() {
        let open_at_line_start = region_floor.is_some();
        if region_floor.is_none() && marker(line) {
            armed = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed && region_floor.is_none() {
                        region_floor = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_floor == Some(depth) {
                        region_floor = None;
                    }
                }
                ';' if armed && region_floor.is_none() => {
                    armed = false;
                    // The annotated braceless item ends here; its
                    // lines up to this one were marked via `armed`.
                    out[ln] = true;
                }
                _ => {}
            }
        }
        if open_at_line_start || region_floor.is_some() || armed {
            out[ln] = true;
        }
    }
    out
}

/// Lines inside the body of a `#[derive(.. Serialize ..)]` item.
/// The derive attribute and the item header line are included, so a
/// single-line `struct S { map: HashMap<K, V> }` is still caught.
fn serialize_regions(code: &[String]) -> Vec<bool> {
    // A derive attribute may wrap across lines; join each attribute
    // with its successors until the closing `)]` before testing.
    let mut flags = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        let start = code[i].find("#[derive(");
        if let Some(col) = start {
            let mut attr = String::new();
            let mut j = i;
            let mut rest = &code[j][col..];
            loop {
                attr.push_str(rest);
                if attr.contains(")]") {
                    break;
                }
                j += 1;
                if j >= code.len() {
                    break;
                }
                rest = &code[j];
            }
            if has_token(&attr, "Serialize") {
                flags[i] = true;
            }
        }
        i += 1;
    }
    // Expand each flagged derive to cover its item body.
    let marker = "#[derive(";
    let mut shadow: Vec<String> = code.to_vec();
    for (ln, f) in flags.iter().enumerate() {
        if !*f {
            // Hide non-Serialize derives from the region scan.
            if let Some(col) = shadow[ln].find(marker) {
                let blanked: String = shadow[ln]
                    .chars()
                    .enumerate()
                    .map(|(k, c)| if k >= col { ' ' } else { c })
                    .collect();
                shadow[ln] = blanked;
            }
        }
    }
    attribute_regions(&shadow, &[marker])
}

/// Lines inside the body of a `struct`/`enum` whose name appears as
/// the target of an `impl … Snapshot for <Name>` in this file.
///
/// Snapshot bytes are as order-sensitive as serde bytes, so the
/// unordered-collection rule extends to these types. Name collection
/// is line-local and tokenized: `impl<T: Codec> Snapshot for
/// EventQueue<T>` and `impl digg_snapshot::Snapshot for Sim` both
/// yield the identifier after `for`.
fn snapshot_regions(code: &[String]) -> Vec<bool> {
    let mut names: Vec<String> = Vec::new();
    for line in code {
        let toks = ident_tokens(line);
        if !toks.contains(&"impl") {
            continue;
        }
        for w in toks.windows(3) {
            if w[0] == "Snapshot" && w[1] == "for" {
                names.push(w[2].to_string());
            }
        }
    }
    if names.is_empty() {
        return vec![false; code.len()];
    }
    marked_regions(code, |line| {
        ident_tokens(line)
            .windows(2)
            .any(|w| (w[0] == "struct" || w[0] == "enum") && names.iter().any(|n| n == w[1]))
    })
}

/// Split a blanked code line into identifier tokens.
fn ident_tokens(line: &str) -> Vec<&str> {
    line.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect()
}

/// Word-boundary token containment: `needle` appears in `haystack` as
/// a maximal identifier token.
pub fn has_token(haystack: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before = haystack[..at].chars().next_back();
        let after = haystack[at + needle.len()..].chars().next();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(before) && boundary(after) {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let m = lex("let x = \"thread_rng\"; // uses thread_rng\nlet y = 1;");
        assert!(!m.code[0].contains("thread_rng"));
        assert!(m.comments[0].contains("uses thread_rng"));
        assert_eq!(m.code[1], "let y = 1;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let m = lex("/* outer /* inner */ still */ code()\nafter();");
        assert!(!m.code[0].contains("outer"));
        assert!(m.code[0].contains("code()"));
        assert_eq!(m.code[1], "after();");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = lex("let s = r#\"panic!(\"x\")\"#; call();");
        assert!(!m.code[0].contains("panic!"));
        assert!(m.code[0].contains("call();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = lex("fn f<'a>(x: &'a str) { let c = '}'; let q = '\\''; }");
        // The brace inside the char literal must not end the region scan.
        assert!(!m.code[0].contains('}') || m.code[0].matches('}').count() == 1);
        assert!(m.code[0].contains("'a str"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let m = lex(src);
        assert_eq!(m.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn serialize_derive_region() {
        let src = "#[derive(Debug, Serialize)]\nstruct S {\n    m: HashMap<u32, u32>,\n}\nstruct T {\n    m: HashMap<u32, u32>,\n}";
        let m = lex(src);
        assert!(m.in_serialize[2]);
        assert!(!m.in_serialize[5]);
    }

    #[test]
    fn non_serialize_derive_is_not_marked() {
        let src = "#[derive(Debug, Clone)]\nstruct S {\n    m: HashMap<u32, u32>,\n}";
        let m = lex(src);
        assert!(!m.in_serialize[2]);
    }

    #[test]
    fn snapshot_impl_marks_struct_body() {
        let src = "pub struct Q<T> {\n    m: HashMap<u64, T>,\n}\nimpl<T: Codec> Snapshot for Q<T> {\n    fn snapshot(&self) -> Vec<u8> { Vec::new() }\n}\nstruct Other {\n    m: HashMap<u32, u32>,\n}";
        let m = lex(src);
        assert!(m.in_snapshot[1], "field of the Snapshot type is marked");
        assert!(!m.in_snapshot[7], "unrelated struct is not marked");
    }

    #[test]
    fn path_qualified_snapshot_impl_is_detected() {
        let src = "struct Sim {\n    s: HashSet<u32>,\n}\nimpl digg_snapshot::Snapshot for Sim {}";
        let m = lex(src);
        assert!(m.in_snapshot[1]);
    }

    #[test]
    fn snapshot_name_needs_token_boundary() {
        // `SimExt` must not be confused with a Snapshot impl on `Sim`.
        let src = "struct SimExt {\n    s: HashSet<u32>,\n}\nimpl Snapshot for Sim {}";
        let m = lex(src);
        assert!(!m.in_snapshot[1]);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("use rand::random;", "random"));
        assert!(!has_token("random_range(0..3)", "random"));
        assert!(!has_token("thread_rngx", "thread_rng"));
    }
}
