//! `unordered-taint`: `HashMap`/`HashSet` iteration whose results can
//! flow — through the intra-crate call graph — into a serialization
//! or artifact-write sink.
//!
//! The per-file `no-unordered-serialize` rule catches hash *fields*
//! declared on serialized types; this analysis catches the other half
//! of the bug class: a function that *iterates* a hash container in
//! nondeterministic order while being reachable from a `snapshot()`/
//! `encode()`/file-writing function. An iteration site is benign
//! ("rescued") when the same line reduces it order-independently
//! (`.count()`, `.any(..)`, `.min(..)`, a `BTreeMap` collect …) or a
//! later line of the same body sorts the collected result — the
//! `pairs.sort_unstable()` idiom every legitimate site in this
//! workspace uses.

use crate::analysis::resolvable;
use crate::model::WorkspaceModel;
use crate::rules::{Violation, UNORDERED_TAINT};
use std::collections::BTreeSet;

/// `x.<marker>` patterns that enumerate a container in hash order.
const ITER_MARKERS: [&str; 6] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
];

/// Same-line reductions that make enumeration order unobservable.
const LINE_RESCUES: [&str; 7] = [
    ".count()", ".any(", ".all(", ".min(", ".max(", "BTreeMap", "BTreeSet",
];

/// Function-name / body markers of serialization and artifact sinks.
const SINK_FN_NAMES: [&str; 3] = ["snapshot", "encode", "serialize"];
const SINK_BODY_TOKENS: [&str; 7] = [
    "serde_json::to_",
    "write_atomic",
    "File::create",
    ".write_all(",
    "BufWriter",
    "to_writer",
    "writeln!",
];

/// Does `code` iterate a container named `name` (with a token boundary
/// before the name)?
fn iterates(code: &str, name: &str) -> bool {
    for marker in ITER_MARKERS {
        let pat = format!("{name}{marker}");
        let mut start = 0usize;
        while let Some(pos) = code[start..].find(&pat) {
            let at = start + pos;
            let before = code[..at].chars().next_back();
            if !before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                return true;
            }
            start = at + pat.len();
        }
    }
    // `for … in [&[mut]] [self.]name {`
    if let Some(pos) = find_token(code, "for") {
        if let Some(inpos) = find_token(&code[pos..], "in") {
            let operand = &code[pos + inpos + 2..];
            let operand = operand.trim_start_matches([' ', '&']);
            let operand = operand.strip_prefix("mut ").unwrap_or(operand);
            let operand = operand.strip_prefix("self.").unwrap_or(operand);
            let head: String = operand
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if head == name {
                return true;
            }
        }
    }
    false
}

/// Byte offset of `needle` as a maximal token, if present.
fn find_token(code: &str, needle: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        let after = code[at + needle.len()..].chars().next();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(before) && boundary(after) {
            return Some(at);
        }
        start = at + needle.len();
    }
    None
}

pub fn run(model: &WorkspaceModel) -> Vec<(usize, Violation)> {
    let mut out: Vec<(usize, Violation)> = Vec::new();
    // Process crate by crate: seeds, sinks, and reachability are all
    // intra-crate.
    for ci in 0..model.crates.len() {
        let crate_files = model.crate_files(ci);
        if crate_files.is_empty() {
            continue;
        }
        // Hash-typed struct fields anywhere in the crate.
        let mut field_names: BTreeSet<&str> = BTreeSet::new();
        for &fi in &crate_files {
            for s in &model.files[fi].syms.structs {
                if s.in_test {
                    continue;
                }
                for f in &s.fields {
                    if f.is_hash {
                        field_names.insert(&f.name);
                    }
                }
            }
        }
        // Reachability from sinks through the call graph.
        let reachable = sink_reachable(model, &crate_files);
        for &fi in &crate_files {
            let file = &model.files[fi];
            for (j, f) in file.syms.fns.iter().enumerate() {
                if f.in_test || !reachable.contains(&(fi, j)) {
                    continue;
                }
                let Some((start, end)) = f.body else {
                    continue;
                };
                let mut names: BTreeSet<&str> = field_names.clone();
                for lh in &file.syms.local_hashes {
                    if lh.fn_idx == j {
                        names.insert(&lh.name);
                    }
                }
                if names.is_empty() {
                    continue;
                }
                let end = end.min(file.map.code.len().saturating_sub(1));
                for ln in start..=end {
                    if file.map.in_test.get(ln).copied().unwrap_or(false) {
                        continue;
                    }
                    let code = &file.map.code[ln];
                    let Some(name) = names.iter().find(|n| iterates(code, n)) else {
                        continue;
                    };
                    if LINE_RESCUES.iter().any(|r| code.contains(r)) {
                        continue;
                    }
                    let sorted_later = (ln + 1..=end)
                        .any(|l2| file.map.code.get(l2).is_some_and(|c| c.contains(".sort")));
                    if sorted_later {
                        continue;
                    }
                    let snippet = file
                        .raw
                        .get(ln)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default();
                    out.push((
                        fi,
                        Violation {
                            rule: UNORDERED_TAINT,
                            line: ln + 1,
                            snippet: format!(
                                "hash-order iteration of `{name}` reachable from a serialization/artifact sink — {snippet}"
                            ),
                        },
                    ));
                }
            }
        }
    }
    out.sort_by(|a, b| (a.0, a.1.line, a.1.rule).cmp(&(b.0, b.1.line, b.1.rule)));
    out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    out
}

/// All functions reachable from any sink function of the crate
/// (including the sinks themselves) through resolvable calls.
fn sink_reachable(model: &WorkspaceModel, crate_files: &[usize]) -> BTreeSet<(usize, usize)> {
    let mut frontier: Vec<(usize, usize)> = Vec::new();
    for &fi in crate_files {
        let file = &model.files[fi];
        for (j, f) in file.syms.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            let by_name = SINK_FN_NAMES.contains(&f.name.as_str())
                && f.trait_name
                    .as_deref()
                    .is_some_and(|t| ["Snapshot", "Codec", "Serialize", "Serializer"].contains(&t));
            let by_body = {
                let (start, end) = f.body.unwrap_or((0, 0));
                let end = end.min(file.map.code.len().saturating_sub(1));
                (start..=end).any(|ln| {
                    SINK_BODY_TOKENS
                        .iter()
                        .any(|t| file.map.code[ln].contains(t))
                })
            };
            if by_name || by_body {
                frontier.push((fi, j));
            }
        }
    }
    let mut reached: BTreeSet<(usize, usize)> = frontier.iter().copied().collect();
    while let Some((fi, j)) = frontier.pop() {
        let calls = model.files[fi].syms.fns[j].calls.clone();
        for callee in &calls {
            if !resolvable(callee) {
                continue;
            }
            for tgt in model.resolve_call(crate_files, fi, callee) {
                if reached.insert(tgt) {
                    frontier.push(tgt);
                }
            }
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Vec<Violation> {
        run(&WorkspaceModel::single("crates/x/src/lib.rs", src))
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    #[test]
    fn iteration_in_sink_fn_fires() {
        let src = "struct S {\n    m: HashMap<u32, u32>,\n}\nimpl Snapshot for S {\n    fn snapshot(&self, w: &mut W) {\n        for (k, v) in &self.m {\n            w.put(*k);\n        }\n    }\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, UNORDERED_TAINT);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn sorted_collect_is_rescued() {
        let src = "struct S {\n    m: HashMap<u32, u32>,\n}\nimpl Snapshot for S {\n    fn snapshot(&self, w: &mut W) {\n        let mut pairs: Vec<_> = self.m.iter().collect();\n        pairs.sort_unstable();\n        for (k, v) in pairs {\n            w.put(*k);\n        }\n    }\n}\n";
        assert!(run_src(src).is_empty());
    }

    #[test]
    fn count_on_same_line_is_rescued() {
        let src = "fn audit(seen: &HashSet<u32>) -> usize {\n    seen.iter().count()\n}\nfn sink(s: &HashSet<u32>) {\n    let f = File::create(\"out\");\n    let n = audit(s);\n}\n";
        assert!(run_src(src).is_empty());
    }

    #[test]
    fn taint_flows_through_the_call_graph() {
        let src = "fn leak(m: &HashMap<u32, u32>, out: &mut Vec<u32>) {\n    for v in m.values() {\n        out.push(*v);\n    }\n}\nstruct M {\n    m: HashMap<u32, u32>,\n}\nimpl Snapshot for M {\n    fn snapshot(&self, w: &mut W) {\n        let mut v = Vec::new();\n        leak(&self.m, &mut v);\n        w.put_all(&v);\n    }\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].snippet.contains("`m`"));
    }

    #[test]
    fn unreachable_iteration_is_not_flagged() {
        // No sink in this file: iteration order is unobservable.
        let src = "fn tally(m: &HashMap<u32, u32>) -> u64 {\n    let mut t = 0;\n    for v in m.values() {\n        t += u64::from(*v);\n    }\n    t\n}\n";
        assert!(run_src(src).is_empty());
    }

    #[test]
    fn local_hash_binding_is_seeded() {
        let src = "fn write_report(w: &mut W) {\n    let mut seen = HashSet::new();\n    seen.insert(1);\n    let f = File::create(\"x\");\n    for s in seen.iter() {\n        w.put(s);\n    }\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].snippet.contains("`seen`"));
    }

    #[test]
    fn keyed_lookup_is_not_iteration() {
        let src = "fn sink(m: &HashMap<u32, u32>) {\n    let f = File::create(\"x\");\n    let v = m.get(&3);\n    let n = m.len();\n}\n";
        assert!(run_src(src).is_empty());
    }
}
