//! `snapshot-coverage`: every named field of a type implementing
//! `Snapshot` (or `Restore`) must be referenced in that trait's impl
//! bodies — or carry a field-level allow pragma naming why it is
//! derived state.
//!
//! Coverage is **per side**: a field must appear in the snapshot-side
//! bodies *and*, separately, in the restore-side bodies. Union
//! coverage would be blind to the PR-7 `voter_pos` bug class — a
//! restore that rebuilds every field via a struct literal would mask
//! a deleted field *write* in `snapshot()`. Each side's token set is
//! widened by one level of same-file callees, so a `snapshot()` that
//! delegates to a same-file `encode()` (as `StreamRng` does) still
//! counts the fields `encode()` touches.

use crate::model::WorkspaceModel;
use crate::rules::{Violation, SNAPSHOT_COVERAGE};

/// Trait names whose impls constitute a coverage side.
const SIDES: [&str; 2] = ["Snapshot", "Restore"];

pub fn run(model: &WorkspaceModel) -> Vec<(usize, Violation)> {
    let mut out: Vec<(usize, Violation)> = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        for imp in &file.syms.impls {
            let Some(trait_name) = imp.trait_name.as_deref() else {
                continue;
            };
            if !SIDES.contains(&trait_name) {
                continue;
            }
            if file.map.in_test.get(imp.line).copied().unwrap_or(false) {
                continue;
            }
            // The impl's functions plus one level of same-file callees.
            let fns = file.syms.impl_fns(&imp.type_name, trait_name);
            if fns.is_empty() {
                continue;
            }
            let mut covered: Vec<&str> = Vec::new();
            for &j in &fns {
                let f = &file.syms.fns[j];
                covered.extend(f.body_tokens.iter().map(String::as_str));
                for callee in &f.calls {
                    for cf in file
                        .syms
                        .fns
                        .iter()
                        .filter(|c| c.name == *callee && c.body.is_some())
                    {
                        covered.extend(cf.body_tokens.iter().map(String::as_str));
                    }
                }
            }
            // Locate the struct: same file first, then same crate.
            let found = locate_struct(model, fi, &imp.type_name);
            let Some((sfi, si)) = found else {
                continue;
            };
            let sfile = &model.files[sfi];
            let sdef = &sfile.syms.structs[si];
            if sdef.in_test {
                continue;
            }
            for field in &sdef.fields {
                if covered.iter().any(|t| *t == field.name) {
                    continue;
                }
                let snippet = sfile
                    .raw
                    .get(field.line)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default();
                out.push((
                    sfi,
                    Violation {
                        rule: SNAPSHOT_COVERAGE,
                        line: field.line + 1,
                        snippet: format!(
                            "field `{}` not referenced by impl {trait_name} for {} — {snippet}",
                            field.name, imp.type_name
                        ),
                    },
                ));
            }
        }
    }
    out.sort_by(|a, b| (a.0, a.1.line, a.1.rule).cmp(&(b.0, b.1.line, b.1.rule)));
    out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    out
}

fn locate_struct(model: &WorkspaceModel, from_file: usize, name: &str) -> Option<(usize, usize)> {
    let local = model.files[from_file]
        .syms
        .structs
        .iter()
        .position(|s| s.name == name);
    if let Some(si) = local {
        return Some((from_file, si));
    }
    let crate_idx = model.files[from_file].crate_idx?;
    for fi in model.crate_files(crate_idx) {
        if let Some(si) = model.files[fi]
            .syms
            .structs
            .iter()
            .position(|s| s.name == name)
        {
            return Some((fi, si));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Vec<Violation> {
        run(&WorkspaceModel::single("crates/x/src/lib.rs", src))
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    const COVERED: &str = "struct S {\n    a: u64,\n    b: u64,\n}\nimpl Snapshot for S {\n    fn snapshot(&self, w: &mut W) {\n        w.put(self.a);\n        w.put(self.b);\n    }\n}\nimpl Restore for S {\n    fn restore(r: &mut R) -> S {\n        S { a: r.get(), b: r.get() }\n    }\n}\n";

    #[test]
    fn fully_covered_type_is_clean() {
        assert!(run_src(COVERED).is_empty());
    }

    #[test]
    fn missing_snapshot_write_fires_even_if_restore_covers() {
        // Per-side semantics: dropping the `b` write from snapshot()
        // fires although restore()'s struct literal names every field.
        let src = COVERED.replace("        w.put(self.b);\n", "");
        let v = run_src(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, SNAPSHOT_COVERAGE);
        assert!(v[0].snippet.contains("field `b`"));
        assert!(v[0].snippet.contains("impl Snapshot"));
    }

    #[test]
    fn missing_restore_read_fires_independently() {
        let src = COVERED.replace("S { a: r.get(), b: r.get() }", "S { a: r.get(), b: 0 }");
        // `b` still appears as a struct-literal key, so this stays
        // clean — coverage is token-level, not dataflow.
        assert!(run_src(&src).is_empty());
        let src = COVERED.replace("S { a: r.get(), b: r.get() }", "S::from_a(r.get())");
        let v = run_src(&src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == SNAPSHOT_COVERAGE));
    }

    #[test]
    fn same_file_callee_counts_as_coverage() {
        let src = "struct R {\n    key: u64,\n    counter: u64,\n}\nimpl R {\n    fn encode(&self, w: &mut W) {\n        w.put(self.key);\n        w.put(self.counter);\n    }\n}\nimpl Snapshot for R {\n    fn snapshot(&self, w: &mut W) {\n        self.encode(w);\n    }\n}\n";
        assert!(run_src(src).is_empty());
    }

    #[test]
    fn generic_impl_and_multiline_header() {
        let src = "struct Q<T> {\n    heap: Vec<T>,\n    seq: u64,\n}\nimpl<T: Codec> Snapshot\n    for Q<T>\n{\n    fn snapshot(&self, w: &mut W) {\n        w.put(self.seq);\n    }\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].snippet.contains("field `heap`"));
    }

    #[test]
    fn test_region_types_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    struct S {\n        a: u64,\n    }\n    impl Snapshot for S {\n        fn snapshot(&self) {}\n    }\n}\n";
        assert!(run_src(src).is_empty());
    }
}
