//! The workspace-level analysis families (DESIGN.md §18).
//!
//! Each analysis runs over the [`WorkspaceModel`] and yields
//! violations keyed by file index; [`crate::lint_workspace`] merges
//! them into the per-file reports before pragma filtering, so the
//! same `// digg-lint: allow(...)` ledger governs them. The
//! single-file entry point [`file_local`] runs the three source-level
//! families over a one-file model so fixtures and unit tests exercise
//! identical code paths; the manifest-level boundary check is
//! workspace-only by nature.

pub mod boundary;
pub mod hotpath;
pub mod snapshot;
pub mod taint;

use crate::model::WorkspaceModel;
use crate::rules::Violation;

/// Method names so common that resolving them by bare name across a
/// crate would connect unrelated types (`Vec::push` vs a slab's
/// `push`). The call-graph analyses skip them: direct allocation and
/// iteration patterns are caught textually at the call site instead.
pub const COMMON_METHODS: [&str; 20] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clone",
    "collect",
    "extend",
    "contains",
    "new",
    "with_capacity",
    "iter",
    "drain",
    "clear",
    "entry",
    "next",
    "default",
];

/// Is `callee` worth resolving through the call graph?
pub fn resolvable(callee: &str) -> bool {
    !COMMON_METHODS.contains(&callee)
}

/// Run the source-level analyses over every file of a model.
pub fn run_all(model: &WorkspaceModel) -> Vec<(usize, Violation)> {
    let mut out = snapshot::run(model);
    out.extend(hotpath::run(model));
    out.extend(taint::run(model));
    out
}

/// Single-file mode: lint `src` as one anonymous kernel crate.
pub fn file_local(rel: &str, src: &str) -> Vec<Violation> {
    let model = WorkspaceModel::single(rel, src);
    run_all(&model).into_iter().map(|(_, v)| v).collect()
}
