//! `hot-path-alloc`: functions marked `// digg-lint: hot-path` (and
//! every function of a file with a module-level marker) must not heap
//! allocate — directly or within one call level of same-crate callees.
//!
//! The per-vote kernels (`apply_vote`, the `membership`/`bitset`
//! probes, `EventQueue::pop`) run hundreds of millions of times per
//! sweep; a stray `format!` or `Vec` growth there is a real
//! regression the benches only catch after the fact. Callee findings
//! are reported at the allocation line inside the callee (that is
//! where the fix or the pragma belongs); call-graph resolution is the
//! conservative same-file-first scheme of
//! [`WorkspaceModel::resolve_call`], and bare container method names
//! are never resolved ([`crate::analysis::COMMON_METHODS`]) — the
//! allocation tokens below catch those textually at the call site.

use crate::analysis::resolvable;
use crate::model::WorkspaceModel;
use crate::rules::{Violation, HOT_PATH_ALLOC, MALFORMED_PRAGMA};

/// Textual allocation markers (matched against blanked code).
const ALLOC_TOKENS: [&str; 14] = [
    "Vec::new",
    "vec!",
    "with_capacity",
    ".to_vec(",
    ".clone(",
    "format!",
    "Box::new",
    "String::new",
    "String::from",
    ".to_string(",
    ".to_owned(",
    ".collect(",
    ".push(",
    ".extend(",
];

fn alloc_token(code: &str) -> Option<&'static str> {
    ALLOC_TOKENS.iter().find(|t| code.contains(*t)).copied()
}

pub fn run(model: &WorkspaceModel) -> Vec<(usize, Violation)> {
    let mut out: Vec<(usize, Violation)> = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        // A hot-path marker that binds to nothing is an error, like an
        // unused allow: markers must not rot.
        for &mln in &file.syms.dangling_hot_path {
            out.push((
                fi,
                Violation {
                    rule: MALFORMED_PRAGMA,
                    line: mln + 1,
                    snippet: file
                        .raw
                        .get(mln)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                },
            ));
        }
        let crate_files = file
            .crate_idx
            .map(|ci| model.crate_files(ci))
            .unwrap_or_default();
        for f in &file.syms.fns {
            if !f.hot_path || f.in_test {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            scan_body(model, fi, start, end, &mut out);
            for callee in &f.calls {
                if !resolvable(callee) {
                    continue;
                }
                for (cfi, cj) in model.resolve_call(&crate_files, fi, callee) {
                    let cf = &model.files[cfi].syms.fns[cj];
                    // A hot callee is scanned on its own; an in-test
                    // callee cannot be on the hot path.
                    if cf.hot_path || cf.in_test {
                        continue;
                    }
                    if let Some((cs, ce)) = cf.body {
                        scan_body(model, cfi, cs, ce, &mut out);
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| (a.0, a.1.line, a.1.rule).cmp(&(b.0, b.1.line, b.1.rule)));
    out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    out
}

fn scan_body(
    model: &WorkspaceModel,
    fi: usize,
    start: usize,
    end: usize,
    out: &mut Vec<(usize, Violation)>,
) {
    let file = &model.files[fi];
    for ln in start..=end.min(file.map.code.len().saturating_sub(1)) {
        if file.map.in_test.get(ln).copied().unwrap_or(false) {
            continue;
        }
        if let Some(tok) = alloc_token(&file.map.code[ln]) {
            let snippet = file
                .raw
                .get(ln)
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            out.push((
                fi,
                Violation {
                    rule: HOT_PATH_ALLOC,
                    line: ln + 1,
                    snippet: format!("`{tok}` on a hot path — {snippet}"),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Vec<Violation> {
        run(&WorkspaceModel::single("crates/x/src/lib.rs", src))
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    #[test]
    fn unmarked_fns_may_allocate() {
        assert!(run_src("fn f() {\n    let v = Vec::new();\n    v.push(1);\n}\n").is_empty());
    }

    #[test]
    fn marked_fn_rejects_direct_allocation() {
        let v =
            run_src("// digg-lint: hot-path\nfn f(out: &mut Vec<u32>) {\n    out.push(1);\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, HOT_PATH_ALLOC);
        assert!(v[0].snippet.contains(".push("));
    }

    #[test]
    fn allocation_one_call_level_down_fires_at_callee() {
        let src = "// digg-lint: hot-path\nfn hot(&mut self) {\n    self.release(3);\n}\nfn release(&mut self, s: u32) {\n    self.free.push(s);\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6, "reported at the allocation inside the callee");
    }

    #[test]
    fn two_levels_down_is_out_of_scope() {
        let src = "// digg-lint: hot-path\nfn hot(&mut self) {\n    self.mid();\n}\nfn mid(&mut self) {\n    self.deep();\n}\nfn deep(&mut self) {\n    self.v.push(1);\n}\n";
        assert!(run_src(src).is_empty());
    }

    #[test]
    fn file_level_marker_covers_all_fns_but_not_tests() {
        let src = "// digg-lint: hot-path\n\nfn a(x: u64) -> u64 {\n    x + 1\n}\nfn b(v: &mut Vec<u64>) {\n    v.push(1);\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let v = vec![1];\n    }\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn dangling_marker_is_malformed() {
        let src = "fn a() {}\n// digg-lint: hot-path\nstruct S {\n    x: u32,\n}\n";
        let v = run_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, MALFORMED_PRAGMA);
    }
}
