//! `kernel-dep-shell`: the manifest half of the determinism boundary.
//!
//! `lint-boundary.toml` partitions the workspace into kernel crates
//! (bit-replayable — the in-source rules stay strict there) and shell
//! crates (harness/driver layer — wall clock, ambient RNG, async, and
//! CLI panics are theirs to own). The partition is only sound if the
//! kernel cannot *reach* the shell: a kernel crate listing a shell
//! crate in `[dependencies]` would let nondeterminism back in through
//! the build graph, so that edge is an error reported against the
//! offending `Cargo.toml` line. Dev-dependencies are exempt — tests
//! may drive the kernel with shell tooling without shipping it.
//!
//! There is deliberately no pragma escape here: moving a crate across
//! the boundary is a `lint-boundary.toml` edit reviewed as such, not
//! an inline exemption.

use crate::model::CrateInfo;
use crate::rules::{Violation, KERNEL_DEP_SHELL};

/// Check every kernel crate's `[dependencies]` against the shell
/// list. Returns violations keyed by manifest path.
pub fn run(crates: &[CrateInfo], shell: &[String]) -> Vec<(String, Violation)> {
    let is_shell = |name: &str| shell.iter().any(|s| s == name);
    let mut out = Vec::new();
    for c in crates {
        if is_shell(&c.name) {
            continue;
        }
        for (dep, line) in &c.deps {
            if is_shell(dep) {
                out.push((
                    c.manifest_rel.clone(),
                    Violation {
                        rule: KERNEL_DEP_SHELL,
                        line: *line,
                        snippet: format!(
                            "kernel crate `{}` depends on shell crate `{dep}`",
                            c.name
                        ),
                    },
                ));
            }
        }
    }
    out.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn krate(name: &str, deps: &[(&str, usize)]) -> CrateInfo {
        CrateInfo {
            name: name.to_string(),
            manifest_rel: format!("crates/{name}/Cargo.toml"),
            dir_prefix: format!("crates/{name}/"),
            deps: deps.iter().map(|(d, l)| (d.to_string(), *l)).collect(),
        }
    }

    #[test]
    fn kernel_to_shell_edge_fires() {
        let crates = vec![
            krate("kern", &[("shelly", 7), ("other-kern", 8)]),
            krate("other-kern", &[]),
            krate("shelly", &[("kern", 5)]),
        ];
        let shell = vec!["shelly".to_string()];
        let v = run(&crates, &shell);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, "crates/kern/Cargo.toml");
        assert_eq!(v[0].1.rule, KERNEL_DEP_SHELL);
        assert_eq!(v[0].1.line, 7);
    }

    #[test]
    fn shell_may_depend_on_kernel_and_shell() {
        let crates = vec![krate("shelly", &[("kern", 3), ("shelly2", 4)])];
        let shell = vec!["shelly".to_string(), "shelly2".to_string()];
        assert!(run(&crates, &shell).is_empty());
    }
}
