//! `digg-lint` — the workspace determinism-and-robustness linter.
//!
//! Every result this reproduction ships rests on an unwritten
//! contract: all randomness flows through `des_core::StreamRng`,
//! payloads are bit-identical at any `DIGG_THREADS`, artifacts never
//! depend on wall-clock or hash-iteration order, and library code
//! reports failures as typed errors instead of panicking. This crate
//! makes that contract *written and enforced*: a self-contained
//! static-analysis pass (own comment/string-aware lexer, item parser
//! and workspace symbol graph, zero dependencies) that CI runs on
//! every push.
//!
//! Two layers of rules — see [`rules`] for the ids, DESIGN.md §13 for
//! the per-line invariants and §18 for the workspace analyses:
//!
//! | rule | guards |
//! |------|--------|
//! | `no-wallclock` | artifacts independent of real time |
//! | `no-ambient-rng` | all randomness keyed by `(seed, stream)` |
//! | `no-lib-unwrap` | library failures are typed, not panics |
//! | `no-unordered-serialize` | serialized bytes independent of hash order |
//! | `no-truncating-cast` | ids/counts never silently truncated |
//! | `raw-thread-fanout` | all fan-out through `des_core::par` |
//! | `no-unchecked-mmap` | `unsafe` confined to the one audited mmap module |
//! | `snapshot-coverage` | every field of a Snapshot/Restore type round-trips |
//! | `no-async-kernel` | the replay kernel is synchronous |
//! | `kernel-dep-shell` | kernel crates cannot depend on shell crates |
//! | `hot-path-alloc` | the per-vote kernels stay allocation-free |
//! | `unordered-taint` | no hash-order data reaches a serialization sink |
//!
//! The kernel/shell crate partition and the file-level carve-outs
//! live in `lint-boundary.toml` at the workspace root ([`manifest`]).
//! Inline suppression is only possible via
//!
//! ```text
//! // digg-lint: allow(no-lib-unwrap) — reason the invariant holds
//! ```
//!
//! and an allow that suppresses nothing is itself an error, so the
//! exemption ledger can only shrink — enforced in CI by the baseline
//! gate (`--baseline results/lint_baseline.json`). Run with
//! `cargo run -p digg-lint -- --workspace` (add `--json` for the
//! machine-readable report).

pub mod analysis;
pub mod baseline;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod walk;

use model::WorkspaceModel;
use rules::{Scope, Violation};
use std::collections::BTreeMap;
use std::path::Path;

/// Linter configuration. In workspace mode this is loaded from
/// `lint-boundary.toml` when present; the defaults keep the historic
/// allowlists for single-file and unit-test use. Paths are
/// workspace-relative suffix matches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes of shell crates (harness/driver layer): wall
    /// clock, ambient RNG, async, and CLI panics are legal there.
    pub shell_paths: Vec<String>,
    /// Kernel files allowed to read the wall clock.
    pub wallclock_allow: Vec<String>,
    /// Modules allowed raw `std::thread` fan-out (the deterministic
    /// primitives themselves).
    pub fanout_allow: Vec<String>,
    /// Modules allowed `unsafe` / `from_raw_parts` — exactly the one
    /// audited mmap module; everything else is safe Rust by decree.
    pub mmap_allow: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            shell_paths: Vec::new(),
            wallclock_allow: vec!["crates/bench/src/timing.rs".to_string()],
            fanout_allow: vec!["crates/des-core/src/par.rs".to_string()],
            mmap_allow: vec!["crates/social-graph/src/mmap.rs".to_string()],
        }
    }
}

impl Config {
    fn scope_for(&self, rel: &str) -> Scope {
        Scope {
            kind: walk::classify(rel),
            shell: self
                .shell_paths
                .iter()
                .any(|p| !p.is_empty() && rel.starts_with(p)),
            wallclock_exempt: self.wallclock_allow.iter().any(|p| rel.ends_with(p)),
            fanout_exempt: self.fanout_allow.iter().any(|p| rel.ends_with(p)),
            mmap_exempt: self.mmap_allow.iter().any(|p| rel.ends_with(p)),
        }
    }

    /// Resolve the effective workspace config from `lint-boundary.toml`
    /// (replacing the default allowlists entirely) and return the
    /// shell crate names. Every workspace crate must be assigned to
    /// exactly one side — a new crate cannot land unpartitioned.
    fn from_boundary(
        boundary: &manifest::BoundaryFile,
        crates: &[model::CrateInfo],
    ) -> Result<(Config, Vec<String>), String> {
        for name in boundary.kernel.iter().chain(boundary.shell.iter()) {
            if !crates.iter().any(|c| c.name == *name) {
                return Err(format!("lint-boundary.toml names unknown crate `{name}`"));
            }
        }
        for c in crates {
            let in_kernel = boundary.kernel.iter().any(|n| n == &c.name);
            let in_shell = boundary.shell.iter().any(|n| n == &c.name);
            match (in_kernel, in_shell) {
                (true, true) => {
                    return Err(format!(
                        "lint-boundary.toml lists crate `{}` as both kernel and shell",
                        c.name
                    ))
                }
                (false, false) => {
                    return Err(format!(
                        "lint-boundary.toml does not partition crate `{}` (add it to \
                         [crates] kernel or shell)",
                        c.name
                    ))
                }
                _ => {}
            }
        }
        let shell_paths = crates
            .iter()
            .filter(|c| boundary.shell.iter().any(|n| n == &c.name))
            .map(|c| c.dir_prefix.clone())
            .collect();
        Ok((
            Config {
                shell_paths,
                wallclock_allow: boundary.wallclock.clone(),
                fanout_allow: boundary.fanout.clone(),
                mmap_allow: boundary.unsafe_mmap.clone(),
            },
            boundary.shell.clone(),
        ))
    }
}

/// Lint result for one file.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Surviving violations (pragmas already applied), in line order.
    pub violations: Vec<Violation>,
    /// Allow pragmas that suppressed at least one violation.
    pub allows_honoured: usize,
    /// Rule id of every violation a pragma suppressed.
    pub suppressed_rules: Vec<&'static str>,
}

/// Lint one file's source text (the unit the fixture tests drive).
/// Runs the per-line rules plus the source-level workspace analyses
/// over a single-file model, so fixtures exercise the same code paths
/// as `--workspace`.
pub fn lint_source(rel_path: &str, src: &str, config: &Config) -> FileReport {
    let map = lexer::lex(src);
    let raw: Vec<&str> = src.split('\n').collect();
    let scope = config.scope_for(rel_path);
    let mut raw_violations = rules::check(&map, scope, &raw);
    raw_violations.extend(analysis::file_local(rel_path, src));
    raw_violations.sort_by_key(|v| v.line);
    finish_file(rel_path, &map, &raw, raw_violations)
}

/// Shared tail of per-file linting: pragma parse/apply and counting.
fn finish_file(
    rel_path: &str,
    map: &lexer::SourceMap,
    raw: &[&str],
    raw_violations: Vec<Violation>,
) -> FileReport {
    let (allows, mut malformed) = pragma::parse(map, raw);
    let (mut violations, suppressed_rules) =
        pragma::apply_counted(map, raw, raw_violations, &allows);
    let unused = violations
        .iter()
        .filter(|v| v.rule == rules::UNUSED_ALLOW)
        .count();
    violations.append(&mut malformed);
    violations.sort_by_key(|v| v.line);
    FileReport {
        path: rel_path.to_string(),
        violations,
        allows_honoured: allows.len().saturating_sub(unused),
        suppressed_rules,
    }
}

/// Outcome of a workspace lint.
#[derive(Debug, Clone)]
pub struct WorkspaceReport {
    /// Per-file reports that contain at least one violation.
    pub dirty: Vec<FileReport>,
    /// Total files scanned.
    pub files_scanned: usize,
    /// Total allow pragmas honoured across the tree.
    pub allows_honoured: usize,
    /// Suppressed-violation count per rule id (the per-rule ledger
    /// the baseline gate keeps shrink-only).
    pub suppressed_by_rule: BTreeMap<String, usize>,
}

impl WorkspaceReport {
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    pub fn violation_count(&self) -> usize {
        self.dirty.iter().map(|f| f.violations.len()).sum()
    }
}

/// Lint every workspace source under `root`: per-line rules, the
/// workspace symbol-graph analyses, and the manifest-level boundary
/// check, all merged before pragma filtering.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<WorkspaceReport> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);

    // Crate discovery + effective boundary config.
    let crates = model::discover_crates(root)?;
    let boundary_path = root.join("lint-boundary.toml");
    let (config, shell_names) = match std::fs::read_to_string(&boundary_path) {
        Ok(text) => {
            let b = manifest::parse_boundary(&text)
                .map_err(|e| invalid(format!("lint-boundary.toml: {e}")))?;
            Config::from_boundary(&b, &crates).map_err(invalid)?
        }
        Err(_) => (config.clone(), Vec::new()),
    };

    // Build the workspace model.
    let rels = walk::workspace_files(root)?;
    let files_scanned = rels.len();
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(rel))?;
        let map = lexer::lex(&src);
        let syms = symbols::parse(&map);
        files.push(model::FileEntry {
            crate_idx: WorkspaceModel::crate_for(&crates, &rel_str),
            rel: rel_str,
            map,
            raw: src.split('\n').map(str::to_string).collect(),
            syms,
        });
    }
    let ws = WorkspaceModel { crates, files };

    // Workspace analyses, grouped per file.
    let mut extra: BTreeMap<usize, Vec<Violation>> = BTreeMap::new();
    for (fi, v) in analysis::run_all(&ws) {
        extra.entry(fi).or_default().push(v);
    }

    // Per-file merge + pragma filtering.
    let mut dirty = Vec::new();
    let mut allows = 0usize;
    let mut suppressed_by_rule: BTreeMap<String, usize> = BTreeMap::new();
    for (fi, entry) in ws.files.iter().enumerate() {
        let mut scope = config.scope_for(&entry.rel);
        if let Some(ci) = entry.crate_idx {
            scope.shell = shell_names.iter().any(|n| n == &ws.crates[ci].name);
        }
        let raw: Vec<&str> = entry.raw.iter().map(String::as_str).collect();
        let mut raw_violations = rules::check(&entry.map, scope, &raw);
        if let Some(mut v) = extra.remove(&fi) {
            raw_violations.append(&mut v);
        }
        raw_violations.sort_by_key(|v| v.line);
        let fr = finish_file(&entry.rel, &entry.map, &raw, raw_violations);
        allows += fr.allows_honoured;
        for r in &fr.suppressed_rules {
            *suppressed_by_rule.entry((*r).to_string()).or_insert(0) += 1;
        }
        if !fr.violations.is_empty() {
            dirty.push(fr);
        }
    }

    // Manifest-level boundary violations (no pragma path: boundary
    // moves are lint-boundary.toml edits).
    let mut by_manifest: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for (manifest_rel, v) in analysis::boundary::run(&ws.crates, &shell_names) {
        by_manifest.entry(manifest_rel).or_default().push(v);
    }
    for (path, violations) in by_manifest {
        dirty.push(FileReport {
            path,
            violations,
            allows_honoured: 0,
            suppressed_rules: Vec::new(),
        });
    }
    dirty.sort_by(|a, b| a.path.cmp(&b.path));

    Ok(WorkspaceReport {
        dirty,
        files_scanned,
        allows_honoured: allows,
        suppressed_by_rule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_is_clean() {
        let fr = lint_source(
            "crates/x/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
            &Config::default(),
        );
        assert!(fr.violations.is_empty());
    }

    #[test]
    fn timing_module_is_wallclock_exempt_by_default() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }";
        let fr = lint_source("crates/bench/src/timing.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/bench/src/lib.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn des_core_par_is_fanout_exempt_by_default() {
        let src = "pub fn f() { std::thread::scope(|_s| {}); }";
        let fr = lint_source("crates/des-core/src/par.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/core/src/story_metrics.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn mmap_module_is_unsafe_exempt_by_default() {
        let src = "pub fn f(p: *const u8) { let _ = unsafe { *p }; }";
        let fr = lint_source("crates/social-graph/src/mmap.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/social-graph/src/graph.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_UNCHECKED_MMAP);
    }

    #[test]
    fn allows_honoured_are_counted() {
        let src = "fn f() { x.unwrap(); } // digg-lint: allow(no-lib-unwrap) — fixture\n";
        let fr = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        assert_eq!(fr.allows_honoured, 1);
        assert_eq!(fr.suppressed_rules, vec![rules::NO_LIB_UNWRAP]);
    }

    #[test]
    fn shell_paths_waive_harness_rules() {
        let config = Config {
            shell_paths: vec!["crates/bench/".to_string()],
            ..Config::default()
        };
        let src = "pub fn t() { let _ = std::time::Instant::now(); }";
        let fr = lint_source("crates/bench/src/chaos.rs", src, &config);
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        let fr = lint_source("crates/core/src/pipeline.rs", src, &config);
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn snapshot_coverage_runs_in_single_file_mode() {
        let src = "struct S {\n    a: u64,\n    b: u64,\n}\nimpl Snapshot for S {\n    fn snapshot(&self, w: &mut W) {\n        w.put(self.a);\n    }\n}\n";
        let fr = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1, "{:?}", fr.violations);
        assert_eq!(fr.violations[0].rule, rules::SNAPSHOT_COVERAGE);
        // A field-level pragma on the uncovered field suppresses it.
        let with_pragma = src.replace(
            "    b: u64,",
            "    // digg-lint: allow(snapshot-coverage) — derived, rebuilt on restore\n    b: u64,",
        );
        let fr = lint_source("crates/x/src/lib.rs", &with_pragma, &Config::default());
        assert!(fr.violations.is_empty(), "{:?}", fr.violations);
        assert_eq!(fr.allows_honoured, 1);
    }
}
