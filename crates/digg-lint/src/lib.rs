//! `digg-lint` — the workspace determinism-and-robustness linter.
//!
//! Every result this reproduction ships rests on an unwritten
//! contract: all randomness flows through `des_core::StreamRng`,
//! payloads are bit-identical at any `DIGG_THREADS`, artifacts never
//! depend on wall-clock or hash-iteration order, and library code
//! reports failures as typed errors instead of panicking. This crate
//! makes that contract *written and enforced*: a self-contained
//! static-analysis pass (own comment/string-aware lexer, line-level
//! rule engine, zero dependencies) that CI runs on every push.
//!
//! The rules — see [`rules`] for the ids and DESIGN.md §13 for the
//! invariant each one guards:
//!
//! | rule | guards |
//! |------|--------|
//! | `no-wallclock` | artifacts independent of real time |
//! | `no-ambient-rng` | all randomness keyed by `(seed, stream)` |
//! | `no-lib-unwrap` | library failures are typed, not panics |
//! | `no-unordered-serialize` | serialized bytes independent of hash order |
//! | `no-truncating-cast` | ids/counts never silently truncated |
//! | `raw-thread-fanout` | all fan-out through `des_core::par` |
//! | `no-unchecked-mmap` | `unsafe` confined to the one audited mmap module |
//!
//! Suppression is only possible inline:
//!
//! ```text
//! // digg-lint: allow(no-lib-unwrap) — reason the invariant holds
//! ```
//!
//! and an allow that suppresses nothing is itself an error, so the
//! exemption ledger can only shrink. Run with
//! `cargo run -p digg-lint -- --workspace` (add `--json` for the
//! machine-readable report).

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod walk;

use rules::{Scope, Violation};
use std::path::Path;

/// Linter configuration: the explicit allowlists the rule definitions
/// reference. Paths are workspace-relative suffix matches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Modules allowed to read the wall clock (bench timing only).
    pub wallclock_allow: Vec<String>,
    /// Modules allowed raw `std::thread` fan-out (the deterministic
    /// primitives themselves).
    pub fanout_allow: Vec<String>,
    /// Modules allowed `unsafe` / `from_raw_parts` — exactly the one
    /// audited mmap module; everything else is safe Rust by decree.
    pub mmap_allow: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            wallclock_allow: vec!["crates/bench/src/timing.rs".to_string()],
            fanout_allow: vec!["crates/des-core/src/par.rs".to_string()],
            mmap_allow: vec!["crates/social-graph/src/mmap.rs".to_string()],
        }
    }
}

impl Config {
    fn scope_for(&self, rel: &str) -> Scope {
        Scope {
            kind: walk::classify(rel),
            wallclock_exempt: self.wallclock_allow.iter().any(|p| rel.ends_with(p)),
            fanout_exempt: self.fanout_allow.iter().any(|p| rel.ends_with(p)),
            mmap_exempt: self.mmap_allow.iter().any(|p| rel.ends_with(p)),
        }
    }
}

/// Lint result for one file.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Surviving violations (pragmas already applied), in line order.
    pub violations: Vec<Violation>,
    /// Allow pragmas that suppressed at least one violation.
    pub allows_honoured: usize,
}

/// Lint one file's source text (the unit the fixture tests drive).
pub fn lint_source(rel_path: &str, src: &str, config: &Config) -> FileReport {
    let map = lexer::lex(src);
    let raw: Vec<&str> = src.split('\n').collect();
    let scope = config.scope_for(rel_path);
    let raw_violations = rules::check(&map, scope, &raw);
    let (allows, mut malformed) = pragma::parse(&map, &raw);
    let mut violations = pragma::apply(&map, &raw, raw_violations, &allows);
    let unused = violations
        .iter()
        .filter(|v| v.rule == rules::UNUSED_ALLOW)
        .count();
    violations.append(&mut malformed);
    violations.sort_by_key(|v| v.line);
    FileReport {
        path: rel_path.to_string(),
        violations,
        allows_honoured: allows.len().saturating_sub(unused),
    }
}

/// Outcome of a workspace lint.
#[derive(Debug, Clone)]
pub struct WorkspaceReport {
    /// Per-file reports that contain at least one violation.
    pub dirty: Vec<FileReport>,
    /// Total files scanned.
    pub files_scanned: usize,
    /// Total allow pragmas honoured across the tree.
    pub allows_honoured: usize,
}

impl WorkspaceReport {
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    pub fn violation_count(&self) -> usize {
        self.dirty.iter().map(|f| f.violations.len()).sum()
    }
}

/// Lint every workspace source under `root`.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<WorkspaceReport> {
    let files = walk::workspace_files(root)?;
    let mut dirty = Vec::new();
    let mut allows = 0usize;
    let files_scanned = files.len();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(rel))?;
        let fr = lint_source(&rel_str, &src, config);
        allows += fr.allows_honoured;
        if !fr.violations.is_empty() {
            dirty.push(fr);
        }
    }
    Ok(WorkspaceReport {
        dirty,
        files_scanned,
        allows_honoured: allows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_is_clean() {
        let fr = lint_source(
            "crates/x/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
            &Config::default(),
        );
        assert!(fr.violations.is_empty());
    }

    #[test]
    fn timing_module_is_wallclock_exempt_by_default() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }";
        let fr = lint_source("crates/bench/src/timing.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/bench/src/lib.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn des_core_par_is_fanout_exempt_by_default() {
        let src = "pub fn f() { std::thread::scope(|_s| {}); }";
        let fr = lint_source("crates/des-core/src/par.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/core/src/story_metrics.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
    }

    #[test]
    fn mmap_module_is_unsafe_exempt_by_default() {
        let src = "pub fn f(p: *const u8) { let _ = unsafe { *p }; }";
        let fr = lint_source("crates/social-graph/src/mmap.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        let fr = lint_source("crates/social-graph/src/graph.rs", src, &Config::default());
        assert_eq!(fr.violations.len(), 1);
        assert_eq!(fr.violations[0].rule, rules::NO_UNCHECKED_MMAP);
    }

    #[test]
    fn allows_honoured_are_counted() {
        let src = "fn f() { x.unwrap(); } // digg-lint: allow(no-lib-unwrap) — fixture\n";
        let fr = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(fr.violations.is_empty());
        assert_eq!(fr.allows_honoured, 1);
    }
}
