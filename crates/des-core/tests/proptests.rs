//! Property tests for the event queue's ordering contract: pops are
//! nondecreasing in `(time, class)` with FIFO-stable ordering among
//! equal keys, and cancel/reschedule never lose or duplicate events.

use des_core::{EventId, EventQueue};
use proptest::prelude::*;

/// Drain-only property: scheduling a batch and draining it is exactly
/// a stable sort by `(time, class)`.
fn drain_matches_stable_sort(events: Vec<(u64, u8)>) -> Result<(), String> {
    let mut q = EventQueue::new();
    for (i, &(time, class)) in events.iter().enumerate() {
        q.schedule(time, class, i);
    }
    prop_assert_eq!(q.len(), events.len());

    let mut expected: Vec<(u64, u8, usize)> = events
        .iter()
        .enumerate()
        .map(|(i, &(t, c))| (t, c, i))
        .collect();
    expected.sort_by_key(|&(t, c, _)| (t, c)); // stable: ties keep insertion order

    let mut got = Vec::new();
    while let Some(e) = q.pop() {
        prop_assert_eq!(q.peek_time().is_none(), q.is_empty());
        got.push((e.time, e.class, e.payload));
    }
    prop_assert_eq!(got, expected);
    Ok(())
}

#[derive(Clone, Debug)]
enum Op {
    Schedule { time: u64, class: u8 },
    Cancel { pick: usize },
    Reschedule { pick: usize, time: u64, class: u8 },
    Pop,
}

/// Weighted op mix without `prop_oneof!` (the vendored proptest has no
/// such macro): a selector in 0..7 picks schedule (3/7), cancel (1/7),
/// reschedule (1/7), or pop (2/7).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0..7u8, any::<usize>(), 0..64u64, 0..4u8).prop_map(|(sel, pick, time, class)| match sel {
        0..=2 => Op::Schedule { time, class },
        3 => Op::Cancel { pick },
        4 => Op::Reschedule { pick, time, class },
        _ => Op::Pop,
    })
}

/// Reference model: a plain vector of live events, popped by scanning
/// for the minimum `(time, class, seq)` key.
#[derive(Default)]
struct Model {
    live: Vec<(u64, u8, u64, EventId, usize)>, // (time, class, seq, id, payload)
    next_seq: u64,
}

impl Model {
    fn schedule(&mut self, time: u64, class: u8, id: EventId, payload: usize) {
        self.live.push((time, class, self.next_seq, id, payload));
        self.next_seq += 1;
    }

    fn remove(&mut self, id: EventId) -> Option<(u64, u8, u64, EventId, usize)> {
        let at = self.live.iter().position(|e| e.3 == id)?;
        Some(self.live.remove(at))
    }

    fn pop(&mut self) -> Option<(u64, u8, EventId, usize)> {
        let at = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, c, s, ..))| (t, c, s))
            .map(|(i, _)| i)?;
        let (t, c, _, id, p) = self.live.remove(at);
        Some((t, c, id, p))
    }
}

/// Model-based property: under arbitrary interleavings of schedule,
/// cancel, reschedule, and pop, the queue agrees with the model on
/// every observable — so no event is ever lost or fired twice.
fn queue_matches_model(ops: Vec<Op>) -> Result<(), String> {
    let mut q = EventQueue::new();
    let mut model = Model::default();
    let mut handles: Vec<EventId> = Vec::new(); // every id ever issued
    let mut payload = 0usize;

    for op in ops {
        match op {
            Op::Schedule { time, class } => {
                let id = q.schedule(time, class, payload);
                model.schedule(time, class, id, payload);
                handles.push(id);
                payload += 1;
            }
            Op::Cancel { pick } => {
                if handles.is_empty() {
                    continue;
                }
                let id = handles[pick % handles.len()];
                let expected = model.remove(id);
                prop_assert_eq!(q.cancel(id), expected.map(|e| e.4));
            }
            Op::Reschedule { pick, time, class } => {
                if handles.is_empty() {
                    continue;
                }
                let id = handles[pick % handles.len()];
                match model.remove(id) {
                    Some((.., p)) => {
                        prop_assert!(q.reschedule(id, time, class));
                        model.schedule(time, class, id, p);
                    }
                    None => prop_assert!(!q.reschedule(id, time, class)),
                }
            }
            Op::Pop => {
                let got = q.pop().map(|e| (e.time, e.class, e.id, e.payload));
                prop_assert_eq!(got, model.pop());
            }
        }
        prop_assert_eq!(q.len(), model.live.len());
    }

    // Drain what's left: everything scheduled and not cancelled/fired
    // comes out exactly once, in model order.
    loop {
        let got = q.pop().map(|e| (e.time, e.class, e.id, e.payload));
        let want = model.pop();
        prop_assert_eq!(got, want);
        if got.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_a_stable_sort_by_time_and_class(
        events in prop::collection::vec((0..16u64, 0..3u8), 0..120)
    ) {
        drain_matches_stable_sort(events)?;
    }

    #[test]
    fn cancel_and_reschedule_never_lose_or_duplicate(
        ops in prop::collection::vec(op_strategy(), 0..200)
    ) {
        queue_matches_model(ops)?;
    }
}

// ---------------------------------------------------------------- par

// Panic-isolation contract of the fallible fan-out layer: with no
// fault, `try_par_map` is bit-identical to `par_map` at every thread
// count `DIGG_THREADS` would select; with a deliberately poisoned
// item, the panic surfaces as a `WorkerPanic` naming a shard that
// actually contains the item, at every thread count.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn try_par_map_bit_identical_to_par_map_without_faults(
        items in prop::collection::vec(any::<u32>(), 0..150)
    ) {
        let f = |x: &u32| u64::from(*x).wrapping_mul(0x9E37_79B9) ^ 0xA5;
        let serial = des_core::par_map(&items, 1, f);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(des_core::par_map(&items, threads, f), serial.clone());
            prop_assert_eq!(
                des_core::try_par_map(&items, threads, f),
                Ok(serial.clone())
            );
        }
    }

    #[test]
    fn try_par_map_surfaces_deliberate_panic_as_worker_panic(
        n in 1usize..120,
        poison_seed in any::<usize>(),
    ) {
        let items: Vec<usize> = (0..n).collect();
        let poison = poison_seed % n;
        for threads in [1usize, 2, 8] {
            let err = des_core::try_par_map(&items, threads, |&x| {
                if x == poison {
                    panic!("deliberate worker panic on {x}");
                }
                x * 2
            })
            .unwrap_err();
            prop_assert_eq!(err.failed.len(), 1);
            let shard = &err.failed[0];
            prop_assert!(
                (shard.start..shard.start + shard.len).contains(&poison),
                "shard {}..{} does not contain poisoned item {}",
                shard.start, shard.start + shard.len, poison
            );
            prop_assert!(shard.message.contains("deliberate worker panic"));
        }
    }
}
