//! Property tests for the kernel checkpoint contract: snapshotting an
//! [`EventQueue`] or [`StreamRng`] at an arbitrary instant and
//! restoring it must be observationally invisible — the restored
//! object drains/draws bit-identically to the original — and damaged
//! containers (flipped bytes, truncation, foreign versions) must come
//! back as typed [`SnapshotError`]s, never panics.

use des_core::{EventQueue, StreamRng};
use digg_snapshot::{
    ByteReader, ByteWriter, Codec, Restore, Snapshot, SnapshotError, FORMAT_VERSION, MAGIC,
};
use proptest::prelude::*;
use rand::Rng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct P(u64);

impl Codec for P {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut ByteReader) -> Result<P, SnapshotError> {
        Ok(P(r.get_u64()?))
    }
}

#[derive(Clone, Debug)]
enum Op {
    Schedule { time: u64, class: u8 },
    Cancel { pick: usize },
    Reschedule { pick: usize, time: u64, class: u8 },
    Pop,
}

/// Same weighted mix as the ordering proptests: schedule-heavy with
/// occasional cancels, reschedules, and pops.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0..7u8, any::<usize>(), 0..64u64, 0..4u8).prop_map(|(sel, pick, time, class)| match sel {
        0..=2 => Op::Schedule { time, class },
        3 => Op::Cancel { pick },
        4 => Op::Reschedule { pick, time, class },
        _ => Op::Pop,
    })
}

/// Apply one op to a queue, tracking issued handles so cancel and
/// reschedule target real ids.
fn apply(q: &mut EventQueue<P>, handles: &mut Vec<des_core::EventId>, next: &mut u64, op: &Op) {
    match *op {
        Op::Schedule { time, class } => {
            handles.push(q.schedule(time, class, P(*next)));
            *next += 1;
        }
        Op::Cancel { pick } => {
            if !handles.is_empty() {
                let id = handles[pick % handles.len()];
                q.cancel(id);
            }
        }
        Op::Reschedule { pick, time, class } => {
            if !handles.is_empty() {
                let id = handles[pick % handles.len()];
                q.reschedule(id, time, class);
            }
        }
        Op::Pop => {
            q.pop();
        }
    }
}

fn drain(q: &mut EventQueue<P>) -> Vec<(u64, u8, u64)> {
    let mut out = Vec::new();
    while let Some(e) = q.pop() {
        out.push((e.time, e.class, e.payload.0));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Checkpoint at an arbitrary instant mid-history: the restored
    /// queue replays the rest of the history and drains bit-identically
    /// to the original, and re-snapshotting yields the same bytes.
    #[test]
    fn queue_restore_is_invisible_at_any_instant(
        ops in prop::collection::vec(op_strategy(), 0..150),
        cut_pick in any::<usize>(),
    ) {
        let cut = cut_pick % (ops.len() + 1);
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        let mut next = 0u64;
        for op in &ops[..cut] {
            apply(&mut q, &mut handles, &mut next, op);
        }

        let bytes = q.snapshot();
        let mut restored = EventQueue::<P>::restore(&bytes, ()).map_err(|e| format!("{e:?}"))?;
        prop_assert_eq!(restored.snapshot(), bytes, "re-snapshot must be byte-stable");

        // Replay the tail of the history on both. Handles are the ids
        // issued so far — identical on both sides because the snapshot
        // carries the id counter.
        let mut handles_r = handles.clone();
        let mut next_r = next;
        for op in &ops[cut..] {
            apply(&mut q, &mut handles, &mut next, op);
            apply(&mut restored, &mut handles_r, &mut next_r, op);
        }
        prop_assert_eq!(restored.snapshot(), q.snapshot());
        prop_assert_eq!(drain(&mut restored), drain(&mut q));
    }

    /// Any single flipped byte in a queue snapshot surfaces as a typed
    /// error from restore — never a panic, never a silently different
    /// queue.
    #[test]
    fn corrupted_queue_snapshot_is_a_typed_error(
        events in prop::collection::vec((0..32u64, 0..3u8), 1..40),
        at_pick in any::<usize>(),
        mask in 1..=255u8,
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, c)) in events.iter().enumerate() {
            q.schedule(t, c, P(i as u64));
        }
        let mut bytes = q.snapshot();
        let at = at_pick % bytes.len();
        bytes[at] ^= mask;
        prop_assert!(EventQueue::<P>::restore(&bytes, ()).is_err());
    }

    /// Truncation at any point is a typed error.
    #[test]
    fn truncated_queue_snapshot_is_a_typed_error(
        events in prop::collection::vec((0..32u64, 0..3u8), 1..40),
        keep_pick in any::<usize>(),
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, c)) in events.iter().enumerate() {
            q.schedule(t, c, P(i as u64));
        }
        let bytes = q.snapshot();
        let keep = keep_pick % bytes.len(); // always strictly shorter
        prop_assert!(EventQueue::<P>::restore(&bytes[..keep], ()).is_err());
    }

    /// A container from a future (or past) format version is refused
    /// with `VersionMismatch` carrying both versions.
    #[test]
    fn version_mismatch_is_reported_with_both_versions(found_raw in any::<u32>()) {
        let found = if found_raw == FORMAT_VERSION { FORMAT_VERSION ^ 1 } else { found_raw };
        let q: EventQueue<P> = EventQueue::new();
        let mut bytes = q.snapshot();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&found.to_le_bytes());
        match EventQueue::<P>::restore(&bytes, ()) {
            Err(SnapshotError::VersionMismatch { found: f, expected }) => {
                prop_assert_eq!(f, found);
                prop_assert_eq!(expected, FORMAT_VERSION);
            }
            other => {
                prop_assert!(false, "expected VersionMismatch, got {:?}", other.err());
            }
        }
    }

    /// A stream RNG restored mid-stream continues with exactly the
    /// draws the original would have produced.
    #[test]
    fn stream_rng_resumes_exactly(
        seed in any::<u64>(),
        salts in prop::collection::vec(any::<u64>(), 0..4),
        burn in 0..200usize,
        draws in 1..50usize,
    ) {
        let mut rng = StreamRng::keyed(seed, &salts);
        for _ in 0..burn {
            let _: u64 = rng.random();
        }
        let bytes = rng.snapshot();
        let mut restored = StreamRng::restore(&bytes, ()).map_err(|e| format!("{e:?}"))?;
        prop_assert_eq!(restored.state(), rng.state());
        for _ in 0..draws {
            let a: u64 = rng.random();
            let b: u64 = restored.random();
            prop_assert_eq!(a, b);
        }
    }
}
