//! Deterministic discrete-event kernel shared by the simulation crates.
//!
//! Three small, orthogonal pieces:
//!
//! - [`queue`] — an [`EventQueue`] keyed by `(time, class, seq)`: a
//!   binary heap with stable FIFO tie-breaking among equal timestamps
//!   (`class` encodes a fixed intra-timestamp phase order, `seq` is a
//!   monotone insertion counter) plus O(1) cancel/reschedule through
//!   tombstoned ids.
//! - [`rng`] — [`StreamRng`], a counter-based splitmix64 generator.
//!   Each logical entity (a story, an edge, a browsing session) derives
//!   its own stream from `(seed, salts…)`, so the draws it consumes are
//!   a pure function of its identity, independent of how events from
//!   different entities interleave in the queue.
//! - [`par`] — the deterministic `std::thread::scope` fan-out used by
//!   every batch path in the workspace ([`par_map`], [`par_fold`],
//!   [`par_join`] for heterogeneous tasks over disjoint `&mut`
//!   regions, [`worker_threads`] honouring `DIGG_THREADS`): contiguous
//!   chunks, outputs recombined in task order, bit-identical results
//!   at any thread count. The fallible layer ([`try_par_map`],
//!   [`try_par_join`]) catches per-shard panics, drains the remaining
//!   shards, and aggregates the failures into a [`WorkerPanic`] so
//!   batch drivers can fail one poisoned work item instead of the
//!   whole batch.
//!
//! `digg-sim` runs the platform simulator on this kernel (with the seed
//! tick loop kept as an equivalence baseline) and `digg-epidemics` runs
//! SIR/SIS/threshold contagion on it; `digg-core` re-exports [`par`] so
//! the analytics fan-out and the scenario-sweep runner share one
//! implementation.

pub mod par;
pub mod queue;
pub mod rng;

pub use par::{
    chunk_size, panic_message, par_fold, par_join, par_map, try_par_join, try_par_map,
    worker_threads, PanicShard, WorkerPanic,
};
pub use queue::{Event, EventId, EventQueue};
pub use rng::StreamRng;
