//! Deterministic thread fan-out for batch work (moved here from
//! `digg-core::story_metrics` so the analytics sweeps and the scenario
//! runners share one implementation; `digg-core` re-exports these).
//!
//! Items are split into contiguous chunks, one scoped thread per
//! chunk, and per-chunk outputs are recombined **in chunk order** — so
//! results are bit-identical at any thread count and `DIGG_THREADS` is
//! a pure throughput knob.

/// Worker-thread count for batch fan-out: the `DIGG_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
///
/// Results never depend on this value — see [`par_map`] — so it is a
/// pure throughput knob. This is the single parser of `DIGG_THREADS`
/// in the workspace.
pub fn worker_threads() -> usize {
    std::env::var("DIGG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How many items each worker chunk gets: `ceil(n / threads)`, at
/// least 1.
pub fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// Deterministic parallel map: `out[i] == f(&items[i])` regardless of
/// `threads`. Items are split into contiguous chunks, one scoped
/// thread per chunk, and per-chunk outputs are concatenated in chunk
/// order — bit-identical results at any thread count.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = chunk_size(items.len(), threads);
    if chunk >= items.len() {
        return items.iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// Deterministic parallel fold: each contiguous chunk is folded on its
/// own thread into an accumulator from `make`, and the per-chunk
/// accumulators are merged **in chunk order** with `merge` — so any
/// order-sensitive accumulator still produces thread-count-independent
/// results.
pub fn par_fold<T, A, F, M>(
    items: &[T],
    threads: usize,
    make: impl Fn() -> A + Sync,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    F: Fn(&mut A, &T) + Sync,
    M: Fn(&mut A, A),
{
    let chunk = chunk_size(items.len(), threads);
    if chunk >= items.len() {
        let mut acc = make();
        for t in items {
            fold(&mut acc, t);
        }
        return acc;
    }
    std::thread::scope(|scope| {
        let fold = &fold;
        let make = &make;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut acc = make();
                    for t in part {
                        fold(&mut acc, t);
                    }
                    acc
                })
            })
            .collect();
        let mut out = make();
        for h in handles {
            merge(&mut out, h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// Deterministic heterogeneous fan-out: run each closure on its own
/// scoped thread and return the results **in task order**. This is the
/// primitive behind the parallel CSR scatter in `social-graph`: the
/// caller splits one output buffer into disjoint `&mut` regions with
/// `split_at_mut`, moves each region into a task, and `par_join` runs
/// the per-region writes concurrently without any unsafe aliasing.
///
/// With zero or one task (or when the caller asked for one thread via
/// a single task) everything runs inline on the current thread.
pub fn par_join<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if tasks.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|f| scope.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn chunk_size_covers_all_items() {
        for n in 0..40usize {
            for threads in 1..10usize {
                let c = chunk_size(n, threads);
                assert!(c >= 1);
                assert!(c * threads >= n, "n={n} threads={threads} chunk={c}");
            }
        }
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn par_join_returns_in_task_order() {
        let tasks: Vec<_> = (0..9u64).map(|i| move || i * 10).collect();
        assert_eq!(
            par_join(tasks),
            (0..9u64).map(|i| i * 10).collect::<Vec<_>>()
        );
        assert_eq!(par_join(Vec::<fn() -> u64>::new()), Vec::<u64>::new());
        assert_eq!(par_join(vec![|| 7u64]), vec![7]);
    }

    #[test]
    fn par_join_tasks_may_own_disjoint_regions() {
        let mut buf = vec![0u32; 10];
        let (lo, hi) = buf.split_at_mut(4);
        par_join(vec![
            Box::new(move || lo.fill(1)) as Box<dyn FnOnce() + Send>,
            Box::new(move || hi.fill(2)),
        ]);
        assert_eq!(buf, [1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn par_fold_preserves_chunk_order() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.clone();
        for threads in [1, 2, 5, 16] {
            let folded = par_fold(
                &items,
                threads,
                Vec::new,
                |acc, &x| acc.push(x),
                |acc, part| acc.extend(part),
            );
            assert_eq!(folded, serial);
        }
    }
}
