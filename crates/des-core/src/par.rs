//! Deterministic thread fan-out for batch work (moved here from
//! `digg-core::story_metrics` so the analytics sweeps and the scenario
//! runners share one implementation; `digg-core` re-exports these).
//!
//! Items are split into contiguous chunks, one scoped thread per
//! chunk, and per-chunk outputs are recombined **in chunk order** — so
//! results are bit-identical at any thread count and `DIGG_THREADS` is
//! a pure throughput knob.
//!
//! Two API layers share the same chunking (see DESIGN.md §12):
//!
//! * the **fallible** layer — [`try_par_map`] / [`try_par_join`] —
//!   catches a panic inside any worker shard, still drains every other
//!   shard to completion, and reports the failures as one aggregated
//!   [`WorkerPanic`] naming each failed shard and its item range;
//! * the **infallible** layer — [`par_map`] / [`par_join`] /
//!   [`par_fold`] — is built on top and simply re-panics with the
//!   aggregated message, preserving the original fail-fast contract
//!   for callers that treat a worker panic as a bug.
//!
//! Batch drivers that must survive one poisoned work item (the
//! scenario-sweep runner, the degradation harness) route through the
//! fallible layer so a single panicking scenario fails that scenario,
//! not the whole batch.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Worker-thread count for batch fan-out: the `DIGG_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
///
/// Results never depend on this value — see [`par_map`] — so it is a
/// pure throughput knob. This is the single parser of `DIGG_THREADS`
/// in the workspace.
pub fn worker_threads() -> usize {
    std::env::var("DIGG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How many items each worker chunk gets: `ceil(n / threads)`, at
/// least 1.
pub fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// One worker shard that panicked during a fallible fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicShard {
    /// Index of the shard among the shards of the fan-out.
    pub shard: usize,
    /// Index of the shard's first item in the input slice (the task
    /// index for [`try_par_join`]).
    pub start: usize,
    /// Number of items the shard owned.
    pub len: usize,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim,
    /// anything else a placeholder).
    pub message: String,
}

/// Aggregated failure of a fallible fan-out: every shard ran to
/// completion or unwound, and these are the ones that unwound. The
/// successful shards' outputs are discarded — reproducing them is
/// cheap and deterministic, and a partial result would be too easy to
/// mistake for a complete one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Total shards the fan-out ran.
    pub shards: usize,
    /// The shards that panicked, in shard order.
    pub failed: Vec<PanicShard>,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} worker shards panicked:",
            self.failed.len(),
            self.shards
        )?;
        for s in &self.failed {
            write!(
                f,
                " [shard {} items {}..{}: {}]",
                s.shard,
                s.start,
                s.start + s.len,
                s.message
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a panic payload: `&str` and `String` payloads verbatim,
/// anything else a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one shard under `catch_unwind`, building the shard's worker
/// state with `init` first.
///
/// `AssertUnwindSafe` is sound here because a panicking shard's state
/// and output vector are dropped during the unwind and never observed,
/// and the fan-out as a whole returns `Err` — callers never see state
/// from a shard that did not complete.
fn run_shard<S, T, R>(
    part: &[T],
    init: &(impl Fn() -> S + Sync),
    f: &(impl Fn(&mut S, &T) -> R + Sync),
) -> Result<Vec<R>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut state = init();
        part.iter().map(|t| f(&mut state, t)).collect()
    }))
    .map_err(|p| panic_message(p.as_ref()))
}

/// Fallible [`par_map`]: identical chunking and output order, but a
/// panic inside a worker is caught per shard. Every other shard still
/// runs to completion (work is drained, not abandoned), and the error
/// aggregates all failed shards with their item ranges.
///
/// With no panic the result is bit-identical to [`par_map`] at any
/// thread count.
pub fn try_par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map_with(items, threads, || (), |(), t| f(t))
}

/// [`try_par_map`] with per-worker state: each shard calls `init`
/// once on its own thread and threads the state through its items in
/// order. Because shard boundaries depend only on `(items.len(),
/// threads)` and outputs are concatenated in chunk order, results are
/// bit-identical at any thread count *provided* `f`'s output does not
/// depend on the state's history — the intended use is reusable
/// scratch (e.g. `digg_core::StorySweeper`), not accumulators.
pub fn try_par_map_with<S, T, R, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let chunk = chunk_size(items.len(), threads);
    if chunk >= items.len() {
        return run_shard(items, &init, &f).map_err(|message| WorkerPanic {
            shards: 1,
            failed: vec![PanicShard {
                shard: 0,
                start: 0,
                len: items.len(),
                message,
            }],
        });
    }
    std::thread::scope(|scope| {
        let f = &f;
        let init = &init;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || run_shard(part, init, f)))
            .collect();
        let shards = handles.len();
        let mut out = Vec::with_capacity(items.len());
        let mut failed = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            // The shard closure catches panics itself; `join` can only
            // report one if the unwind escaped `catch_unwind`.
            let res = h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref())));
            match res {
                Ok(part) => out.extend(part),
                Err(message) => failed.push(PanicShard {
                    shard: i,
                    start: i * chunk,
                    len: chunk.min(items.len() - i * chunk),
                    message,
                }),
            }
        }
        if failed.is_empty() {
            Ok(out)
        } else {
            Err(WorkerPanic { shards, failed })
        }
    })
}

/// Deterministic parallel map: `out[i] == f(&items[i])` regardless of
/// `threads`. Items are split into contiguous chunks, one scoped
/// thread per chunk, and per-chunk outputs are concatenated in chunk
/// order — bit-identical results at any thread count.
///
/// Layered on [`try_par_map`]: a worker panic (a bug in `f`) is
/// re-raised here with the aggregated shard report.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_par_map(items, threads, f) {
        Ok(out) => out,
        // digg-lint: allow(no-lib-unwrap) — infallible-layer contract: re-raise the aggregated WorkerPanic for fail-fast callers
        Err(e) => panic!("worker thread panicked: {e}"),
    }
}

/// Deterministic parallel fold: each contiguous chunk is folded on its
/// own thread into an accumulator from `make`, and the per-chunk
/// accumulators are merged **in chunk order** with `merge` — so any
/// order-sensitive accumulator still produces thread-count-independent
/// results.
pub fn par_fold<T, A, F, M>(
    items: &[T],
    threads: usize,
    make: impl Fn() -> A + Sync,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send,
    F: Fn(&mut A, &T) + Sync,
    M: Fn(&mut A, A),
{
    let chunk = chunk_size(items.len(), threads);
    if chunk >= items.len() {
        let mut acc = make();
        for t in items {
            fold(&mut acc, t);
        }
        return acc;
    }
    std::thread::scope(|scope| {
        let fold = &fold;
        let make = &make;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut acc = make();
                    for t in part {
                        fold(&mut acc, t);
                    }
                    acc
                })
            })
            .collect();
        let mut out = make();
        for h in handles {
            // digg-lint: allow(no-lib-unwrap) — fold has no fallible layer: a worker panic propagates fail-fast by design
            merge(&mut out, h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// Deterministic heterogeneous fan-out: run each closure on its own
/// scoped thread and return the results **in task order**. This is the
/// primitive behind the parallel CSR scatter in `social-graph`: the
/// caller splits one output buffer into disjoint `&mut` regions with
/// `split_at_mut`, moves each region into a task, and `par_join` runs
/// the per-region writes concurrently without any unsafe aliasing.
///
/// With zero or one task (or when the caller asked for one thread via
/// a single task) everything runs inline on the current thread.
///
/// Layered on [`try_par_join`]: a task panic is re-raised here with
/// the aggregated shard report.
pub fn par_join<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    match try_par_join(tasks) {
        Ok(out) => out,
        // digg-lint: allow(no-lib-unwrap) — infallible-layer contract: re-raise the aggregated WorkerPanic for fail-fast callers
        Err(e) => panic!("worker thread panicked: {e}"),
    }
}

/// Fallible [`par_join`]: each task runs on its own scoped thread (one
/// shard per task) under `catch_unwind`; a panicking task does not
/// stop the others, and all failures come back aggregated as one
/// [`WorkerPanic`] whose `start` is the task index.
///
/// With no panic the result is bit-identical to [`par_join`].
pub fn try_par_join<T, F>(tasks: Vec<F>) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let shards = tasks.len();
    let collect = |results: Vec<Result<T, String>>| {
        let mut out = Vec::with_capacity(shards);
        let mut failed = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(message) => failed.push(PanicShard {
                    shard: i,
                    start: i,
                    len: 1,
                    message,
                }),
            }
        }
        if failed.is_empty() {
            Ok(out)
        } else {
            Err(WorkerPanic { shards, failed })
        }
    };
    let run_task = |f: F| catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()));
    if shards <= 1 {
        return collect(tasks.into_iter().map(run_task).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|f| scope.spawn(move || run_task(f)))
            .collect();
        collect(
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref()))))
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn chunk_size_covers_all_items() {
        for n in 0..40usize {
            for threads in 1..10usize {
                let c = chunk_size(n, threads);
                assert!(c >= 1);
                assert!(c * threads >= n, "n={n} threads={threads} chunk={c}");
            }
        }
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn par_join_returns_in_task_order() {
        let tasks: Vec<_> = (0..9u64).map(|i| move || i * 10).collect();
        assert_eq!(
            par_join(tasks),
            (0..9u64).map(|i| i * 10).collect::<Vec<_>>()
        );
        assert_eq!(par_join(Vec::<fn() -> u64>::new()), Vec::<u64>::new());
        assert_eq!(par_join(vec![|| 7u64]), vec![7]);
    }

    #[test]
    fn par_join_tasks_may_own_disjoint_regions() {
        let mut buf = vec![0u32; 10];
        let (lo, hi) = buf.split_at_mut(4);
        par_join(vec![
            Box::new(move || lo.fill(1)) as Box<dyn FnOnce() + Send>,
            Box::new(move || hi.fill(2)),
        ]);
        assert_eq!(buf, [1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn try_par_map_matches_par_map_when_nothing_panics() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 8] {
            assert_eq!(try_par_map(&items, threads, |x| x * 3), Ok(serial.clone()));
        }
    }

    #[test]
    fn try_par_map_with_builds_state_per_shard_and_keeps_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|x| x + 1000).collect();
        for threads in [1, 2, 3, 8] {
            let inits = AtomicUsize::new(0);
            let out = try_par_map_with(
                &items,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64 // per-worker scratch: items seen in this shard
                },
                |seen, x| {
                    *seen += 1;
                    x + 1000
                },
            );
            assert_eq!(out, Ok(serial.clone()));
            // One state per shard, at most one shard per thread, at
            // least one shard total.
            let n = inits.load(Ordering::Relaxed);
            assert!(n >= 1 && n <= threads, "threads={threads} inits={n}");
        }
    }

    #[test]
    fn try_par_map_isolates_a_poisoned_shard() {
        let items: Vec<u64> = (0..40).collect();
        for threads in [1, 2, 8] {
            let err = try_par_map(&items, threads, |&x| {
                if x == 17 {
                    panic!("poisoned item {x}");
                }
                x
            })
            .unwrap_err();
            assert_eq!(err.failed.len(), 1, "one shard holds item 17");
            let shard = &err.failed[0];
            assert!((shard.start..shard.start + shard.len).contains(&17));
            assert!(shard.message.contains("poisoned item 17"));
            assert!(err.to_string().contains("poisoned item 17"));
            assert!(err.shards >= err.failed.len());
        }
    }

    #[test]
    fn try_par_join_drains_surviving_tasks() {
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task two down")),
            Box::new(|| 3),
        ];
        let err = try_par_join(tasks).unwrap_err();
        assert_eq!(err.shards, 3);
        assert_eq!(err.failed.len(), 1);
        assert_eq!(err.failed[0].start, 1);
        assert!(err.failed[0].message.contains("task two down"));
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn par_map_still_fails_fast_on_worker_panic() {
        let items: Vec<u64> = (0..32).collect();
        par_map(&items, 4, |&x| {
            if x == 5 {
                panic!("bug in f");
            }
            x
        });
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(s.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn par_fold_preserves_chunk_order() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.clone();
        for threads in [1, 2, 5, 16] {
            let folded = par_fold(
                &items,
                threads,
                Vec::new,
                |acc, &x| acc.push(x),
                |acc, part| acc.extend(part),
            );
            assert_eq!(folded, serial);
        }
    }
}
