//! Counter-based random streams for interleaving-independent draws.
//!
//! A [`StreamRng`] is a splitmix64 generator addressed by a `key` (the
//! stream identity) and a `counter` (the position within the stream).
//! Output `i` of a stream is `mix(key + i * GAMMA)` — a pure function
//! of `(key, i)` — so two streams never contend for state and the
//! values an entity draws do not depend on *when* its events fire
//! relative to other entities' events. That is the property that makes
//! an event-driven simulation reproducible under any heap layout.
//!
//! Keys are derived by chaining the same mixer over a seed and a list
//! of salts (entity ids, channel tags, episode counters), mirroring how
//! the vendored `rand` seeds `StdRng` from a `u64`.

use digg_snapshot::{
    ByteReader, ByteWriter, Codec, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use rand::RngCore;

/// Weyl-sequence increment from the splitmix64 reference
/// implementation (the golden-ratio constant).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a bijective avalanche mix of one word.
#[inline]
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One independent random stream: `Copy`, 16 bytes, freely embeddable
/// in event payloads. Implements [`rand::RngCore`], so every sampler in
/// `digg-stats` (`coin`, `poisson`, `exponential`, …) works on it
/// unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamRng {
    key: u64,
    counter: u64,
}

impl StreamRng {
    /// Root stream for a run seed.
    pub fn root(seed: u64) -> StreamRng {
        StreamRng {
            key: mix(seed.wrapping_add(GOLDEN_GAMMA)),
            counter: 0,
        }
    }

    /// Child stream: same construction applied to this stream's key and
    /// a salt. Chaining `derive` over entity ids gives a key tree —
    /// `root(seed).derive(STORY).derive(id)` — where distinct paths
    /// yield (with overwhelming probability) distinct keys.
    pub fn derive(&self, salt: u64) -> StreamRng {
        StreamRng {
            key: mix(self.key.wrapping_add(GOLDEN_GAMMA) ^ mix(salt.wrapping_add(GOLDEN_GAMMA))),
            counter: 0,
        }
    }

    /// Convenience: root stream keyed by a seed and a salt path.
    pub fn keyed(seed: u64, salts: &[u64]) -> StreamRng {
        let mut s = StreamRng::root(seed);
        for &salt in salts {
            s = s.derive(salt);
        }
        s
    }

    /// Draws consumed so far (the position within the stream).
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The full `(key, counter)` state, for checkpointing. This pair
    /// is the *entire* generator — the counter-based design means a
    /// snapshot is 16 bytes and restoring it replays the stream from
    /// exactly where it left off.
    pub fn state(&self) -> (u64, u64) {
        (self.key, self.counter)
    }

    /// Rebuild a stream from a captured [`StreamRng::state`].
    pub fn from_state(key: u64, counter: u64) -> StreamRng {
        StreamRng { key, counter }
    }
}

impl Codec for StreamRng {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_u64(self.key);
        out.put_u64(self.counter);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<StreamRng, SnapshotError> {
        let key = r.get_u64()?;
        let counter = r.get_u64()?;
        Ok(StreamRng { key, counter })
    }
}

impl Snapshot for StreamRng {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        let mut container = SnapshotWriter::new();
        container.section("stream_rng", w.into_bytes());
        container.finish()
    }
}

impl Restore for StreamRng {
    type Context<'a> = ();

    fn restore(bytes: &[u8], _ctx: ()) -> Result<StreamRng, SnapshotError> {
        let reader = SnapshotReader::parse(bytes)?;
        let mut r = reader.section_reader("stream_rng")?;
        let rng = StreamRng::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after stream_rng state".into(),
            ));
        }
        Ok(rng)
    }
}

impl RngCore for StreamRng {
    fn next_u64(&mut self) -> u64 {
        let out = mix(self
            .key
            .wrapping_add(self.counter.wrapping_mul(GOLDEN_GAMMA)));
        self.counter = self.counter.wrapping_add(1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn outputs_are_position_addressable() {
        let mut a = StreamRng::keyed(7, &[1, 2]);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        // A fresh copy of the same stream replays identically.
        let mut b = StreamRng::keyed(7, &[1, 2]);
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        assert_eq!(a.counter(), 8);
    }

    #[test]
    fn interleaving_does_not_change_draws() {
        let mut x = StreamRng::keyed(7, &[1]);
        let mut y = StreamRng::keyed(7, &[2]);
        let (x1, y1, x2) = (x.next_u64(), y.next_u64(), x.next_u64());

        // Same streams, different interleaving: identical values.
        let mut x = StreamRng::keyed(7, &[1]);
        let mut y = StreamRng::keyed(7, &[2]);
        let (x1b, x2b, y1b) = (x.next_u64(), x.next_u64(), y.next_u64());
        assert_eq!((x1, x2, y1), (x1b, x2b, y1b));
    }

    #[test]
    fn distinct_paths_give_distinct_sequences() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4u64 {
            for a in 0..4u64 {
                for b in 0..4u64 {
                    let mut s = StreamRng::keyed(seed, &[a, b]);
                    assert!(seen.insert(s.next_u64()), "collision at {seed}/{a}/{b}");
                }
            }
        }
        // Path order matters: [1, 2] and [2, 1] are different streams.
        let mut p = StreamRng::keyed(0, &[1, 2]);
        let mut q = StreamRng::keyed(0, &[2, 1]);
        assert_ne!(p.next_u64(), q.next_u64());
    }

    #[test]
    fn snapshot_restore_resumes_the_stream_exactly() {
        let mut s = StreamRng::keyed(9, &[3, 1]);
        for _ in 0..5 {
            s.next_u64();
        }
        let bytes = s.snapshot();
        let mut restored = StreamRng::restore(&bytes, ()).unwrap();
        assert_eq!(restored, s);
        let tail: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
        let resumed: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(tail, resumed);
        // Corruption surfaces as a typed error, never a panic.
        let mut bad = s.snapshot();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(StreamRng::restore(&bad, ()).is_err());
    }

    #[test]
    fn uniform_floats_cover_the_unit_interval() {
        let mut s = StreamRng::keyed(42, &[]);
        let n = 4096;
        let mean: f64 = (0..n).map(|_| s.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
