//! The event queue: a binary heap with deterministic total order and
//! tombstoned cancellation.
//!
//! Heap entries are keyed by `(time, class, seq)`:
//!
//! - `time` — when the event fires (any monotone `u64` clock);
//! - `class` — a small caller-chosen tag ordering events that share a
//!   timestamp (the simulator uses it to encode the tick loop's
//!   intra-minute phase order: expiry before submissions before
//!   exposures before browsing before external discovery);
//! - `seq` — a queue-global insertion counter, so events with equal
//!   `(time, class)` pop in FIFO order and the order is a pure function
//!   of the schedule-call sequence, never of heap internals.
//!
//! Cancel and reschedule are O(log n) amortised without heap surgery:
//! the `live` map holds the authoritative `seq` per [`EventId`], and a
//! popped heap entry whose seq no longer matches is a tombstone,
//! skipped silently.

use digg_snapshot::{
    ByteWriter, Codec, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Stable handle to a scheduled event, usable to cancel or reschedule
/// it until it fires. Ids are never reused within one queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A fired event, as returned by [`EventQueue::pop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<T> {
    pub time: u64,
    pub class: u8,
    pub id: EventId,
    pub payload: T,
}

struct LiveEvent<T> {
    seq: u64,
    payload: T,
}

/// Deterministic priority queue of events carrying payloads of type
/// `T`. See the module docs for the ordering contract.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u8, u64, EventId)>>,
    /// HashMap is safe here (determinism audit, DESIGN.md §13): it is
    /// only ever keyed lookups/removals driven by the heap's total
    /// order — nothing iterates it, and the snapshot path below sorts
    /// live events by (time, class, seq) before encoding.
    // digg-lint: allow(no-unordered-serialize) — snapshot encodes live events in (time, class, seq) order, never map order
    live: HashMap<u64, LiveEvent<T>>,
    next_id: u64,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_id: 0,
            next_seq: 0,
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedule `payload` at `(time, class)`; later schedules at the
    /// same `(time, class)` fire after this one (FIFO).
    pub fn schedule(&mut self, time: u64, class: u8, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.push(id, time, class, payload);
        id
    }

    fn push(&mut self, id: EventId, time: u64, class: u8, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, class, seq, id)));
        self.live.insert(id.0, LiveEvent { seq, payload });
    }

    /// Cancel a pending event, returning its payload; `None` if it
    /// already fired or was cancelled. The heap entry is left behind as
    /// a tombstone and skipped on pop.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        self.live.remove(&id.0).map(|e| e.payload)
    }

    /// Move a pending event to a new `(time, class)`, keeping its id
    /// and payload. Equivalent to cancel + schedule: the event re-enters
    /// FIFO order as if scheduled now. Returns false if the id is no
    /// longer live.
    pub fn reschedule(&mut self, id: EventId, time: u64, class: u8) -> bool {
        match self.live.remove(&id.0) {
            Some(e) => {
                self.push(id, time, class, e.payload);
                true
            }
            None => false,
        }
    }

    /// Fire time of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<u64> {
        self.skim_tombstones();
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    /// Pop the next live event in `(time, class, seq)` order.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.skim_tombstones();
        let Reverse((time, class, _seq, id)) = self.heap.pop()?;
        let e = self
            .live
            .remove(&id.0)
            // digg-lint: allow(no-lib-unwrap) — heap/live-map coherence invariant: skim_tombstones just dropped every dead head
            .expect("skim_tombstones left a live head");
        Some(Event {
            time,
            class,
            id,
            payload: e.payload,
        })
    }

    /// Drop stale heap entries (cancelled, or superseded by a
    /// reschedule) until the head is live.
    fn skim_tombstones(&mut self) {
        while let Some(Reverse((_, _, seq, id))) = self.heap.peek() {
            match self.live.get(&id.0) {
                Some(e) if e.seq == *seq => return,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

impl<T: Codec> Snapshot for EventQueue<T> {
    /// Serialized: live events (with their original ids and seqs, so a
    /// restored queue honours outstanding [`EventId`] handles and keeps
    /// FIFO ties exactly), `next_id`, `next_seq`. Dropped: tombstoned
    /// heap entries — they are unobservable, and skipping them keeps
    /// snapshots proportional to *live* events.
    fn snapshot(&self) -> Vec<u8> {
        // Heap iteration order is arbitrary; filter to seq-matching
        // (live) entries and sort by the queue's own total order.
        let mut entries: Vec<(u64, u8, u64, u64, &T)> = self
            .heap
            .iter()
            .filter_map(|&Reverse((time, class, seq, id))| {
                self.live
                    .get(&id.0)
                    .filter(|e| e.seq == seq)
                    .map(|e| (time, class, seq, id.0, &e.payload))
            })
            .collect();
        entries.sort_unstable_by_key(|&(time, class, seq, id, _)| (time, class, seq, id));
        let mut w = ByteWriter::new();
        w.put_u64(self.next_id);
        w.put_u64(self.next_seq);
        w.put_usize(entries.len());
        for (time, class, seq, id, payload) in entries {
            w.put_u64(time);
            w.put_u8(class);
            w.put_u64(seq);
            w.put_u64(id);
            payload.encode(&mut w);
        }
        let mut container = SnapshotWriter::new();
        container.section("events", w.into_bytes());
        container.finish()
    }
}

impl<T: Codec> Restore for EventQueue<T> {
    type Context<'a> = ();

    fn restore(bytes: &[u8], _ctx: ()) -> Result<EventQueue<T>, SnapshotError> {
        let reader = SnapshotReader::parse(bytes)?;
        let mut r = reader.section_reader("events")?;
        let next_id = r.get_u64()?;
        let next_seq = r.get_u64()?;
        let count = r.get_usize()?;
        let mut q = EventQueue::new();
        for _ in 0..count {
            let time = r.get_u64()?;
            let class = r.get_u8()?;
            let seq = r.get_u64()?;
            let id = r.get_u64()?;
            let payload = T::decode(&mut r)?;
            if id >= next_id || seq >= next_seq {
                return Err(SnapshotError::Malformed(format!(
                    "event id {id}/seq {seq} not below next_id {next_id}/next_seq {next_seq}"
                )));
            }
            if q.live.insert(id, LiveEvent { seq, payload }).is_some() {
                return Err(SnapshotError::Malformed(format!("duplicate event id {id}")));
            }
            q.heap.push(Reverse((time, class, seq, EventId(id))));
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after event list".into(),
            ));
        }
        q.next_id = next_id;
        q.next_seq = next_seq;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<&'static str>) -> Vec<(u64, u8, &'static str)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.class, e.payload));
        }
        out
    }

    #[test]
    fn pops_by_time_then_class_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1, "t5c1-first");
        q.schedule(3, 2, "t3c2");
        q.schedule(5, 0, "t5c0");
        q.schedule(5, 1, "t5c1-second");
        q.schedule(3, 1, "t3c1");
        assert_eq!(
            drain(&mut q),
            vec![
                (3, 1, "t3c1"),
                (3, 2, "t3c2"),
                (5, 0, "t5c0"),
                (5, 1, "t5c1-first"),
                (5, 1, "t5c1-second"),
            ]
        );
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, "a");
        q.schedule(1, 0, "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(drain(&mut q), vec![(1, 0, "b")]);
        assert_eq!(q.cancel(a), None, "cancel after drain");
    }

    #[test]
    fn reschedule_moves_and_requeues_fifo() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, 0, "a");
        q.schedule(2, 0, "b");
        assert!(q.reschedule(a, 2, 0), "live event reschedules");
        // `a` re-entered after `b`, so FIFO puts it second.
        assert_eq!(drain(&mut q), vec![(2, 0, "b"), (2, 0, "a")]);
        assert!(!q.reschedule(a, 3, 0), "fired event does not");
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, "a");
        q.schedule(7, 0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(7));
        let b = q.pop().unwrap();
        assert_eq!((b.time, b.payload), (7, "b"));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct P(u64);

    impl Codec for P {
        fn encode(&self, out: &mut ByteWriter) {
            out.put_u64(self.0);
        }

        fn decode(r: &mut digg_snapshot::ByteReader<'_>) -> Result<P, SnapshotError> {
            Ok(P(r.get_u64()?))
        }
    }

    fn drain_p(q: &mut EventQueue<P>) -> Vec<(u64, u8, EventId, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.class, e.id, e.payload.0));
        }
        out
    }

    #[test]
    fn snapshot_restore_preserves_order_ids_and_handles() {
        let mut q = EventQueue::new();
        let a = q.schedule(5, 1, P(50));
        let b = q.schedule(3, 0, P(30));
        let c = q.schedule(3, 0, P(31));
        q.schedule(1, 0, P(10));
        q.cancel(b);
        q.reschedule(a, 3, 0); // re-enters FIFO after c
        q.pop(); // fires (1, 0, P(10))

        let bytes = q.snapshot();
        let mut restored: EventQueue<P> = EventQueue::restore(&bytes, ()).unwrap();
        assert_eq!(restored.len(), q.len());
        // Outstanding handles keep working against the restored queue.
        assert!(restored.reschedule(c, 9, 2));
        assert!(q.reschedule(c, 9, 2));
        assert_eq!(drain_p(&mut restored), drain_p(&mut q));
        // Id allocation continues where the original left off.
        assert_eq!(restored.schedule(0, 0, P(0)), q.schedule(0, 0, P(0)));
    }

    #[test]
    fn snapshot_drops_tombstones() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            let id = q.schedule(i, 0, P(i));
            if i % 2 == 0 {
                q.cancel(id);
            }
        }
        let full = q.snapshot();
        // A queue that never had the cancelled events at all encodes a
        // payload of the same size: tombstones cost nothing.
        let live_events = q.len();
        let restored: EventQueue<P> = EventQueue::restore(&full, ()).unwrap();
        assert_eq!(restored.len(), live_events);
        let again = restored.snapshot();
        assert_eq!(full, again, "snapshot of a restore is byte-identical");
    }

    #[test]
    fn restore_rejects_malformed_counters() {
        let q = {
            let mut q = EventQueue::new();
            q.schedule(1, 0, P(1));
            q
        };
        let bytes = q.snapshot();
        // Rewrite the container with next_id/next_seq zeroed: the live
        // event's id/seq now exceed the counters.
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let payload = reader.section("events").unwrap();
        let mut forged = payload.to_vec();
        forged[..16].fill(0);
        let mut w = SnapshotWriter::new();
        w.section("events", forged);
        match EventQueue::<P>::restore(&w.finish(), ()) {
            Err(SnapshotError::Malformed(_)) => {}
            Err(other) => panic!("expected Malformed, got {other}"),
            Ok(_) => panic!("forged counters restored"),
        }
    }

    #[test]
    fn ids_are_unique_across_the_queue_lifetime() {
        let mut q = EventQueue::new();
        let mut ids = std::collections::HashSet::new();
        for i in 0..100u64 {
            assert!(ids.insert(q.schedule(i % 7, 0, ())));
        }
        while q.pop().is_some() {}
        for i in 0..100u64 {
            assert!(ids.insert(q.schedule(i % 5, 0, ())));
        }
    }
}
