//! The event queue: a binary heap with deterministic total order and
//! tombstoned cancellation.
//!
//! Heap entries are keyed by `(time, class, seq)`:
//!
//! - `time` — when the event fires (any monotone `u64` clock);
//! - `class` — a small caller-chosen tag ordering events that share a
//!   timestamp (the simulator uses it to encode the tick loop's
//!   intra-minute phase order: expiry before submissions before
//!   exposures before browsing before external discovery);
//! - `seq` — a queue-global insertion counter, so events with equal
//!   `(time, class)` pop in FIFO order and the order is a pure function
//!   of the schedule-call sequence, never of heap internals.
//!
//! Cancel and reschedule are O(log n) amortised without heap surgery:
//! a **slab** of slots holds the authoritative `(generation, seq)` per
//! [`EventId`], and a popped heap entry whose slot no longer matches
//! is a tombstone, skipped silently.
//!
//! ## The slab
//!
//! Live payloads used to live in a `HashMap<u64, LiveEvent<T>>`; every
//! schedule hashed a key and chased buckets, and a simulation
//! scheduling millions of exposure events churned the map's
//! allocations. The slab replaces that with a `Vec` of slots plus a
//! LIFO free list: an [`EventId`] packs `(generation << 32) | slot`,
//! so resolving a handle is one bounds-checked index plus a generation
//! compare, scheduling pops the free list (or appends a slot), and
//! firing or cancelling pushes it back with the generation bumped —
//! which is what keeps freed ids from ever resolving again. A slot
//! whose generation would wrap is retired instead of reused, so id
//! uniqueness is unconditional.

use digg_snapshot::{
    ByteWriter, Codec, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Stable handle to a scheduled event, usable to cancel or reschedule
/// it until it fires. Ids are never reused within one queue: the high
/// 32 bits carry the slot's generation, the low 32 bits the slab slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, generation: u32) -> EventId {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        // digg-lint: allow(no-truncating-cast) — extracting the upper 32-bit field of the packed id
        (self.0 >> 32) as u32
    }
}

/// A fired event, as returned by [`EventQueue::pop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<T> {
    pub time: u64,
    pub class: u8,
    pub id: EventId,
    pub payload: T,
}

/// One slab slot. `generation` counts how many times the slot has been
/// freed; an [`EventId`] resolves only while its generation field
/// matches.
struct Slot<T> {
    generation: u32,
    state: SlotState<T>,
}

enum SlotState<T> {
    Free,
    Occupied { seq: u64, payload: T },
}

/// Deterministic priority queue of events carrying payloads of type
/// `T`. See the module docs for the ordering contract and the slab
/// layout.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u8, u64, EventId)>>,
    /// Slab of event slots; `EventId::slot` indexes it directly.
    slots: Vec<Slot<T>>,
    /// Freed slot indices, reused LIFO (the hottest slot stays
    /// cache-warm). Slots whose generation saturated are retired and
    /// never re-enter this list.
    free: Vec<u32>,
    /// Number of occupied slots, maintained incrementally so `len` is
    /// O(1).
    live_len: usize,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live_len: 0,
            next_seq: 0,
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live_len
    }

    pub fn is_empty(&self) -> bool {
        self.live_len == 0
    }

    /// Schedule `payload` at `(time, class)`; later schedules at the
    /// same `(time, class)` fire after this one (FIFO).
    pub fn schedule(&mut self, time: u64, class: u8, payload: T) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Free,
                });
                // digg-lint: allow(no-lib-unwrap) — the packed-id layout caps the slab at u32 slots; beyond it is a programmer error
                u32::try_from(self.slots.len() - 1).expect("event slab exceeds u32 slots")
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = &mut self.slots[slot as usize];
        debug_assert!(matches!(entry.state, SlotState::Free));
        entry.state = SlotState::Occupied { seq, payload };
        self.live_len += 1;
        let id = EventId::pack(slot, entry.generation);
        self.heap.push(Reverse((time, class, seq, id)));
        id
    }

    /// Free a slot after its event fired or was cancelled: bump the
    /// generation (invalidating every outstanding copy of the id) and
    /// recycle the index — unless the generation saturated, in which
    /// case the slot is retired.
    fn release(&mut self, slot: usize) {
        let entry = &mut self.slots[slot];
        entry.state = SlotState::Free;
        entry.generation += 1;
        self.live_len -= 1;
        if entry.generation < u32::MAX {
            // digg-lint: allow(no-truncating-cast, hot-path-alloc) — slot indices are allocated below u32::MAX by construction; the free list never outgrows the slab, so this push reuses capacity freed by schedule
            self.free.push(slot as u32);
        }
    }

    /// The slot behind `id`, if the id is still live.
    fn resolve(&self, id: EventId) -> Option<usize> {
        let slot = id.slot();
        match self.slots.get(slot) {
            Some(e) if e.generation == id.generation() => match e.state {
                SlotState::Occupied { .. } => Some(slot),
                SlotState::Free => None,
            },
            _ => None,
        }
    }

    /// Cancel a pending event, returning its payload; `None` if it
    /// already fired or was cancelled. The heap entry is left behind as
    /// a tombstone and skipped on pop.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        let slot = self.resolve(id)?;
        let state = std::mem::replace(&mut self.slots[slot].state, SlotState::Free);
        let SlotState::Occupied { payload, .. } = state else {
            // resolve only returns occupied slots.
            return None;
        };
        self.release(slot);
        Some(payload)
    }

    /// Move a pending event to a new `(time, class)`, keeping its id
    /// and payload. Equivalent to cancel + schedule: the event re-enters
    /// FIFO order as if scheduled now. Returns false if the id is no
    /// longer live.
    pub fn reschedule(&mut self, id: EventId, time: u64, class: u8) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let SlotState::Occupied { seq: s, .. } = &mut self.slots[slot].state else {
            // resolve only returns occupied slots.
            return false;
        };
        // The old heap entry keeps the stale seq and becomes a
        // tombstone; the id itself stays valid (same generation).
        *s = seq;
        self.heap.push(Reverse((time, class, seq, id)));
        true
    }

    /// Fire time of the next live event, without popping it.
    pub fn peek_time(&mut self) -> Option<u64> {
        self.skim_tombstones();
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    /// Pop the next live event in `(time, class, seq)` order.
    // digg-lint: hot-path
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.skim_tombstones();
        let Reverse((time, class, _seq, id)) = self.heap.pop()?;
        let slot = id.slot();
        let state = std::mem::replace(&mut self.slots[slot].state, SlotState::Free);
        let SlotState::Occupied { payload, .. } = state else {
            // digg-lint: allow(no-lib-unwrap) — heap/slab coherence invariant: skim_tombstones just dropped every dead head
            unreachable!("skim_tombstones left a dead head");
        };
        self.release(slot);
        Some(Event {
            time,
            class,
            id,
            payload,
        })
    }

    /// Drop stale heap entries (cancelled, fired, or superseded by a
    /// reschedule) until the head is live.
    fn skim_tombstones(&mut self) {
        while let Some(Reverse((_, _, seq, id))) = self.heap.peek() {
            let live = self
                .slots
                .get(id.slot())
                .filter(|e| e.generation == id.generation())
                .map(|e| matches!(e.state, SlotState::Occupied { seq: s, .. } if s == *seq))
                .unwrap_or(false);
            if live {
                return;
            }
            self.heap.pop();
        }
    }
}

impl<T: Codec> Snapshot for EventQueue<T> {
    /// Serialized: the full slab shape — `next_seq`, every slot's
    /// generation, the free list verbatim — plus the live events (with
    /// their original ids and seqs) sorted by the queue's own total
    /// order. Carrying the slab shape is what makes a restored queue
    /// allocate *future* ids identically to the original (the
    /// checkpoint/replay bit-identity contract); what is still dropped
    /// are tombstoned heap entries, which are unobservable.
    fn snapshot(&self) -> Vec<u8> {
        let mut entries: Vec<(u64, u8, u64, u64, &T)> = self
            .heap
            .iter()
            .filter_map(|&Reverse((time, class, seq, id))| {
                self.slots
                    .get(id.slot())
                    .filter(|e| e.generation == id.generation())
                    .and_then(|e| match &e.state {
                        SlotState::Occupied { seq: s, payload } if *s == seq => {
                            Some((time, class, seq, id.0, payload))
                        }
                        _ => None,
                    })
            })
            .collect();
        entries.sort_unstable_by_key(|&(time, class, seq, id, _)| (time, class, seq, id));
        let mut w = ByteWriter::new();
        w.put_u64(self.next_seq);
        w.put_usize(self.slots.len());
        for s in &self.slots {
            w.put_u32(s.generation);
        }
        w.put_usize(self.free.len());
        for &f in &self.free {
            w.put_u32(f);
        }
        w.put_usize(entries.len());
        for (time, class, seq, id, payload) in entries {
            w.put_u64(time);
            w.put_u8(class);
            w.put_u64(seq);
            w.put_u64(id);
            payload.encode(&mut w);
        }
        let mut container = SnapshotWriter::new();
        container.section("events", w.into_bytes());
        container.finish()
    }
}

impl<T: Codec> Restore for EventQueue<T> {
    type Context<'a> = ();

    fn restore(bytes: &[u8], _ctx: ()) -> Result<EventQueue<T>, SnapshotError> {
        let reader = SnapshotReader::parse(bytes)?;
        let mut r = reader.section_reader("events")?;
        let next_seq = r.get_u64()?;
        let slot_count = r.get_usize()?;
        let mut q = EventQueue::new();
        q.slots.reserve(slot_count.min(1 << 20));
        for _ in 0..slot_count {
            q.slots.push(Slot {
                generation: r.get_u32()?,
                state: SlotState::Free,
            });
        }
        let free_count = r.get_usize()?;
        let mut on_free = vec![false; slot_count];
        for _ in 0..free_count {
            let f = r.get_u32()?;
            let fi = f as usize;
            if fi >= slot_count {
                return Err(SnapshotError::Malformed(format!(
                    "free-list slot {f} beyond slab size {slot_count}"
                )));
            }
            if std::mem::replace(&mut on_free[fi], true) {
                return Err(SnapshotError::Malformed(format!(
                    "free-list slot {f} listed twice"
                )));
            }
            q.free.push(f);
        }
        let count = r.get_usize()?;
        for _ in 0..count {
            let time = r.get_u64()?;
            let class = r.get_u8()?;
            let seq = r.get_u64()?;
            let id = EventId(r.get_u64()?);
            let payload = T::decode(&mut r)?;
            if seq >= next_seq {
                return Err(SnapshotError::Malformed(format!(
                    "event seq {seq} not below next_seq {next_seq}"
                )));
            }
            let slot = id.slot();
            if slot >= slot_count {
                return Err(SnapshotError::Malformed(format!(
                    "event slot {slot} beyond slab size {slot_count}"
                )));
            }
            if on_free[slot] {
                return Err(SnapshotError::Malformed(format!(
                    "event slot {slot} is also on the free list"
                )));
            }
            let entry = &mut q.slots[slot];
            if entry.generation != id.generation() {
                return Err(SnapshotError::Malformed(format!(
                    "event id generation {} does not match slot generation {}",
                    id.generation(),
                    entry.generation
                )));
            }
            if matches!(entry.state, SlotState::Occupied { .. }) {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate event id {}",
                    id.0
                )));
            }
            entry.state = SlotState::Occupied { seq, payload };
            q.live_len += 1;
            q.heap.push(Reverse((time, class, seq, id)));
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed(
                "trailing bytes after event list".into(),
            ));
        }
        q.next_seq = next_seq;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<&'static str>) -> Vec<(u64, u8, &'static str)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.class, e.payload));
        }
        out
    }

    #[test]
    fn pops_by_time_then_class_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1, "t5c1-first");
        q.schedule(3, 2, "t3c2");
        q.schedule(5, 0, "t5c0");
        q.schedule(5, 1, "t5c1-second");
        q.schedule(3, 1, "t3c1");
        assert_eq!(
            drain(&mut q),
            vec![
                (3, 1, "t3c1"),
                (3, 2, "t3c2"),
                (5, 0, "t5c0"),
                (5, 1, "t5c1-first"),
                (5, 1, "t5c1-second"),
            ]
        );
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, "a");
        q.schedule(1, 0, "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(drain(&mut q), vec![(1, 0, "b")]);
        assert_eq!(q.cancel(a), None, "cancel after drain");
    }

    #[test]
    fn reschedule_moves_and_requeues_fifo() {
        let mut q = EventQueue::new();
        let a = q.schedule(10, 0, "a");
        q.schedule(2, 0, "b");
        assert!(q.reschedule(a, 2, 0), "live event reschedules");
        // `a` re-entered after `b`, so FIFO puts it second.
        assert_eq!(drain(&mut q), vec![(2, 0, "b"), (2, 0, "a")]);
        assert!(!q.reschedule(a, 3, 0), "fired event does not");
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, "a");
        q.schedule(7, 0, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(7));
        let b = q.pop().unwrap();
        assert_eq!((b.time, b.payload), (7, "b"));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn slab_reuses_slots_with_fresh_generations() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, "a");
        q.cancel(a);
        // The freed slot is recycled LIFO; the new id shares the low
        // 32 bits but differs in generation, so the old handle stays
        // dead.
        let b = q.schedule(2, 0, "b");
        assert_eq!(a.slot(), b.slot());
        assert_ne!(a, b);
        assert_eq!(b.generation(), a.generation() + 1);
        assert_eq!(q.cancel(a), None, "stale handle cannot cancel");
        assert_eq!(q.cancel(b), Some("b"));
        // Only one physical slot was ever allocated.
        assert_eq!(q.slots.len(), 1);
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct P(u64);

    impl Codec for P {
        fn encode(&self, out: &mut ByteWriter) {
            out.put_u64(self.0);
        }

        fn decode(r: &mut digg_snapshot::ByteReader<'_>) -> Result<P, SnapshotError> {
            Ok(P(r.get_u64()?))
        }
    }

    fn drain_p(q: &mut EventQueue<P>) -> Vec<(u64, u8, EventId, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.class, e.id, e.payload.0));
        }
        out
    }

    #[test]
    fn snapshot_restore_preserves_order_ids_and_handles() {
        let mut q = EventQueue::new();
        let a = q.schedule(5, 1, P(50));
        let b = q.schedule(3, 0, P(30));
        let c = q.schedule(3, 0, P(31));
        q.schedule(1, 0, P(10));
        q.cancel(b);
        q.reschedule(a, 3, 0); // re-enters FIFO after c
        q.pop(); // fires (1, 0, P(10))

        let bytes = q.snapshot();
        let mut restored: EventQueue<P> = EventQueue::restore(&bytes, ()).unwrap();
        assert_eq!(restored.len(), q.len());
        // Outstanding handles keep working against the restored queue.
        assert!(restored.reschedule(c, 9, 2));
        assert!(q.reschedule(c, 9, 2));
        assert_eq!(drain_p(&mut restored), drain_p(&mut q));
        // Id allocation continues where the original left off: the
        // snapshot carries the slab's generations and free-list order.
        assert_eq!(restored.schedule(0, 0, P(0)), q.schedule(0, 0, P(0)));
    }

    #[test]
    fn snapshot_drops_tombstones() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            let id = q.schedule(i, 0, P(i));
            if i % 2 == 0 {
                q.cancel(id);
            }
        }
        // Tombstoned heap entries are dropped: only live events carry
        // payload bytes (the slab shape itself is a few words/slot).
        let live_events = q.len();
        let full = q.snapshot();
        let restored: EventQueue<P> = EventQueue::restore(&full, ()).unwrap();
        assert_eq!(restored.len(), live_events);
        let again = restored.snapshot();
        assert_eq!(full, again, "snapshot of a restore is byte-identical");
    }

    #[test]
    fn restore_rejects_malformed_counters() {
        let q = {
            let mut q = EventQueue::new();
            q.schedule(1, 0, P(1));
            q
        };
        let bytes = q.snapshot();
        // Rewrite the container with next_seq zeroed: the live event's
        // seq now fails the seq < next_seq bound.
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let payload = reader.section("events").unwrap();
        let mut forged = payload.to_vec();
        forged[..8].fill(0);
        let mut w = SnapshotWriter::new();
        w.section("events", forged);
        match EventQueue::<P>::restore(&w.finish(), ()) {
            Err(SnapshotError::Malformed(_)) => {}
            Err(other) => panic!("expected Malformed, got {other}"),
            Ok(_) => panic!("forged counters restored"),
        }
    }

    #[test]
    fn restore_rejects_free_live_overlap() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, 0, P(1));
        q.schedule(2, 0, P(2));
        q.cancel(a);
        let bytes = q.snapshot();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let payload = reader.section("events").unwrap();
        // Layout: next_seq u64, slot_count u64, generations (2 × u32),
        // free_len u64, free[0] u32, ... Patch free[0] from the freed
        // slot 0 to the *live* slot 1.
        let mut forged = payload.to_vec();
        let free0_at = 8 + 8 + 2 * 4 + 8;
        assert_eq!(&forged[free0_at..free0_at + 4], &0u32.to_le_bytes());
        forged[free0_at..free0_at + 4].copy_from_slice(&1u32.to_le_bytes());
        let mut w = SnapshotWriter::new();
        w.section("events", forged);
        match EventQueue::<P>::restore(&w.finish(), ()) {
            Err(SnapshotError::Malformed(_)) => {}
            Err(other) => panic!("expected Malformed, got {other}"),
            Ok(_) => panic!("free/live overlap restored"),
        }
    }

    #[test]
    fn ids_are_unique_across_the_queue_lifetime() {
        let mut q = EventQueue::new();
        let mut ids = std::collections::HashSet::new();
        for i in 0..100u64 {
            assert!(ids.insert(q.schedule(i % 7, 0, ())));
        }
        while q.pop().is_some() {}
        for i in 0..100u64 {
            assert!(ids.insert(q.schedule(i % 5, 0, ())));
        }
    }
}
