//! Incremental graph construction.

use crate::graph::SocialGraph;
use crate::id::UserId;

/// Collects watch edges and produces an immutable [`SocialGraph`].
///
/// The builder enforces the graph invariants:
///
/// * self-loops are dropped (you cannot be your own fan on Digg);
/// * duplicate edges are deduplicated;
/// * out-of-range endpoints grow the user set (adding edge `(7, 9)` to
///   a 3-user builder yields a 10-user graph) — convenient when
///   replaying scraped edge lists whose id space is discovered on the
///   fly.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(UserId, UserId)>,
}

impl GraphBuilder {
    /// Builder for a graph with at least `n` users.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Record that `fan` watches `watched` (i.e. `watched` is a friend
    /// of `fan`, and `fan` is a fan of `watched`). Self-loops are
    /// silently ignored.
    pub fn add_watch(&mut self, fan: UserId, watched: UserId) {
        if fan == watched {
            return;
        }
        self.n = self.n.max(fan.index() + 1).max(watched.index() + 1);
        self.edges.push((fan, watched));
    }

    /// Number of users the built graph will have.
    pub fn user_count(&self) -> usize {
        self.n
    }

    /// Number of recorded (pre-deduplication) edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into an immutable graph.
    pub fn build(mut self) -> SocialGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut friends: Vec<Vec<UserId>> = vec![Vec::new(); self.n];
        let mut fans: Vec<Vec<UserId>> = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            friends[a.index()].push(b);
            fans[b.index()].push(a);
        }
        // `friends` lists are sorted because edges were sorted by (a, b);
        // `fans` lists are sorted because for fixed b the a's arrive in
        // ascending order too. Sort defensively anyway in debug builds.
        debug_assert!(friends.iter().all(|v| v.windows(2).all(|w| w[0] < w[1])));
        debug_assert!(fans.iter().all(|v| v.windows(2).all(|w| w[0] < w[1])));
        let m = self.edges.len();
        SocialGraph::from_parts(friends, fans, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1)); // duplicate
        b.add_watch(UserId(1), UserId(1)); // self loop
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
        assert!(g.friends(UserId(1)).is_empty());
    }

    #[test]
    fn grows_user_space() {
        let mut b = GraphBuilder::new(0);
        b.add_watch(UserId(5), UserId(2));
        assert_eq!(b.user_count(), 6);
        let g = b.build();
        assert_eq!(g.user_count(), 6);
        assert!(g.watches(UserId(5), UserId(2)));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_watch(UserId(0), UserId(4));
        b.add_watch(UserId(0), UserId(2));
        b.add_watch(UserId(0), UserId(3));
        b.add_watch(UserId(3), UserId(0));
        b.add_watch(UserId(1), UserId(0));
        let g = b.build();
        assert_eq!(g.friends(UserId(0)), &[UserId(2), UserId(3), UserId(4)]);
        assert_eq!(g.fans(UserId(0)), &[UserId(1), UserId(3)]);
    }

    #[test]
    fn pending_edges_counts_raw_inserts() {
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1));
        assert_eq!(b.pending_edges(), 2);
        assert_eq!(b.build().edge_count(), 1);
    }
}
