//! Incremental graph construction.

use crate::graph::SocialGraph;
use crate::id::UserId;

/// Collects watch edges and produces an immutable [`SocialGraph`].
///
/// The builder enforces the graph invariants:
///
/// * self-loops are dropped (you cannot be your own fan on Digg);
/// * duplicate edges are deduplicated;
/// * out-of-range endpoints grow the user set (adding edge `(7, 9)` to
///   a 3-user builder yields a 10-user graph) — convenient when
///   replaying scraped edge lists whose id space is discovered on the
///   fly.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(UserId, UserId)>,
}

impl GraphBuilder {
    /// Builder for a graph with at least `n` users.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Record that `fan` watches `watched` (i.e. `watched` is a friend
    /// of `fan`, and `fan` is a fan of `watched`). Self-loops are
    /// silently ignored.
    pub fn add_watch(&mut self, fan: UserId, watched: UserId) {
        if fan == watched {
            return;
        }
        self.n = self.n.max(fan.index() + 1).max(watched.index() + 1);
        self.edges.push((fan, watched));
    }

    /// Number of users the built graph will have.
    pub fn user_count(&self) -> usize {
        self.n
    }

    /// Number of recorded (pre-deduplication) edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into an immutable CSR graph.
    pub fn build(mut self) -> SocialGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let m = self.edges.len();
        assert!(m <= u32::MAX as usize, "edge count exceeds u32 CSR offsets");

        // Friends view: edges are sorted by (fan, watched), so the
        // target column is already the concatenation of sorted rows.
        let mut friend_offsets = vec![0u32; n + 1];
        for &(a, _) in &self.edges {
            friend_offsets[a.index() + 1] += 1;
        }
        for i in 0..n {
            friend_offsets[i + 1] += friend_offsets[i];
        }
        let friend_targets: Vec<UserId> = self.edges.iter().map(|&(_, b)| b).collect();

        // Fans view: counting sort by target. Scanning edges in (a, b)
        // order writes each fan row's `a`s in ascending order, so rows
        // come out sorted without a second sort.
        let mut fan_offsets = vec![0u32; n + 1];
        for &(_, b) in &self.edges {
            fan_offsets[b.index() + 1] += 1;
        }
        for i in 0..n {
            fan_offsets[i + 1] += fan_offsets[i];
        }
        let mut cursor: Vec<u32> = fan_offsets[..n].to_vec();
        let mut fan_targets = vec![UserId(0); m];
        for &(a, b) in &self.edges {
            let slot = &mut cursor[b.index()];
            fan_targets[*slot as usize] = a;
            *slot += 1;
        }

        SocialGraph::from_csr(friend_offsets, friend_targets, fan_offsets, fan_targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1)); // duplicate
        b.add_watch(UserId(1), UserId(1)); // self loop
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
        assert!(g.friends(UserId(1)).is_empty());
    }

    #[test]
    fn grows_user_space() {
        let mut b = GraphBuilder::new(0);
        b.add_watch(UserId(5), UserId(2));
        assert_eq!(b.user_count(), 6);
        let g = b.build();
        assert_eq!(g.user_count(), 6);
        assert!(g.watches(UserId(5), UserId(2)));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_watch(UserId(0), UserId(4));
        b.add_watch(UserId(0), UserId(2));
        b.add_watch(UserId(0), UserId(3));
        b.add_watch(UserId(3), UserId(0));
        b.add_watch(UserId(1), UserId(0));
        let g = b.build();
        assert_eq!(g.friends(UserId(0)), &[UserId(2), UserId(3), UserId(4)]);
        assert_eq!(g.fans(UserId(0)), &[UserId(1), UserId(3)]);
    }

    #[test]
    fn pending_edges_counts_raw_inserts() {
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1));
        assert_eq!(b.pending_edges(), 2);
        assert_eq!(b.build().edge_count(), 1);
    }
}
