//! Incremental graph construction.

use crate::graph::SocialGraph;
use crate::id::UserId;
use std::fmt;

/// The deduplicated edge count exceeded the `u32` CSR offset space.
///
/// The CSR views index their target arrays with `u32` offsets, so a
/// graph can hold at most `u32::MAX` (~4.29 billion) edges. The error
/// carries the offending count so a failed multi-billion-edge run is
/// diagnosable instead of dying on a bare assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrCapacityError {
    /// The deduplicated edge count that did not fit.
    pub edges: usize,
}

impl fmt::Display for CsrCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph has {} deduplicated edges, exceeding the u32 CSR offset limit of {}",
            self.edges,
            u32::MAX
        )
    }
}

impl std::error::Error for CsrCapacityError {}

/// Fail with a [`CsrCapacityError`] when `m` edges cannot be indexed
/// by `u32` CSR offsets. Shared by the serial and sharded builds.
pub(crate) fn check_csr_capacity(m: usize) -> Result<(), CsrCapacityError> {
    if m <= u32::MAX as usize {
        Ok(())
    } else {
        Err(CsrCapacityError { edges: m })
    }
}

/// Collects watch edges and produces an immutable [`SocialGraph`].
///
/// The builder enforces the graph invariants:
///
/// * self-loops are dropped (you cannot be your own fan on Digg);
/// * duplicate edges are deduplicated;
/// * out-of-range endpoints grow the user set (adding edge `(7, 9)` to
///   a 3-user builder yields a 10-user graph) — convenient when
///   replaying scraped edge lists whose id space is discovered on the
///   fly.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(UserId, UserId)>,
}

impl GraphBuilder {
    /// Builder for a graph with at least `n` users.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Record that `fan` watches `watched` (i.e. `watched` is a friend
    /// of `fan`, and `fan` is a fan of `watched`). Self-loops are
    /// silently ignored.
    pub fn add_watch(&mut self, fan: UserId, watched: UserId) {
        if fan == watched {
            return;
        }
        self.n = self.n.max(fan.index() + 1).max(watched.index() + 1);
        self.edges.push((fan, watched));
    }

    /// Number of users the built graph will have.
    pub fn user_count(&self) -> usize {
        self.n
    }

    /// Number of recorded (pre-deduplication) edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Record a batch of watch edges ([`GraphBuilder::add_watch`] per
    /// pair — self-loops dropped, id space grown as needed).
    pub fn extend_watches(&mut self, edges: impl IntoIterator<Item = (UserId, UserId)>) {
        for (fan, watched) in edges {
            self.add_watch(fan, watched);
        }
    }

    /// Finalise into an immutable CSR graph on the current thread.
    ///
    /// # Panics
    ///
    /// Panics with the offending edge count when the deduplicated edge
    /// count exceeds the `u32` CSR offset space (see
    /// [`GraphBuilder::try_build`] for the fallible form).
    pub fn build(self) -> SocialGraph {
        // digg-lint: allow(no-lib-unwrap) — documented panicking convenience over try_build ("# Panics" above)
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible serial build: `Err` instead of panicking when the edge
    /// count exceeds the `u32` CSR offset space.
    pub fn try_build(self) -> Result<SocialGraph, CsrCapacityError> {
        crate::par_build::serial(self.n, self.edges)
    }

    /// Finalise with the sharded parallel pipeline (see the
    /// `par_build` module docs): per-source-row-range local
    /// sort + dedup, parallel histogram → prefix-summed offsets, and a
    /// parallel scatter into both CSR views. The result is
    /// **bit-identical** to [`GraphBuilder::build`] at any `threads`;
    /// small edge lists fall back to the serial path.
    ///
    /// # Panics
    ///
    /// Panics with the offending edge count when the deduplicated edge
    /// count exceeds the `u32` CSR offset space.
    pub fn build_parallel(self, threads: usize) -> SocialGraph {
        self.try_build_parallel(threads)
            // digg-lint: allow(no-lib-unwrap) — documented panicking convenience over try_build_parallel ("# Panics" above)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`GraphBuilder::build_parallel`].
    pub fn try_build_parallel(self, threads: usize) -> Result<SocialGraph, CsrCapacityError> {
        crate::par_build::build_parallel(self.n, self.edges, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1)); // duplicate
        b.add_watch(UserId(1), UserId(1)); // self loop
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
        assert!(g.friends(UserId(1)).is_empty());
    }

    #[test]
    fn grows_user_space() {
        let mut b = GraphBuilder::new(0);
        b.add_watch(UserId(5), UserId(2));
        assert_eq!(b.user_count(), 6);
        let g = b.build();
        assert_eq!(g.user_count(), 6);
        assert!(g.watches(UserId(5), UserId(2)));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_watch(UserId(0), UserId(4));
        b.add_watch(UserId(0), UserId(2));
        b.add_watch(UserId(0), UserId(3));
        b.add_watch(UserId(3), UserId(0));
        b.add_watch(UserId(1), UserId(0));
        let g = b.build();
        assert_eq!(g.friends(UserId(0)), &[UserId(2), UserId(3), UserId(4)]);
        assert_eq!(g.fans(UserId(0)), &[UserId(1), UserId(3)]);
    }

    #[test]
    fn pending_edges_counts_raw_inserts() {
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(0), UserId(1));
        assert_eq!(b.pending_edges(), 2);
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn extend_watches_applies_add_watch_semantics() {
        let mut b = GraphBuilder::new(0);
        b.extend_watches([
            (UserId(0), UserId(1)),
            (UserId(2), UserId(2)),
            (UserId(4), UserId(0)),
        ]);
        let g = b.build();
        assert_eq!(g.user_count(), 5);
        assert_eq!(g.edge_count(), 2); // self-loop dropped
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut b = GraphBuilder::new(0);
        for i in 0..50u32 {
            b.add_watch(UserId(i % 10), UserId((i * 3) % 17));
            b.add_watch(UserId((i * 7) % 13), UserId(i % 10));
        }
        let serial = b.clone().build();
        for threads in [1, 2, 8] {
            assert_eq!(b.clone().build_parallel(threads), serial);
        }
    }

    #[test]
    fn capacity_error_reports_the_edge_count() {
        assert_eq!(check_csr_capacity(17), Ok(()));
        assert_eq!(check_csr_capacity(u32::MAX as usize), Ok(()));
        let too_many = u32::MAX as usize + 9;
        let err = check_csr_capacity(too_many).unwrap_err();
        assert_eq!(err.edges, too_many);
        let msg = err.to_string();
        assert!(msg.contains(&too_many.to_string()), "message was {msg:?}");
        assert!(msg.contains("u32 CSR offset limit"), "message was {msg:?}");
    }
}
