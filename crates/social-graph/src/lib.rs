//! # social-graph
//!
//! Directed social-graph substrate with Digg's friend/fan semantics.
//!
//! On Digg (paper §3): "The friendship relationship is asymmetric.
//! When user A lists user B as a friend, user A is able to watch the
//! activity of B but not vice versa. We call A the fan of B." In graph
//! terms we store a *watch* edge `A -> B`; then
//!
//! * the **friends** of `A` are the out-neighbours of `A`
//!   (users `A` watches), and
//! * the **fans** of `B` are the in-neighbours of `B`
//!   (users watching `B`).
//!
//! A story a user submits or votes on becomes visible to that user's
//! fans through the Friends interface, so information flows *against*
//! the watch edges: from `B` to its fans.
//!
//! Modules:
//!
//! * [`id`] — compact user identifiers.
//! * [`graph`] — immutable CSR [`SocialGraph`] with O(log d) edge
//!   queries and contiguous adjacency rows.
//! * [`builder`] — incremental construction and deduplication, with a
//!   serial finaliser ([`GraphBuilder::build`]) and a sharded parallel
//!   one ([`GraphBuilder::build_parallel`], bit-identical output; see
//!   the `par_build` module and DESIGN.md §11).
//! * [`visit`] — [`VisitBuffer`], an epoch-stamped user-set scratch
//!   with O(1) clear for per-story sweeps.
//! * [`bitset`] — [`FanBitset`], the word-packed dense counterpart of
//!   `VisitBuffer` (1 bit/user instead of 32, `count_ones` popcount),
//!   keeping sweep scratch cache-resident at millions of users.
//! * [`membership`] — the fan-membership kernel: binary-probe,
//!   two-pointer, galloping and bitset strategies over sorted CSR rows
//!   with measured crossover constants (DESIGN.md §16).
//! * [`probe`] — [`FanProbe`], the incremental fan-membership view
//!   over CSR rows that the per-vote analytics state machine in
//!   `digg-core` streams through (O(1) membership, O(fan-degree)
//!   absorb per vote).
//! * [`view`] — [`FanView`], the read-only adjacency trait that lets
//!   the sweep engines run unchanged over in-memory or mmap-backed
//!   graphs.
//! * [`mmap`] — [`GraphMap`], the versioned, checksummed, 64-byte-
//!   aligned on-disk CSR snapshot mapped read-only into memory (O(1)
//!   load, out-of-core sweeps; the crate's single `unsafe` module).
//! * [`traversal`] — BFS, reachability, weakly connected components.
//! * [`metrics`] — degree sequences, reciprocity, density, clustering.
//! * [`temporal`] — dated fan links and as-of-date snapshot
//!   reconstruction (the paper's Feb-2008 → June-2006 procedure).
//! * [`generators`] — Erdős–Rényi, preferential attachment,
//!   configuration-model and modular random graphs, plus sharded
//!   thread-count-invariant variants of ER and the configuration
//!   model on per-row `StreamRng` counter streams.
//! * [`sampling`] — observation models: snowball crawls and partial
//!   edge observation (scrape-fidelity ablations).
//! * [`io`] — edge-list serialization.

// `deny`, not `forbid`: the one memory-mapping module ([`mmap`])
// carries a scoped `#[allow(unsafe_code)]`, and digg-lint's
// no-unchecked-mmap rule enforces that no other module in the
// workspace does.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod generators;
pub mod graph;
pub mod id;
pub mod io;
pub mod membership;
pub mod metrics;
pub mod mmap;
pub(crate) mod par_build;
pub mod probe;
pub mod sampling;
pub mod temporal;
pub mod traversal;
pub mod view;
pub mod visit;

pub use bitset::FanBitset;
pub use builder::{CsrCapacityError, GraphBuilder};
pub use graph::SocialGraph;
pub use id::UserId;
pub use mmap::{GraphMap, GraphMapError};
pub use probe::FanProbe;
pub use view::FanView;
pub use visit::VisitBuffer;
