//! Compact user identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A user in a [`SocialGraph`](crate::SocialGraph), a dense index in
/// `0..graph.user_count()`.
///
/// Stored as `u32`: the complete June-2006 dataset involves ~17k users
/// and even aggressive synthetic populations stay far below 4 billion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
// repr(transparent) makes a `[u32]` and a `[UserId]` layout-identical,
// which is what lets the mmap-backed `GraphMap` serve its on-disk u32
// target arrays as typed id slices without copying.
#[repr(transparent)]
pub struct UserId(pub u32);

impl UserId {
    /// The dense index as `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `u32::MAX` (a programmer error: the
    /// workspace never builds populations that large).
    #[inline]
    pub fn from_index(i: usize) -> UserId {
        // digg-lint: allow(no-lib-unwrap) — the single checked index→id conversion point the cast rule routes callers to
        UserId(u32::try_from(i).expect("user index exceeds u32 range"))
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> UserId {
        UserId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let u = UserId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId(42));
        assert_eq!(UserId::from(7u32), UserId(7));
    }

    #[test]
    fn display_format() {
        assert_eq!(UserId(3).to_string(), "u3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(UserId(1) < UserId(2));
    }
}
