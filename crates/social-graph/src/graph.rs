//! The immutable directed social graph.

use crate::bitset::FanBitset;
use crate::id::UserId;
use crate::membership;
use crate::view::FanView;
use serde::{Deserialize, Serialize};

/// An immutable directed graph over users `0..user_count`, stored in
/// compressed sparse row (CSR) form in both directions.
///
/// Terminology follows the paper: a *watch edge* `a -> b` means user
/// `a` watches (is a fan of) user `b`; `b` is then one of `a`'s
/// *friends* and `a` one of `b`'s *fans*.
///
/// Each direction is one flat `targets` array indexed by an `offsets`
/// array of length `user_count + 1`: user `u`'s neighbours are
/// `targets[offsets[u] .. offsets[u + 1]]`, sorted ascending. Compared
/// to the earlier `Vec<Vec<UserId>>` layout this removes one pointer
/// chase per adjacency access and keeps whole fan lists contiguous,
/// which is what the story-sweep engine in `digg-core` streams over.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder),
/// which deduplicates edges and drops self-loops; the invariants relied
/// on here (sorted, duplicate-free neighbour lists, symmetric
/// friends/fans views) are established there.
///
/// # Examples
///
/// ```
/// use social_graph::{GraphBuilder, UserId};
///
/// let mut b = GraphBuilder::new(2);
/// b.add_watch(UserId(0), UserId(1)); // 0 watches 1
/// let g = b.build();
/// assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
/// assert_eq!(g.fans(UserId(1)), &[UserId(0)]);
/// assert_eq!(g.fan_count(UserId(1)), 1); // the paper's fans1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocialGraph {
    /// CSR row starts for the friends view; length `user_count + 1`.
    friend_offsets: Vec<u32>,
    /// Concatenated sorted friend lists (users each row watches).
    friend_targets: Vec<UserId>,
    /// CSR row starts for the fans view; length `user_count + 1`.
    fan_offsets: Vec<u32>,
    /// Concatenated sorted fan lists (users watching each row).
    fan_targets: Vec<UserId>,
}

impl SocialGraph {
    /// Internal constructor used by the builder. Both views must be
    /// mutually consistent, with each row sorted and duplicate-free,
    /// and `*_offsets` must be monotone with
    /// `len == fan_offsets.len()` and final entry `targets.len()`.
    pub(crate) fn from_csr(
        friend_offsets: Vec<u32>,
        friend_targets: Vec<UserId>,
        fan_offsets: Vec<u32>,
        fan_targets: Vec<UserId>,
    ) -> SocialGraph {
        debug_assert_eq!(friend_offsets.len(), fan_offsets.len());
        // digg-lint: allow(no-truncating-cast) — debug assertion on already-built u32 CSR offsets; builders reject overflow
        debug_assert_eq!(friend_offsets.last(), Some(&(friend_targets.len() as u32)));
        // digg-lint: allow(no-truncating-cast) — debug assertion on already-built u32 CSR offsets; builders reject overflow
        debug_assert_eq!(fan_offsets.last(), Some(&(fan_targets.len() as u32)));
        debug_assert_eq!(friend_targets.len(), fan_targets.len());
        SocialGraph {
            friend_offsets,
            friend_targets,
            fan_offsets,
            fan_targets,
        }
    }

    /// A graph with `n` users and no edges.
    pub fn empty(n: usize) -> SocialGraph {
        SocialGraph {
            friend_offsets: vec![0; n + 1],
            friend_targets: Vec::new(),
            fan_offsets: vec![0; n + 1],
            fan_targets: Vec::new(),
        }
    }

    /// Number of users (nodes).
    pub fn user_count(&self) -> usize {
        self.friend_offsets.len() - 1
    }

    /// Number of watch edges.
    pub fn edge_count(&self) -> usize {
        self.friend_targets.len()
    }

    #[inline]
    fn row<'a>(offsets: &[u32], targets: &'a [UserId], u: usize) -> &'a [UserId] {
        &targets[offsets[u] as usize..offsets[u + 1] as usize]
    }

    /// Users that `a` watches, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range (ids come from this graph).
    #[inline]
    pub fn friends(&self, a: UserId) -> &[UserId] {
        Self::row(&self.friend_offsets, &self.friend_targets, a.index())
    }

    /// Users watching `b` (its fans), sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn fans(&self, b: UserId) -> &[UserId] {
        Self::row(&self.fan_offsets, &self.fan_targets, b.index())
    }

    /// Out-degree: how many users `a` watches.
    #[inline]
    pub fn friend_count(&self, a: UserId) -> usize {
        let i = a.index();
        (self.friend_offsets[i + 1] - self.friend_offsets[i]) as usize
    }

    /// In-degree: how many fans `b` has. This is the quantity the
    /// paper calls `fans1` when `b` is a story's submitter.
    #[inline]
    pub fn fan_count(&self, b: UserId) -> usize {
        let i = b.index();
        (self.fan_offsets[i + 1] - self.fan_offsets[i]) as usize
    }

    /// Does `a` watch `b`? (Is `a` a fan of `b`?)
    pub fn watches(&self, a: UserId, b: UserId) -> bool {
        self.friends(a).binary_search(&b).is_ok()
    }

    /// Is `a` a fan of *any* of the given users? This is the cascade
    /// membership test: a vote is "in-network" iff the voter is a fan
    /// of any prior voter.
    ///
    /// Dispatches over the [`membership`](crate::membership) kernel's
    /// scalar strategies, iterating the cheaper side:
    /// `O(|candidates| log d)` binary searches for small candidate
    /// sets; when `candidates` happens to be sorted (verifying that
    /// costs one `O(|candidates|)` scan, cheaper than the searches it
    /// replaces), either a sorted two-pointer intersection over
    /// `friends(a)` in `O(d + |candidates|)` when candidates outnumber
    /// friends, or — when the friend list dwarfs the candidate set by
    /// the measured [`membership::GALLOP_RATIO`] — a galloping
    /// (exponential-search) merge that advances through `friends(a)`
    /// in `O(|candidates| log(d / |candidates|))` without restarting
    /// each search from the row head.
    pub fn is_fan_of_any(&self, a: UserId, candidates: &[UserId]) -> bool {
        membership::is_fan_of_any(self.friends(a), candidates)
    }

    /// [`SocialGraph::is_fan_of_any`] with a caller-provided
    /// [`FanBitset`] scratch, unlocking the kernel's bitset strategy
    /// for large *unsorted* candidate sets (the one regime the scalar
    /// merges cannot accelerate). Same boolean for every input; see
    /// [`membership::is_fan_of_any_with`] for the measured density
    /// heuristic.
    pub fn is_fan_of_any_with(
        &self,
        a: UserId,
        candidates: &[UserId],
        scratch: &mut FanBitset,
    ) -> bool {
        membership::is_fan_of_any_with(self.friends(a), candidates, scratch)
    }

    /// Iterate all watch edges `(fan, watched)` in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        (0..self.user_count()).flat_map(move |a| {
            self.friends(UserId::from_index(a))
                .iter()
                .map(move |&b| (UserId::from_index(a), b))
        })
    }

    /// Iterate all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.user_count()).map(UserId::from_index)
    }

    /// Users sorted by descending fan count — the "top users" ranking
    /// used throughout the paper (rank 1 = most fans). Ties are broken
    /// by ascending id for determinism.
    pub fn users_by_fans_desc(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.users().collect();
        ids.sort_by_key(|&u| (std::cmp::Reverse(self.fan_count(u)), u));
        ids
    }

    /// The subgraph induced by `members`: same user-id space, keeping
    /// only watch edges with *both* endpoints in the set. This is the
    /// shape of the paper's first network artifact — the snapshot of
    /// the top-1020 users' friends and fans among themselves.
    ///
    /// Filters the CSR rows of both views directly (a count pass to
    /// size offsets, then a scatter), `O(V + E)` with no sort: the
    /// source rows are already sorted, and dropping targets preserves
    /// that order, so rebuilding through a `GraphBuilder` (and its
    /// `O(E log E)` sort) would only re-derive what the views already
    /// encode.
    pub fn induced_subgraph(&self, members: &[UserId]) -> SocialGraph {
        let mut in_set = vec![false; self.user_count()];
        for &m in members {
            in_set[m.index()] = true;
        }
        let filter_view = |offsets: &[u32], targets: &[UserId]| {
            let n = offsets.len() - 1;
            let mut new_offsets = vec![0u32; n + 1];
            for u in 0..n {
                let kept = if in_set[u] {
                    Self::row(offsets, targets, u)
                        .iter()
                        .filter(|t| in_set[t.index()])
                        // digg-lint: allow(no-truncating-cast) — a row's neighbour count is bounded by the u32 node count
                        .count() as u32
                } else {
                    0
                };
                new_offsets[u + 1] = new_offsets[u] + kept;
            }
            let mut new_targets = Vec::with_capacity(new_offsets[n] as usize);
            for u in 0..n {
                if in_set[u] {
                    new_targets.extend(
                        Self::row(offsets, targets, u)
                            .iter()
                            .filter(|t| in_set[t.index()]),
                    );
                }
            }
            (new_offsets, new_targets)
        };
        let (friend_offsets, friend_targets) =
            filter_view(&self.friend_offsets, &self.friend_targets);
        let (fan_offsets, fan_targets) = filter_view(&self.fan_offsets, &self.fan_targets);
        SocialGraph::from_csr(friend_offsets, friend_targets, fan_offsets, fan_targets)
    }
}

impl FanView for SocialGraph {
    #[inline]
    fn user_count(&self) -> usize {
        SocialGraph::user_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        SocialGraph::edge_count(self)
    }

    #[inline]
    fn friends(&self, a: UserId) -> &[UserId] {
        SocialGraph::friends(self, a)
    }

    #[inline]
    fn fans(&self, b: UserId) -> &[UserId] {
        SocialGraph::fans(self, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> SocialGraph {
        // 0 watches 1, 1 watches 2, 2 watches 0.
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(1), UserId(2));
        b.add_watch(UserId(2), UserId(0));
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::empty(4);
        assert_eq!(g.user_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert!(g.friends(UserId(0)).is_empty());
        assert!(g.fans(UserId(3)).is_empty());
    }

    #[test]
    fn friends_and_fans_are_dual() {
        let g = triangle();
        assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
        assert_eq!(g.fans(UserId(1)), &[UserId(0)]);
        assert_eq!(g.fan_count(UserId(0)), 1);
        assert_eq!(g.friend_count(UserId(0)), 1);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn watches_query() {
        let g = triangle();
        assert!(g.watches(UserId(0), UserId(1)));
        assert!(!g.watches(UserId(1), UserId(0)));
    }

    #[test]
    fn fan_of_any() {
        let g = triangle();
        assert!(g.is_fan_of_any(UserId(0), &[UserId(2), UserId(1)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(2)]));
        assert!(!g.is_fan_of_any(UserId(0), &[]));
    }

    #[test]
    fn fan_of_any_both_branches_agree() {
        // User 0 watches a spread of targets; probe with candidate
        // sets on both sides of the |candidates| > d branch point.
        let mut b = GraphBuilder::new(64);
        for t in [3u32, 9, 17, 30, 52] {
            b.add_watch(UserId(0), UserId(t));
        }
        let g = b.build();
        let reference = |c: &[UserId]| {
            c.iter()
                .any(|&x| g.friends(UserId(0)).binary_search(&x).is_ok())
        };

        // Small (binary-search branch), hit and miss.
        assert!(g.is_fan_of_any(UserId(0), &[UserId(17)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(18)]));
        // Large sorted (two-pointer branch): every subset outcome
        // matches the binary-search reference.
        let sorted_hit: Vec<UserId> = (10..40).map(UserId).collect();
        let sorted_miss: Vec<UserId> = (31..45).map(UserId).collect();
        assert_eq!(
            g.is_fan_of_any(UserId(0), &sorted_hit),
            reference(&sorted_hit)
        );
        assert!(g.is_fan_of_any(UserId(0), &sorted_hit));
        assert_eq!(
            g.is_fan_of_any(UserId(0), &sorted_miss),
            reference(&sorted_miss)
        );
        assert!(!g.is_fan_of_any(UserId(0), &sorted_miss));
        // Large *unsorted* candidates must fall back, not miss.
        let mut unsorted: Vec<UserId> = (10..40).rev().map(UserId).collect();
        assert!(g.is_fan_of_any(UserId(0), &unsorted));
        unsorted.retain(|&u| u != UserId(17) && u != UserId(30));
        assert!(!g.is_fan_of_any(UserId(0), &unsorted));
    }

    #[test]
    fn fan_of_any_galloping_branch_agrees() {
        // User 0 watches every even target in 2..=200: a friend row
        // (100 entries) that dwarfs small sorted candidate sets, so
        // 2..=12-element probes take the galloping branch
        // (d >= 8 * |candidates|).
        let mut b = GraphBuilder::new(256);
        for t in (2u32..202).step_by(2) {
            b.add_watch(UserId(0), UserId(t));
        }
        let g = b.build();
        let friends = g.friends(UserId(0)).to_vec();
        assert_eq!(friends.len(), 100);
        let reference = |c: &[UserId]| c.iter().any(|&x| friends.binary_search(&x).is_ok());

        // Hits at the row head, middle, and tail.
        assert!(g.is_fan_of_any(UserId(0), &[UserId(2), UserId(3)]));
        assert!(g.is_fan_of_any(UserId(0), &[UserId(97), UserId(100)]));
        assert!(g.is_fan_of_any(UserId(0), &[UserId(199), UserId(200)]));
        // Misses below, between, and past the row; duplicates too.
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(0), UserId(1)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(1), UserId(99)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(201), UserId(230)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(3), UserId(3)]));
        assert!(g.is_fan_of_any(UserId(0), &[UserId(4), UserId(4)]));
        // Every small sorted window agrees with the binary-search
        // reference on both sides of the gallop branch point
        // (|candidates| from 2 up past d / GALLOP_RATIO = 12).
        for width in [2usize, 3, 7, 12, 13, 20] {
            for start in (0u32..230).step_by(3) {
                let c: Vec<UserId> = (start..start + width as u32).map(UserId).collect();
                assert_eq!(
                    g.is_fan_of_any(UserId(0), &c),
                    reference(&c),
                    "width {width} start {start}"
                );
            }
        }
        // Sparse candidates force long gallops between hits.
        let sparse: Vec<UserId> = [5u32, 61, 141, 195].map(UserId).to_vec();
        assert!(!g.is_fan_of_any(UserId(0), &sparse));
        let sparse_hit: Vec<UserId> = [5u32, 61, 141, 196].map(UserId).to_vec();
        assert!(g.is_fan_of_any(UserId(0), &sparse_hit));
    }

    #[test]
    fn edges_iterates_all() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(
            es,
            vec![
                (UserId(0), UserId(1)),
                (UserId(1), UserId(2)),
                (UserId(2), UserId(0)),
            ]
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        // Members {0, 1}: only the 0 -> 1 edge survives.
        let sub = g.induced_subgraph(&[UserId(0), UserId(1)]);
        assert_eq!(sub.user_count(), 3); // id space preserved
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.watches(UserId(0), UserId(1)));
        assert!(!sub.watches(UserId(1), UserId(2)));
        // Full membership reproduces the graph; empty gives no edges.
        assert_eq!(g.induced_subgraph(&[UserId(0), UserId(1), UserId(2)]), g);
        assert_eq!(g.induced_subgraph(&[]).edge_count(), 0);
    }

    #[test]
    fn top_user_ranking() {
        let mut b = GraphBuilder::new(4);
        // User 2 gets two fans, user 0 one fan.
        b.add_watch(UserId(1), UserId(2));
        b.add_watch(UserId(3), UserId(2));
        b.add_watch(UserId(2), UserId(0));
        let g = b.build();
        let ranked = g.users_by_fans_desc();
        assert_eq!(ranked[0], UserId(2));
        assert_eq!(ranked[1], UserId(0));
        // Remaining tie (zero fans) broken by id.
        assert_eq!(&ranked[2..], &[UserId(1), UserId(3)]);
    }
}
