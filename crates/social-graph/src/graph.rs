//! The immutable directed social graph.

use crate::id::UserId;
use serde::{Deserialize, Serialize};

/// An immutable directed graph over users `0..user_count`, stored as
/// sorted adjacency lists in both directions.
///
/// Terminology follows the paper: a *watch edge* `a -> b` means user
/// `a` watches (is a fan of) user `b`; `b` is then one of `a`'s
/// *friends* and `a` one of `b`'s *fans*.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder),
/// which deduplicates edges and drops self-loops; the invariants relied
/// on here (sorted, duplicate-free neighbour lists, symmetric
/// friends/fans views) are established there.
///
/// # Examples
///
/// ```
/// use social_graph::{GraphBuilder, UserId};
///
/// let mut b = GraphBuilder::new(2);
/// b.add_watch(UserId(0), UserId(1)); // 0 watches 1
/// let g = b.build();
/// assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
/// assert_eq!(g.fans(UserId(1)), &[UserId(0)]);
/// assert_eq!(g.fan_count(UserId(1)), 1); // the paper's fans1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocialGraph {
    /// `friends[a]` = sorted users that `a` watches (out-neighbours).
    friends: Vec<Vec<UserId>>,
    /// `fans[b]` = sorted users watching `b` (in-neighbours).
    fans: Vec<Vec<UserId>>,
    edge_count: usize,
}

impl SocialGraph {
    /// Internal constructor used by the builder; `friends` and `fans`
    /// must be mutually consistent, sorted, and deduplicated.
    pub(crate) fn from_parts(
        friends: Vec<Vec<UserId>>,
        fans: Vec<Vec<UserId>>,
        edge_count: usize,
    ) -> SocialGraph {
        debug_assert_eq!(friends.len(), fans.len());
        SocialGraph {
            friends,
            fans,
            edge_count,
        }
    }

    /// A graph with `n` users and no edges.
    pub fn empty(n: usize) -> SocialGraph {
        SocialGraph {
            friends: vec![Vec::new(); n],
            fans: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of users (nodes).
    pub fn user_count(&self) -> usize {
        self.friends.len()
    }

    /// Number of watch edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Users that `a` watches, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range (ids come from this graph).
    pub fn friends(&self, a: UserId) -> &[UserId] {
        &self.friends[a.index()]
    }

    /// Users watching `b` (its fans), sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn fans(&self, b: UserId) -> &[UserId] {
        &self.fans[b.index()]
    }

    /// Out-degree: how many users `a` watches.
    pub fn friend_count(&self, a: UserId) -> usize {
        self.friends[a.index()].len()
    }

    /// In-degree: how many fans `b` has. This is the quantity the
    /// paper calls `fans1` when `b` is a story's submitter.
    pub fn fan_count(&self, b: UserId) -> usize {
        self.fans[b.index()].len()
    }

    /// Does `a` watch `b`? (Is `a` a fan of `b`?)
    pub fn watches(&self, a: UserId, b: UserId) -> bool {
        self.friends[a.index()].binary_search(&b).is_ok()
    }

    /// Is `a` a fan of *any* of the given users? This is the cascade
    /// membership test: a vote is "in-network" iff the voter is a fan
    /// of any prior voter.
    ///
    /// Cost is `O(|candidates| log d)`; callers with a hot loop should
    /// iterate the smaller side themselves.
    pub fn is_fan_of_any(&self, a: UserId, candidates: &[UserId]) -> bool {
        candidates.iter().any(|&c| self.watches(a, c))
    }

    /// Iterate all watch edges `(fan, watched)` in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.friends.iter().enumerate().flat_map(|(a, outs)| {
            outs.iter()
                .map(move |&b| (UserId::from_index(a), b))
        })
    }

    /// Iterate all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.user_count()).map(UserId::from_index)
    }

    /// Users sorted by descending fan count — the "top users" ranking
    /// used throughout the paper (rank 1 = most fans). Ties are broken
    /// by ascending id for determinism.
    pub fn users_by_fans_desc(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.users().collect();
        ids.sort_by_key(|&u| (std::cmp::Reverse(self.fan_count(u)), u));
        ids
    }

    /// The subgraph induced by `members`: same user-id space, keeping
    /// only watch edges with *both* endpoints in the set. This is the
    /// shape of the paper's first network artifact — the snapshot of
    /// the top-1020 users' friends and fans among themselves.
    pub fn induced_subgraph(&self, members: &[UserId]) -> SocialGraph {
        let mut in_set = vec![false; self.user_count()];
        for &m in members {
            in_set[m.index()] = true;
        }
        let mut b = crate::builder::GraphBuilder::new(self.user_count());
        for (a, c) in self.edges() {
            if in_set[a.index()] && in_set[c.index()] {
                b.add_watch(a, c);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> SocialGraph {
        // 0 watches 1, 1 watches 2, 2 watches 0.
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(1), UserId(2));
        b.add_watch(UserId(2), UserId(0));
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::empty(4);
        assert_eq!(g.user_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert!(g.friends(UserId(0)).is_empty());
        assert!(g.fans(UserId(3)).is_empty());
    }

    #[test]
    fn friends_and_fans_are_dual() {
        let g = triangle();
        assert_eq!(g.friends(UserId(0)), &[UserId(1)]);
        assert_eq!(g.fans(UserId(1)), &[UserId(0)]);
        assert_eq!(g.fan_count(UserId(0)), 1);
        assert_eq!(g.friend_count(UserId(0)), 1);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn watches_query() {
        let g = triangle();
        assert!(g.watches(UserId(0), UserId(1)));
        assert!(!g.watches(UserId(1), UserId(0)));
    }

    #[test]
    fn fan_of_any() {
        let g = triangle();
        assert!(g.is_fan_of_any(UserId(0), &[UserId(2), UserId(1)]));
        assert!(!g.is_fan_of_any(UserId(0), &[UserId(2)]));
        assert!(!g.is_fan_of_any(UserId(0), &[]));
    }

    #[test]
    fn edges_iterates_all() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(
            es,
            vec![
                (UserId(0), UserId(1)),
                (UserId(1), UserId(2)),
                (UserId(2), UserId(0)),
            ]
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        // Members {0, 1}: only the 0 -> 1 edge survives.
        let sub = g.induced_subgraph(&[UserId(0), UserId(1)]);
        assert_eq!(sub.user_count(), 3); // id space preserved
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.watches(UserId(0), UserId(1)));
        assert!(!sub.watches(UserId(1), UserId(2)));
        // Full membership reproduces the graph; empty gives no edges.
        assert_eq!(
            g.induced_subgraph(&[UserId(0), UserId(1), UserId(2)]),
            g
        );
        assert_eq!(g.induced_subgraph(&[]).edge_count(), 0);
    }

    #[test]
    fn top_user_ranking() {
        let mut b = GraphBuilder::new(4);
        // User 2 gets two fans, user 0 one fan.
        b.add_watch(UserId(1), UserId(2));
        b.add_watch(UserId(3), UserId(2));
        b.add_watch(UserId(2), UserId(0));
        let g = b.build();
        let ranked = g.users_by_fans_desc();
        assert_eq!(ranked[0], UserId(2));
        assert_eq!(ranked[1], UserId(0));
        // Remaining tie (zero fans) broken by id.
        assert_eq!(&ranked[2..], &[UserId(1), UserId(3)]);
    }
}
