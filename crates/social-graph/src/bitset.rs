//! Chunked-bitset membership scratch — the dense counterpart of
//! [`VisitBuffer`](crate::VisitBuffer).
//!
//! Both types answer the same question ("is user `u` in the current
//! set?") with O(1) insert/test and O(1) epoch-bump clear; they differ
//! in layout. `VisitBuffer` spends one `u32` stamp per user — 4 MB of
//! scratch at one million users, which thrashes L2 when the vote-apply
//! hot path probes it at random. [`FanBitset`] packs the same set into
//! one *bit* per user (64-bit words) plus one `u32` epoch per word:
//! 250 KB per million users, so the whole reached-set stays
//! cache-resident through a story sweep. The per-*word* epoch keeps the
//! O(1) clear: a word whose epoch is stale reads as all-zero and is
//! lazily zeroed on first write after a clear.
//!
//! Each word and its epoch live side by side in one 16-byte aligned
//! [`Lane`], so a random-id probe — the only access pattern the vote
//! hot path has — costs exactly one cache line. (Split `words[]` /
//! `epochs[]` arrays cost two lines per probe; at ~20 probes per
//! applied vote that was the single largest slice of the incremental
//! sweep's per-vote budget.)
//!
//! `digg-core`'s `IncrementalSweep` (through
//! [`FanProbe`](crate::FanProbe)) and the bitset branch of the
//! [`membership`](crate::membership) kernel run on this type; the
//! results are bit-identical to the stamp-array paths by construction
//! (same set semantics, different layout).

use crate::id::UserId;

const WORD_BITS: usize = 64;

/// One 64-user chunk: the membership bits and the epoch that validates
/// them, packed so a probe touches a single cache line. `align(16)`
/// keeps a lane from straddling two lines regardless of where the
/// allocator places the `Vec`.
#[derive(Debug, Clone, Copy)]
#[repr(align(16))]
struct Lane {
    /// Bit `u % 64` holds user `u`; meaningful only while `epoch`
    /// matches the set's current epoch.
    word: u64,
    /// Stamp of the clear-generation that last wrote `word`.
    epoch: u32,
}

const EMPTY_LANE: Lane = Lane { word: 0, epoch: 0 };

/// A reusable set of [`UserId`]s stored one bit per user, with O(1)
/// insert, membership test, and clear.
///
/// Membership is "word epoch equals current epoch AND bit set";
/// [`FanBitset::clear`] just increments the epoch, invalidating every
/// word at once. When the epoch wraps around `u32::MAX` both arrays
/// are zeroed once — amortised cost stays O(1), exactly like
/// [`VisitBuffer`](crate::VisitBuffer).
///
/// # Examples
///
/// ```
/// use social_graph::{FanBitset, UserId};
///
/// let mut seen = FanBitset::new(100);
/// assert!(seen.insert(UserId(3)));
/// assert!(!seen.insert(UserId(3))); // already present
/// assert!(seen.contains(UserId(3)));
/// assert_eq!(seen.len(), 1);
/// seen.clear(); // O(1)
/// assert!(!seen.contains(UserId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct FanBitset {
    /// Lane `u / 64` holds user `u` (see [`Lane`]); one epoch stamp
    /// per *word*, not per user — that is the whole point: 0.5 bits of
    /// epoch overhead per user instead of 32.
    lanes: Vec<Lane>,
    epoch: u32,
    len: usize,
    /// Users covered; `lanes` rounds up to whole words, so the precise
    /// capacity is carried separately.
    capacity: usize,
}

impl FanBitset {
    /// A bitset covering users `0..n`, initially empty.
    pub fn new(n: usize) -> FanBitset {
        let words = n.div_ceil(WORD_BITS);
        FanBitset {
            // Epoch 0 would make freshly-zeroed epoch stamps read as
            // "word valid"; the set's own epoch starts at 1.
            lanes: vec![EMPTY_LANE; words],
            epoch: 1,
            len: 0,
            capacity: n,
        }
    }

    /// Number of users this bitset covers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grow the id space to at least `n` users (never shrinks). New
    /// words start stale (epoch 0), so they read as empty.
    pub fn ensure_capacity(&mut self, n: usize) {
        if n > self.capacity {
            let words = n.div_ceil(WORD_BITS);
            self.lanes.resize(words, EMPTY_LANE);
            self.capacity = n;
        }
    }

    /// Number of users currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `u`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the bitset's capacity.
    // digg-lint: hot-path
    #[inline]
    pub fn insert(&mut self, u: UserId) -> bool {
        let i = u.index();
        assert!(i < self.capacity, "user {u:?} beyond bitset capacity");
        let w = i / WORD_BITS;
        let bit = 1u64 << (i % WORD_BITS);
        let lane = &mut self.lanes[w];
        if lane.epoch != self.epoch {
            // First touch of this lane since the last clear: its bits
            // are leftovers from an older epoch.
            lane.epoch = self.epoch;
            lane.word = 0;
        }
        if lane.word & bit != 0 {
            false
        } else {
            lane.word |= bit;
            self.len += 1;
            true
        }
    }

    /// Is `u` in the set? Out-of-capacity ids are simply absent.
    // digg-lint: hot-path
    #[inline]
    pub fn contains(&self, u: UserId) -> bool {
        let i = u.index();
        match self.lanes.get(i / WORD_BITS) {
            Some(lane) => lane.epoch == self.epoch && lane.word & (1u64 << (i % WORD_BITS)) != 0,
            None => false,
        }
    }

    /// Recount the members by popcount over the valid words. Always
    /// equal to [`FanBitset::len`]; exists as the self-check the tests
    /// pin and as the documented use of the word layout (`count_ones`
    /// per 64 users instead of 64 stamp loads).
    pub fn count_ones(&self) -> usize {
        self.lanes
            .iter()
            .filter(|lane| lane.epoch == self.epoch)
            .map(|lane| lane.word.count_ones() as usize)
            .sum()
    }

    /// The members in ascending [`UserId`] order. O(capacity / 64)
    /// word scans plus one `trailing_zeros` per member — meant for
    /// serialization and debugging, not hot paths; the ordering is
    /// deterministic regardless of insertion order, which is what
    /// checkpoint writers need.
    pub fn members(&self) -> impl Iterator<Item = UserId> + '_ {
        self.lanes
            .iter()
            .enumerate()
            .filter(|&(_, lane)| lane.epoch == self.epoch)
            .flat_map(|(wi, lane)| {
                let base = wi * WORD_BITS;
                let mut rest = lane.word;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        return None;
                    }
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(UserId::from_index(base + bit))
                })
            })
    }

    /// Empty the set in O(1) (amortised; see type docs for the
    /// wrap-around case).
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            self.lanes.fill(EMPTY_LANE);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut b = FanBitset::new(130);
        assert!(b.is_empty());
        assert!(b.insert(UserId(0)));
        assert!(b.insert(UserId(64)));
        assert!(b.insert(UserId(129)));
        assert!(!b.insert(UserId(0)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.count_ones(), 3);
        assert!(b.contains(UserId(64)));
        assert!(!b.contains(UserId(63)));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.contains(UserId(0)));
        assert!(b.insert(UserId(0)));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let b = FanBitset::new(10);
        assert!(!b.contains(UserId(10)));
        assert!(!b.contains(UserId(1_000_000)));
    }

    #[test]
    #[should_panic(expected = "beyond bitset capacity")]
    fn out_of_range_insert_panics() {
        // Capacity 10 rounds up to one 64-bit word; ids in 10..64 must
        // still be rejected, not silently admitted into the slack bits.
        let mut b = FanBitset::new(10);
        b.insert(UserId(10));
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut b = FanBitset::new(1);
        b.insert(UserId(0));
        b.ensure_capacity(200);
        assert_eq!(b.capacity(), 200);
        assert!(b.contains(UserId(0)), "growth preserves members");
        assert!(b.insert(UserId(199)));
        b.ensure_capacity(50); // never shrinks
        assert_eq!(b.capacity(), 200);
    }

    #[test]
    fn members_iterate_ascending_regardless_of_insertion_order() {
        let mut b = FanBitset::new(300);
        for u in [257, 5, 0, 64, 63, 128] {
            b.insert(UserId(u));
        }
        let got: Vec<u32> = b.members().map(|u| u.0).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 128, 257]);
        b.clear();
        assert_eq!(b.members().count(), 0);
    }

    #[test]
    fn stale_words_read_empty_after_clear() {
        let mut b = FanBitset::new(128);
        b.insert(UserId(70));
        b.clear();
        // The word still physically holds the old bit; epoch mismatch
        // must hide it from contains, members and count_ones alike.
        assert!(!b.contains(UserId(70)));
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.members().count(), 0);
        // Inserting into the sibling word must not resurrect word 1.
        b.insert(UserId(3));
        assert!(!b.contains(UserId(70)));
        // First write into the stale word lazily zeroes it.
        assert!(b.insert(UserId(64)));
        assert!(!b.contains(UserId(70)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let mut b = FanBitset::new(80);
        b.epoch = u32::MAX - 1;
        for lane in &mut b.lanes {
            lane.epoch = u32::MAX - 1;
        }
        b.insert(UserId(0));
        b.clear(); // epoch -> MAX
        assert!(!b.contains(UserId(0)));
        b.insert(UserId(70));
        b.clear(); // wraps: words and epochs zeroed, epoch back to 1
        assert_eq!(b.epoch, 1);
        assert!(!b.contains(UserId(70)));
        assert!(b.insert(UserId(70)));
        assert!(b.contains(UserId(70)));
    }

    #[test]
    fn agrees_with_visit_buffer_on_a_random_workload() {
        // Same deterministic op sequence through both set types; every
        // observable must match (the bit-identity contract the sweep
        // engine relies on when it swaps layouts).
        let n = 500usize;
        let mut dense = FanBitset::new(n);
        let mut stamps = crate::visit::VisitBuffer::new(n);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for step in 0..4_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = UserId::from_index((x % n as u64) as usize);
            if step % 97 == 0 {
                dense.clear();
                stamps.clear();
            } else {
                assert_eq!(dense.insert(u), stamps.insert(u), "step {step}");
            }
            assert_eq!(dense.contains(u), stamps.contains(u));
            assert_eq!(dense.len(), stamps.len());
        }
        assert_eq!(
            dense.members().collect::<Vec<_>>(),
            stamps.members().collect::<Vec<_>>()
        );
        assert_eq!(dense.count_ones(), stamps.len());
    }
}
