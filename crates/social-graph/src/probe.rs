//! Incremental fan-membership probe over CSR rows.
//!
//! The vote-apply hot path of the analytics engine asks one question
//! per vote — *is this voter inside the fan-union of everyone who
//! voted before?* — and then folds the new voter's own fans into that
//! union. [`FanProbe`] packages exactly that state: an epoch-stamped
//! bitset ([`FanBitset`]) of reached users plus an absorb operation
//! that streams one contiguous CSR fan row at a time, so a membership
//! test is O(1) and absorbing a vote is O(fan-degree of the voter).
//!
//! `digg-core`'s `IncrementalSweep` (and through it the batch
//! `StorySweeper`) is built on this view; the sorted-merge side of the
//! membership family lives in [`SocialGraph::is_fan_of_any`], which
//! answers the same question statelessly from a candidate list.

use crate::bitset::FanBitset;
use crate::id::UserId;
use crate::view::FanView;

/// Reusable incremental membership state: the union of the fans of a
/// growing set of "absorbed" users (for story analytics: the voters so
/// far), with O(1) queries and O(1) reset.
///
/// Backed by a [`FanBitset`] — one bit per user — so the whole
/// reached-set stays cache-resident even at millions of users, which
/// is where the per-vote hot path spends its time. Generic over
/// [`FanView`], so the same probe serves the in-memory graph and the
/// mmap-backed [`GraphMap`](crate::GraphMap).
///
/// # Examples
///
/// ```
/// use social_graph::{FanProbe, GraphBuilder, UserId};
///
/// // User 1 watches user 0 (1 is a fan of 0).
/// let mut b = GraphBuilder::new(3);
/// b.add_watch(UserId(1), UserId(0));
/// let g = b.build();
///
/// let mut probe = FanProbe::new(&g);
/// assert!(!probe.contains(UserId(1)));
/// probe.absorb_fans(&g, UserId(0), |_| {});
/// assert!(probe.contains(UserId(1))); // 1 can now be reached
/// probe.clear(); // O(1); ready for the next story
/// assert!(!probe.contains(UserId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FanProbe {
    reached: FanBitset,
}

impl FanProbe {
    /// A probe sized for `graph`'s user count.
    pub fn new<G: FanView>(graph: &G) -> FanProbe {
        FanProbe::for_users(graph.user_count())
    }

    /// A probe covering users `0..n`.
    pub fn for_users(n: usize) -> FanProbe {
        FanProbe {
            reached: FanBitset::new(n),
        }
    }

    /// Number of users the probe covers.
    pub fn capacity(&self) -> usize {
        self.reached.capacity()
    }

    /// Grow the id space to at least `n` users (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        self.reached.ensure_capacity(n);
    }

    /// Number of distinct users currently reached.
    pub fn len(&self) -> usize {
        self.reached.len()
    }

    /// Is no user reached yet?
    pub fn is_empty(&self) -> bool {
        self.reached.is_empty()
    }

    /// Is `u` reached — a fan of any absorbed user? Out-of-capacity
    /// ids are simply absent.
    // digg-lint: hot-path
    #[inline]
    pub fn contains(&self, u: UserId) -> bool {
        self.reached.contains(u)
    }

    /// Fold `v`'s fans into the reached set by streaming its CSR fan
    /// row; `on_new` fires once per fan seen for the first time (the
    /// hook audience accounting hangs off). O(fan-degree of `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `graph` (ids come from the
    /// graph) or if a fan id exceeds the probe's capacity.
    // digg-lint: hot-path
    #[inline]
    pub fn absorb_fans<G: FanView>(
        &mut self,
        graph: &G,
        v: UserId,
        mut on_new: impl FnMut(UserId),
    ) {
        for &f in graph.fans(v) {
            if self.reached.insert(f) {
                on_new(f);
            }
        }
    }

    /// Mark `u` reached directly, without streaming a CSR row; returns
    /// `true` on first sighting. For checkpoint restore, which
    /// re-inserts a serialized member list — analytics paths should go
    /// through [`FanProbe::absorb_fans`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the probe's capacity.
    #[inline]
    pub fn insert(&mut self, u: UserId) -> bool {
        self.reached.insert(u)
    }

    /// The reached users in ascending [`UserId`] order. O(capacity / 64)
    /// word scans; see [`FanBitset::members`].
    pub fn members(&self) -> impl Iterator<Item = UserId> + '_ {
        self.reached.members()
    }

    /// Reset to the empty state in O(1) (amortised — see
    /// [`FanBitset::clear`]).
    pub fn clear(&mut self) {
        self.reached.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::SocialGraph;

    /// Fans: 0 <- {1, 2, 3}; 4 <- {2, 5}.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(6);
        for f in [1, 2, 3] {
            b.add_watch(UserId(f), UserId(0));
        }
        for f in [2, 5] {
            b.add_watch(UserId(f), UserId(4));
        }
        b.build()
    }

    #[test]
    fn absorb_reports_only_first_sightings() {
        let g = graph();
        let mut probe = FanProbe::new(&g);
        let mut fresh = Vec::new();
        probe.absorb_fans(&g, UserId(0), |u| fresh.push(u));
        assert_eq!(fresh, vec![UserId(1), UserId(2), UserId(3)]);
        assert_eq!(probe.len(), 3);
        // 2 is already reached; only 5 is new from 4's row.
        fresh.clear();
        probe.absorb_fans(&g, UserId(4), |u| fresh.push(u));
        assert_eq!(fresh, vec![UserId(5)]);
        assert_eq!(probe.len(), 4);
        assert!(probe.contains(UserId(2)));
        assert!(!probe.contains(UserId(0)));
    }

    #[test]
    fn clear_is_a_full_reset() {
        let g = graph();
        let mut probe = FanProbe::new(&g);
        probe.absorb_fans(&g, UserId(0), |_| {});
        assert!(!probe.is_empty());
        probe.clear();
        assert!(probe.is_empty());
        assert!(!probe.contains(UserId(1)));
        // Reusable after the reset.
        probe.absorb_fans(&g, UserId(4), |_| {});
        assert!(probe.contains(UserId(5)));
        assert!(!probe.contains(UserId(1)));
    }

    #[test]
    fn capacity_grows_but_never_shrinks() {
        let mut probe = FanProbe::for_users(2);
        assert_eq!(probe.capacity(), 2);
        probe.ensure_capacity(8);
        assert_eq!(probe.capacity(), 8);
        probe.ensure_capacity(4);
        assert_eq!(probe.capacity(), 8);
        assert!(!probe.contains(UserId(20)));
    }

    #[test]
    fn members_report_the_reached_set_in_ascending_order() {
        let g = graph();
        let mut probe = FanProbe::new(&g);
        probe.absorb_fans(&g, UserId(4), |_| {});
        probe.absorb_fans(&g, UserId(0), |_| {});
        let got: Vec<UserId> = probe.members().collect();
        assert_eq!(got, vec![UserId(1), UserId(2), UserId(3), UserId(5)]);
    }

    #[test]
    fn users_with_no_fans_absorb_to_nothing() {
        let g = graph();
        let mut probe = FanProbe::new(&g);
        let mut called = false;
        probe.absorb_fans(&g, UserId(1), |_| called = true);
        assert!(!called);
        assert!(probe.is_empty());
    }
}
