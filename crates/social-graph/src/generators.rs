//! Random graph generators.
//!
//! Four families, each motivated by the paper:
//!
//! * [`erdos_renyi`] — the homogeneous baseline the future-work section
//!   contrasts against (epidemic thresholds on ER vs scale-free).
//! * [`preferential_attachment`] — directed PA in which newcomers
//!   watch existing users proportionally to fan count; produces the
//!   heavy-tailed fan distribution observed on Digg (top users have
//!   most fans).
//! * [`configuration_model`] — wire a prescribed out-degree sequence to
//!   targets drawn from a prescribed attractiveness; used to build
//!   populations whose fan counts match a chosen power law exactly.
//! * [`modular`] — planted community structure (dense inside blocks,
//!   sparse across), the substrate for the cascades-in-modular-networks
//!   experiments (ref \[5\] of the paper).
//!
//! All generators are deterministic given the `Rng` state. Two carry
//! sharded variants — [`erdos_renyi_sharded`] and
//! [`configuration_model_sharded`] — that draw every row from its own
//! [`StreamRng`] counter stream, so their output is a pure function of
//! `(seed, params)` and **bit-identical at any thread count**; the
//! shard fan-out is a pure throughput knob. Preferential attachment
//! has no sharded variant by design: each newcomer's target
//! distribution depends on the fan counts produced by *every* earlier
//! edge, so the process is inherently sequential (DESIGN.md §11).

use crate::builder::GraphBuilder;
use crate::graph::SocialGraph;
use crate::id::UserId;
use des_core::StreamRng;
use digg_stats::sampling::AliasTable;
use rand::Rng;

/// Stream salt for the per-row Erdős–Rényi skip-sampling streams.
const ER_ROW_STREAM: u64 = 0x4552_5f52_4f57; // "ER_ROW"
/// Stream salt for the per-row configuration-model draw streams.
const CM_ROW_STREAM: u64 = 0x434d_5f52_4f57; // "CM_ROW"

/// Directed Erdős–Rényi `G(n, p)`: each ordered pair gets a watch edge
/// independently with probability `p`.
///
/// Uses geometric skipping, so cost is proportional to the number of
/// edges rather than `n^2`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> SocialGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n == 0 || p == 0.0 {
        return b.build();
    }
    let total = (n as u128) * (n as u128); // ordered pairs incl. diagonal
    if p >= 1.0 {
        for a in 0..n {
            for c in 0..n {
                if a != c {
                    b.add_watch(UserId::from_index(a), UserId::from_index(c));
                }
            }
        }
        return b.build();
    }
    // Skip-sampling over the flattened pair index; self-pairs are
    // dropped by the builder.
    let lq = (1.0 - p).ln();
    let mut idx: u128 = 0;
    loop {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        let skip = (u.ln() / lq).floor() as u128;
        idx = idx.saturating_add(skip).saturating_add(1);
        if idx > total {
            break;
        }
        let flat = (idx - 1) as u64;
        let a = (flat / n as u64) as usize;
        let c = (flat % n as u64) as usize;
        b.add_watch(UserId::from_index(a), UserId::from_index(c));
    }
    b.build()
}

/// Sharded Erdős–Rényi `G(n, p)`: row `a`'s targets are skip-sampled
/// from a dedicated [`StreamRng`] stream keyed by `(seed, a)`, rows
/// fan out across `threads` workers, and the already-sorted rows are
/// assembled straight into CSR (no global sort).
///
/// Because each row's draws come from its own counter stream, the
/// output is a pure function of `(seed, n, p)` — bit-identical at any
/// `threads` — but it is a *different* (equally distributed) sample
/// than [`erdos_renyi`] would produce from a sequential `Rng`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`, or if the realised edge count
/// exceeds the `u32` CSR offset space.
pub fn erdos_renyi_sharded(seed: u64, n: usize, p: f64, threads: usize) -> SocialGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if n == 0 || p == 0.0 {
        return SocialGraph::empty(n);
    }
    let rows_idx: Vec<usize> = (0..n).collect();
    let rows: Vec<Vec<UserId>> = des_core::par_map(&rows_idx, threads, |&a| {
        if p >= 1.0 {
            return (0..n).filter(|&c| c != a).map(UserId::from_index).collect();
        }
        let mut rng = StreamRng::keyed(seed, &[ER_ROW_STREAM, a as u64]);
        let lq = (1.0 - p).ln();
        let mut row = Vec::new();
        let mut col: u64 = 0; // 1-based position within this row's n columns
        loop {
            let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
            let skip = (u.ln() / lq).floor() as u64;
            col = col.saturating_add(skip).saturating_add(1);
            if col > n as u64 {
                break;
            }
            let c = (col - 1) as usize;
            if c != a {
                row.push(UserId::from_index(c));
            }
        }
        row
    });
    // digg-lint: allow(no-lib-unwrap) — documented panicking convenience over the fallible CSR build; generators are test/bench-sized
    crate::par_build::from_sorted_rows(&rows, threads).unwrap_or_else(|e| panic!("{e}"))
}

/// Directed preferential attachment. Users arrive one at a time; each
/// new user creates `m` watch edges to existing users chosen with
/// probability proportional to `fan_count + smoothing`. The first
/// `m + 1` users form a seed clique of mutual watches.
///
/// There is deliberately **no sharded variant**: the target weights
/// are the *global* fan counts accumulated by all prior arrivals, so
/// edge `k` depends on edges `0..k` and the process cannot be split
/// into independent row-range streams without changing the model
/// (DESIGN.md §11). Build heavy-tailed populations at scale with
/// [`configuration_model_sharded`] instead, which fixes the
/// attractiveness sequence up front.
///
/// The resulting *fan* (in-degree) distribution is a power law with
/// exponent `≈ 2 + smoothing / m`; `smoothing = 1` gives the classic
/// `α ≈ 2 + 1/m` directed Barabási–Albert tail.
///
/// # Panics
///
/// Panics if `m == 0` or `smoothing < 0`.
pub fn preferential_attachment<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    smoothing: f64,
) -> SocialGraph {
    assert!(m > 0, "each newcomer must create at least one edge");
    assert!(smoothing >= 0.0, "smoothing must be non-negative");
    let mut b = GraphBuilder::new(n);
    let seed = (m + 1).min(n);
    let mut fans = vec![0u64; n];
    for a in 0..seed {
        for (c, fan_count) in fans.iter_mut().enumerate().take(seed) {
            if a != c {
                b.add_watch(UserId::from_index(a), UserId::from_index(c));
                *fan_count += 1;
            }
        }
    }
    for newcomer in seed..n {
        // Weighted sampling without replacement among 0..newcomer via
        // repeated draws; collisions are re-drawn (cheap: m is small).
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let total_w: f64 = fans[..newcomer].iter().map(|&f| f as f64 + smoothing).sum();
        let mut guard = 0usize;
        while targets.len() < m.min(newcomer) && guard < 10_000 {
            guard += 1;
            let mut x = rng.random::<f64>() * total_w;
            let mut pick = newcomer - 1;
            for (i, &f) in fans[..newcomer].iter().enumerate() {
                let w = f as f64 + smoothing;
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            b.add_watch(UserId::from_index(newcomer), UserId::from_index(t));
            fans[t] += 1;
        }
    }
    b.build()
}

/// Configuration-style model: user `a` creates `out_degrees[a]` watch
/// edges toward targets drawn proportionally to `attractiveness`
/// (without replacement per source; self-loops and duplicates are
/// dropped, so realised degrees can fall slightly short — standard for
/// simple-graph configuration models).
///
/// # Panics
///
/// Panics if lengths differ, or any attractiveness is negative or
/// non-finite.
pub fn configuration_model<R: Rng + ?Sized>(
    rng: &mut R,
    out_degrees: &[usize],
    attractiveness: &[f64],
) -> SocialGraph {
    assert_eq!(
        out_degrees.len(),
        attractiveness.len(),
        "degree and attractiveness sequences must align"
    );
    let n = out_degrees.len();
    let mut b = GraphBuilder::new(n);
    let Some(table) = AliasTable::new(attractiveness) else {
        return b.build(); // all-zero attractiveness: no edges possible
    };
    for (a, &d) in out_degrees.iter().enumerate() {
        let mut chosen: Vec<usize> = Vec::with_capacity(d);
        // Cap attempts so pathological inputs (e.g. single positive
        // weight) terminate; realised degree may be lower.
        let mut attempts = 0usize;
        while chosen.len() < d && attempts < 50 * (d + 1) {
            attempts += 1;
            let t = table.sample(rng);
            if t != a && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            b.add_watch(UserId::from_index(a), UserId::from_index(t));
        }
    }
    b.build()
}

/// Sharded configuration model: row `a` draws its
/// `out_degrees[a]` targets from a shared [`AliasTable`] using a
/// dedicated [`StreamRng`] stream keyed by `(seed, a)`, and rows fan
/// out across `threads` workers.
///
/// Per-row streams make the output a pure function of
/// `(seed, out_degrees, attractiveness)` — bit-identical at any
/// `threads` — but a *different* (equally distributed) sample than
/// [`configuration_model`] would draw from a sequential `Rng`. The
/// same rejection rules apply: self-loops and per-source duplicates
/// are re-drawn with a capped attempt budget, so realised degrees can
/// fall slightly short.
///
/// # Panics
///
/// Panics if lengths differ, any attractiveness is negative or
/// non-finite, or the realised edge count exceeds the `u32` CSR
/// offset space.
pub fn configuration_model_sharded(
    seed: u64,
    out_degrees: &[usize],
    attractiveness: &[f64],
    threads: usize,
) -> SocialGraph {
    assert_eq!(
        out_degrees.len(),
        attractiveness.len(),
        "degree and attractiveness sequences must align"
    );
    let n = out_degrees.len();
    let Some(table) = AliasTable::new(attractiveness) else {
        return SocialGraph::empty(n); // all-zero attractiveness: no edges possible
    };
    let rows_idx: Vec<usize> = (0..n).collect();
    let rows: Vec<Vec<UserId>> = des_core::par_map(&rows_idx, threads, |&a| {
        let mut rng = StreamRng::keyed(seed, &[CM_ROW_STREAM, a as u64]);
        let d = out_degrees[a];
        let mut chosen: Vec<usize> = Vec::with_capacity(d);
        let mut attempts = 0usize;
        while chosen.len() < d && attempts < 50 * (d + 1) {
            attempts += 1;
            let t = table.sample(&mut rng);
            if t != a && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        let mut row: Vec<UserId> = chosen.into_iter().map(UserId::from_index).collect();
        row.sort_unstable();
        row
    });
    // digg-lint: allow(no-lib-unwrap) — documented panicking convenience over the fallible CSR build; generators are test/bench-sized
    crate::par_build::from_sorted_rows(&rows, threads).unwrap_or_else(|e| panic!("{e}"))
}

/// Planted-partition ("modular") directed graph: `communities` blocks
/// of equal size; an ordered pair inside a block gets an edge with
/// probability `p_in`, across blocks with `p_out`.
///
/// # Panics
///
/// Panics if `communities == 0` or probabilities are outside `[0, 1]`.
pub fn modular<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
) -> SocialGraph {
    assert!(communities > 0, "need at least one community");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for c in 0..n {
            if a == c {
                continue;
            }
            let same = community_of(a, n, communities) == community_of(c, n, communities);
            let p = if same { p_in } else { p_out };
            if rng.random::<f64>() < p {
                b.add_watch(UserId::from_index(a), UserId::from_index(c));
            }
        }
    }
    b.build()
}

/// Community index of user `a` under the equal-block layout used by
/// [`modular`].
pub fn community_of(a: usize, n: usize, communities: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let size = n.div_ceil(communities);
    (a / size).min(communities - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2006)
    }

    #[test]
    fn er_edge_count_matches_expectation() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 500, 0.01);
        let expected = 500.0 * 499.0 * 0.01;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 50.0,
            "edges {m} vs expected {expected}"
        );
    }

    #[test]
    fn er_degenerate_params() {
        let mut r = rng();
        assert_eq!(erdos_renyi(&mut r, 0, 0.5).user_count(), 0);
        assert_eq!(erdos_renyi(&mut r, 10, 0.0).edge_count(), 0);
        let full = erdos_renyi(&mut r, 5, 1.0);
        assert_eq!(full.edge_count(), 20);
    }

    #[test]
    fn pa_produces_heavy_tail() {
        let mut r = rng();
        let g = preferential_attachment(&mut r, 3000, 3, 1.0);
        let fans = metrics::fan_counts(&g);
        let max = *fans.iter().max().unwrap();
        let mean = fans.iter().sum::<u64>() as f64 / fans.len() as f64;
        // Hubs should dwarf the mean.
        assert!(
            max as f64 > 8.0 * mean,
            "max fan count {max} vs mean {mean}"
        );
        // MLE exponent should land near 2 + 1/m ≈ 2.33.
        let fit = digg_stats::fit::fit_alpha(&fans, 5).expect("tail exists");
        assert!(
            (1.8..3.2).contains(&fit.alpha),
            "alpha {} outside plausible band",
            fit.alpha
        );
    }

    #[test]
    fn pa_every_newcomer_watches_m_users() {
        let mut r = rng();
        let m = 2;
        let g = preferential_attachment(&mut r, 200, m, 1.0);
        for u in 3..200 {
            assert_eq!(
                g.friend_count(UserId::from_index(u)),
                m,
                "user {u} should watch exactly {m} users"
            );
        }
    }

    #[test]
    fn pa_seed_clique_is_mutual() {
        let mut r = rng();
        let g = preferential_attachment(&mut r, 50, 2, 1.0);
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert!(g.watches(UserId(a), UserId(b)));
                }
            }
        }
    }

    #[test]
    fn configuration_model_respects_out_degrees() {
        let mut r = rng();
        let degs = vec![3usize; 100];
        let attr = vec![1.0; 100];
        let g = configuration_model(&mut r, &degs, &attr);
        for u in g.users() {
            assert_eq!(g.friend_count(u), 3);
        }
    }

    #[test]
    fn configuration_model_zero_attractiveness() {
        let mut r = rng();
        let g = configuration_model(&mut r, &[2, 2], &[0.0, 0.0]);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn configuration_model_skewed_targets() {
        let mut r = rng();
        let n = 200;
        let degs = vec![5usize; n];
        let mut attr = vec![1.0; n];
        attr[0] = 500.0; // user 0 hoards fans
        let g = configuration_model(&mut r, &degs, &attr);
        let f0 = g.fan_count(UserId(0));
        let avg: f64 = (1..n)
            .map(|i| g.fan_count(UserId::from_index(i)))
            .sum::<usize>() as f64
            / (n - 1) as f64;
        assert!(f0 as f64 > 10.0 * avg, "hub fans {f0} vs avg {avg}");
    }

    #[test]
    fn er_sharded_is_thread_invariant_and_plausible() {
        let g1 = erdos_renyi_sharded(9, 600, 0.01, 1);
        for threads in [2, 3, 8] {
            assert_eq!(erdos_renyi_sharded(9, 600, 0.01, threads), g1);
        }
        let expected = 600.0 * 599.0 * 0.01;
        let m = g1.edge_count() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 50.0,
            "edges {m} vs expected {expected}"
        );
        for u in g1.users() {
            assert!(!g1.watches(u, u), "self-loop at {u}");
        }
    }

    #[test]
    fn er_sharded_degenerate_params() {
        assert_eq!(erdos_renyi_sharded(1, 0, 0.5, 4).user_count(), 0);
        assert_eq!(erdos_renyi_sharded(1, 10, 0.0, 4).edge_count(), 0);
        let full = erdos_renyi_sharded(1, 5, 1.0, 4);
        assert_eq!(full.edge_count(), 20);
    }

    #[test]
    fn configuration_model_sharded_is_thread_invariant() {
        let degs = vec![3usize; 150];
        let mut attr = vec![1.0; 150];
        attr[0] = 200.0;
        let g1 = configuration_model_sharded(11, &degs, &attr, 1);
        for threads in [2, 8] {
            assert_eq!(configuration_model_sharded(11, &degs, &attr, threads), g1);
        }
        for u in g1.users() {
            assert_eq!(g1.friend_count(u), 3);
        }
        // The hub still hoards fans under per-row streams.
        assert!(
            g1.fan_count(UserId(0)) > 100,
            "hub fans {}",
            g1.fan_count(UserId(0))
        );
    }

    #[test]
    fn configuration_model_sharded_zero_attractiveness() {
        let g = configuration_model_sharded(3, &[2, 2], &[0.0, 0.0], 4);
        assert_eq!(g.user_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn modular_graph_prefers_in_block_edges() {
        let mut r = rng();
        let n = 120;
        let k = 4;
        let g = modular(&mut r, n, k, 0.2, 0.005);
        let mut inside = 0usize;
        let mut across = 0usize;
        for (a, b) in g.edges() {
            if community_of(a.index(), n, k) == community_of(b.index(), n, k) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across, "inside {inside} across {across}");
    }

    #[test]
    fn community_layout_is_balanced() {
        assert_eq!(community_of(0, 100, 4), 0);
        assert_eq!(community_of(99, 100, 4), 3);
        assert_eq!(community_of(0, 0, 4), 0);
        // Non-divisible sizes still map everyone to a valid block.
        for a in 0..10 {
            assert!(community_of(a, 10, 3) < 3);
        }
    }
}
