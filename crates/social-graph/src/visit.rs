//! Epoch-stamped visit scratch.
//!
//! Story-level analytics repeatedly need small user sets (the fan
//! union of prior voters, the voter set itself) over the same graph.
//! A `HashSet` per story allocates and hashes; a `Vec<bool>` per story
//! pays an O(user_count) clear. [`VisitBuffer`] keeps one `u32` stamp
//! per user and bumps a generation counter to clear in O(1), so a
//! caller processing thousands of stories allocates exactly once.

use crate::id::UserId;

/// A reusable set of [`UserId`]s with O(1) insert, membership test,
/// and clear.
///
/// Membership is "stamp equals current epoch"; [`VisitBuffer::clear`]
/// just increments the epoch. When the epoch wraps around `u32::MAX`
/// the stamp array is zeroed once — amortised cost stays O(1).
///
/// # Examples
///
/// ```
/// use social_graph::{UserId, VisitBuffer};
///
/// let mut seen = VisitBuffer::new(10);
/// assert!(seen.insert(UserId(3)));
/// assert!(!seen.insert(UserId(3))); // already present
/// assert!(seen.contains(UserId(3)));
/// assert_eq!(seen.len(), 1);
/// seen.clear(); // O(1)
/// assert!(!seen.contains(UserId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct VisitBuffer {
    stamps: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl VisitBuffer {
    /// A buffer covering users `0..n`, initially empty.
    pub fn new(n: usize) -> VisitBuffer {
        VisitBuffer {
            stamps: vec![0; n],
            // Epoch 0 would make freshly-zeroed stamps read as
            // "present"; start at 1.
            epoch: 1,
            len: 0,
        }
    }

    /// Number of users this buffer covers.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Grow the id space to at least `n` users (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
    }

    /// Number of users currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `u`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the buffer's capacity.
    #[inline]
    pub fn insert(&mut self, u: UserId) -> bool {
        let slot = &mut self.stamps[u.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            self.len += 1;
            true
        }
    }

    /// Is `u` in the set? Out-of-capacity ids are simply absent.
    #[inline]
    pub fn contains(&self, u: UserId) -> bool {
        self.stamps.get(u.index()).copied() == Some(self.epoch)
    }

    /// The members in ascending [`UserId`] order. O(capacity) — meant
    /// for serialization and debugging, not hot paths; the ordering is
    /// deterministic regardless of insertion order, which is what
    /// checkpoint writers need.
    pub fn members(&self) -> impl Iterator<Item = UserId> + '_ {
        self.stamps
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == self.epoch)
            .map(|(i, _)| UserId::from_index(i))
    }

    /// Empty the set in O(1) (amortised; see type docs for the
    /// wrap-around case).
    pub fn clear(&mut self) {
        self.len = 0;
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut b = VisitBuffer::new(4);
        assert!(b.is_empty());
        assert!(b.insert(UserId(0)));
        assert!(b.insert(UserId(3)));
        assert!(!b.insert(UserId(0)));
        assert_eq!(b.len(), 2);
        assert!(b.contains(UserId(0)));
        assert!(!b.contains(UserId(1)));
        b.clear();
        assert!(b.is_empty());
        assert!(!b.contains(UserId(0)));
        assert!(b.insert(UserId(0)));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let b = VisitBuffer::new(2);
        assert!(!b.contains(UserId(9)));
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut b = VisitBuffer::new(1);
        b.ensure_capacity(5);
        assert_eq!(b.capacity(), 5);
        assert!(b.insert(UserId(4)));
        b.ensure_capacity(3); // never shrinks
        assert_eq!(b.capacity(), 5);
    }

    #[test]
    fn members_iterate_ascending_regardless_of_insertion_order() {
        let mut b = VisitBuffer::new(6);
        for u in [5, 0, 3] {
            b.insert(UserId(u));
        }
        let got: Vec<UserId> = b.members().collect();
        assert_eq!(got, vec![UserId(0), UserId(3), UserId(5)]);
        b.clear();
        assert_eq!(b.members().count(), 0);
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let mut b = VisitBuffer::new(2);
        b.epoch = u32::MAX - 1;
        b.insert(UserId(0));
        b.clear(); // epoch -> MAX
        assert!(!b.contains(UserId(0)));
        b.insert(UserId(1));
        b.clear(); // wraps: stamps zeroed, epoch back to 1
        assert_eq!(b.epoch, 1);
        assert!(!b.contains(UserId(1)));
        assert!(b.insert(UserId(1)));
        assert!(b.contains(UserId(1)));
    }
}
