//! Read-only access abstraction over friend/fan adjacency.
//!
//! The analytics engines (`digg-core`'s incremental sweep, the batch
//! sweeper, the parallel sweep map) only ever *read* CSR rows. This
//! trait names exactly that capability so those engines can run
//! unchanged over either backing store:
//!
//! * [`SocialGraph`](crate::SocialGraph) — the in-memory CSR built by
//!   `GraphBuilder`;
//! * [`GraphMap`](crate::GraphMap) — the mmap-backed on-disk CSR
//!   snapshot, serving graphs larger than RAM with O(1) load.
//!
//! Both implementations expose the same sorted, duplicate-free rows,
//! so any algorithm generic over `FanView` is bit-identical across
//! backings by construction — the cross-check the `mmap_sweep`
//! experiment enforces end-to-end.

use crate::id::UserId;
use crate::membership;

/// Read-only friend/fan adjacency: contiguous sorted CSR rows per
/// user, Digg watch semantics (`a` watches `b` ⇔ `a` is a fan of
/// `b`; see the crate docs).
///
/// Implementors guarantee each row is sorted ascending and
/// duplicate-free, and that `friends`/`fans` are transposes of one
/// another — the invariants `SocialGraph`'s builder establishes and
/// `GraphMap::open` verifies.
pub trait FanView {
    /// Number of users (the id space is `0..user_count`).
    fn user_count(&self) -> usize;

    /// Number of watch edges.
    fn edge_count(&self) -> usize;

    /// Users that `a` watches (its friends), sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range (ids come from this graph).
    fn friends(&self, a: UserId) -> &[UserId];

    /// Users watching `b` (its fans), sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    fn fans(&self, b: UserId) -> &[UserId];

    /// Out-degree: how many users `a` watches.
    #[inline]
    fn friend_count(&self, a: UserId) -> usize {
        self.friends(a).len()
    }

    /// In-degree: how many fans `b` has (the paper's `fans1` when `b`
    /// is a story's submitter).
    #[inline]
    fn fan_count(&self, b: UserId) -> usize {
        self.fans(b).len()
    }

    /// Is `a` a fan of *any* of the given users? The cascade
    /// membership test, dispatched over the
    /// [`membership`] kernel's scalar strategies (see
    /// [`SocialGraph::is_fan_of_any`](crate::SocialGraph::is_fan_of_any)
    /// for the heuristic).
    #[inline]
    fn is_fan_of_any(&self, a: UserId, candidates: &[UserId]) -> bool {
        membership::is_fan_of_any(self.friends(a), candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn social_graph_implements_the_view() {
        let mut b = GraphBuilder::new(4);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.add_watch(UserId(1), UserId(3));
        let g = b.build();

        fn fans1<G: FanView>(g: &G, submitter: UserId) -> usize {
            g.fan_count(submitter)
        }
        assert_eq!(fans1(&g, UserId(0)), 2);
        assert_eq!(FanView::user_count(&g), 4);
        assert_eq!(FanView::edge_count(&g), 3);
        assert_eq!(FanView::friends(&g, UserId(1)), &[UserId(0), UserId(3)]);
        assert_eq!(FanView::fans(&g, UserId(0)), &[UserId(1), UserId(2)]);
        assert!(FanView::is_fan_of_any(&g, UserId(1), &[UserId(3)]));
        assert!(!FanView::is_fan_of_any(&g, UserId(2), &[UserId(3)]));
    }
}
