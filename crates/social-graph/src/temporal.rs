//! Dated fan links and as-of-date snapshot reconstruction.
//!
//! Paper §3.2: the authors scraped fan lists in February 2008, long
//! after the June 2006 story data. Digg listed fan links in reverse
//! chronological order without creation dates, but *did* give each
//! fan's join date; the authors reconstructed the June-2006 network by
//! "eliminating fans who joined Digg after June 30, 2006".
//!
//! [`TemporalFanList`] models exactly that artifact: a per-user list of
//! `(fan, fan_join_date)` pairs in reverse chronological *link* order,
//! with a [`snapshot`](TemporalFanList::snapshot) operation that
//! filters by join date. The reconstruction is *approximate* in the
//! same way the paper's is — a fan who joined before the cutoff but
//! linked after it is (incorrectly, unavoidably) retained — and a test
//! below documents that bias.

use crate::builder::GraphBuilder;
use crate::graph::SocialGraph;
use crate::id::UserId;
use serde::{Deserialize, Serialize};

/// A day index (days since an arbitrary epoch). The reproduction only
/// compares dates, so the epoch never matters.
pub type Day = u32;

/// One fan link as scraped: who the fan is, when the fan joined the
/// site, and when the link was actually created (hidden from the
/// scraper; retained here so tests can measure reconstruction error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FanLink {
    /// The watching user.
    pub fan: UserId,
    /// The day the fan joined the site (visible to the scraper).
    pub fan_joined: Day,
    /// The day the watch link was created (NOT visible to the
    /// scraper; ground truth for evaluating the reconstruction).
    pub link_created: Day,
}

/// Scraped fan lists for a population, as of some scrape date.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemporalFanList {
    /// `lists[b]` = fan links of user `b`, most recent link first
    /// (reverse chronological, as Digg displayed them).
    lists: Vec<Vec<FanLink>>,
}

impl TemporalFanList {
    /// Empty lists for `n` users.
    pub fn new(n: usize) -> TemporalFanList {
        TemporalFanList {
            lists: vec![Vec::new(); n],
        }
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.lists.len()
    }

    /// Record a link: `fan` (who joined on `fan_joined`) started
    /// watching `watched` on `link_created`. Links may be added in any
    /// order; lists are kept reverse-chronological.
    pub fn add_link(&mut self, watched: UserId, fan: UserId, fan_joined: Day, link_created: Day) {
        let list = &mut self.lists[watched.index()];
        let link = FanLink {
            fan,
            fan_joined,
            link_created,
        };
        // Insert keeping descending link_created order.
        let pos = list.partition_point(|l| l.link_created >= link_created);
        list.insert(pos, link);
    }

    /// The raw scraped list for `watched` (reverse chronological).
    pub fn fans_of(&self, watched: UserId) -> &[FanLink] {
        &self.lists[watched.index()]
    }

    /// The paper's reconstruction: keep only fans who *joined* on or
    /// before `cutoff`, and build the watch graph from them.
    ///
    /// This over-counts links created after the cutoff by users who
    /// joined before it; [`snapshot_exact`](Self::snapshot_exact) gives
    /// the unobservable ground truth for comparison.
    pub fn snapshot(&self, cutoff: Day) -> SocialGraph {
        let mut b = GraphBuilder::new(self.user_count());
        for (w, list) in self.lists.iter().enumerate() {
            for l in list {
                if l.fan_joined <= cutoff {
                    b.add_watch(l.fan, UserId::from_index(w));
                }
            }
        }
        b.build()
    }

    /// Ground-truth snapshot using the (unscrapable) link creation
    /// dates.
    pub fn snapshot_exact(&self, cutoff: Day) -> SocialGraph {
        let mut b = GraphBuilder::new(self.user_count());
        for (w, list) in self.lists.iter().enumerate() {
            for l in list {
                if l.link_created <= cutoff {
                    b.add_watch(l.fan, UserId::from_index(w));
                }
            }
        }
        b.build()
    }

    /// Number of links the join-date reconstruction keeps that the
    /// exact snapshot would drop (the paper's unavoidable
    /// reconstruction bias), at the given cutoff.
    pub fn reconstruction_excess(&self, cutoff: Day) -> usize {
        self.lists
            .iter()
            .flat_map(|list| list.iter())
            .filter(|l| l.fan_joined <= cutoff && l.link_created > cutoff)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_stay_reverse_chronological() {
        let mut t = TemporalFanList::new(3);
        t.add_link(UserId(0), UserId(1), 10, 100);
        t.add_link(UserId(0), UserId(2), 10, 300);
        let created: Vec<Day> = t
            .fans_of(UserId(0))
            .iter()
            .map(|l| l.link_created)
            .collect();
        assert_eq!(created, vec![300, 100]);
    }

    #[test]
    fn snapshot_filters_by_join_date() {
        let mut t = TemporalFanList::new(3);
        // Fan 1 joined day 5, linked day 50: kept at cutoff 20.
        t.add_link(UserId(0), UserId(1), 5, 50);
        // Fan 2 joined day 30: dropped at cutoff 20.
        t.add_link(UserId(0), UserId(2), 30, 40);
        let g = t.snapshot(20);
        assert!(g.watches(UserId(1), UserId(0)));
        assert!(!g.watches(UserId(2), UserId(0)));
    }

    #[test]
    fn exact_snapshot_uses_link_dates() {
        let mut t = TemporalFanList::new(3);
        t.add_link(UserId(0), UserId(1), 5, 50);
        t.add_link(UserId(0), UserId(2), 30, 40);
        let g = t.snapshot_exact(45);
        assert!(!g.watches(UserId(1), UserId(0))); // linked day 50 > 45
        assert!(g.watches(UserId(2), UserId(0))); // linked day 40 <= 45
    }

    #[test]
    fn reconstruction_bias_is_measurable() {
        let mut t = TemporalFanList::new(2);
        // Joined before cutoff, linked after: the one kind of error.
        t.add_link(UserId(0), UserId(1), 1, 100);
        assert_eq!(t.reconstruction_excess(50), 1);
        assert_eq!(t.reconstruction_excess(150), 0);
        // The reconstructed graph at cutoff 50 contains the spurious
        // edge, the exact one does not.
        assert_eq!(t.snapshot(50).edge_count(), 1);
        assert_eq!(t.snapshot_exact(50).edge_count(), 0);
    }

    #[test]
    fn snapshot_never_invents_users() {
        let t = TemporalFanList::new(4);
        let g = t.snapshot(10);
        assert_eq!(g.user_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }
}
