//! Deterministic sharded CSR construction.
//!
//! [`GraphBuilder::build`](crate::GraphBuilder::build) finalises an
//! edge list with one global `sort_unstable` plus two serial
//! counting-sort passes — fine at the paper's ~17k users, serial
//! bottleneck at the ROADMAP's millions. This module runs the same
//! construction sharded across the `des_core::par` worker fan-out and
//! produces a [`SocialGraph`] **bit-identical** to the serial build at
//! any shard count:
//!
//! 1. **Shard by source row.** Rows `0..n` are split into contiguous
//!    ranges balanced by raw edge count (parallel per-chunk histogram →
//!    boundary walk). Each raw edge is routed to the shard owning its
//!    source row; per-chunk buckets are concatenated in chunk order.
//! 2. **Local sort + dedup.** Each shard sorts and deduplicates its
//!    edges independently. Because shards own *disjoint row ranges*,
//!    the concatenation of the per-shard sorted lists is exactly the
//!    globally sorted list, and every duplicate pair lands in the same
//!    shard — so per-shard dedup equals global dedup.
//! 3. **Offsets.** Per-shard row counts are written into disjoint
//!    regions of the offsets array ([`des_core::par::par_join`] over
//!    `split_at_mut` regions), then prefix-summed.
//! 4. **Scatter.** The friends view is a parallel copy of each shard's
//!    target column into its contiguous offsets region. The fans view
//!    re-buckets each shard's edges by *target* row range and scatters
//!    per target shard, visiting source shards in ascending order —
//!    the same global `(fan, watched)` scan order as the serial
//!    counting sort, so every fan row comes out in the identical
//!    ascending order.
//!
//! Determinism does not depend on the shard count: boundaries only
//! decide which worker computes which rows, never the row contents.
//! `tests/par_build.rs` pins `build() == build_parallel(t)` for
//! `t ∈ {1, 2, 8}` by proptest and at a fixed seed.

use crate::builder::CsrCapacityError;
use crate::graph::SocialGraph;
use crate::id::UserId;
use des_core::par::{chunk_size, par_join, par_map};

type Edge = (UserId, UserId);

/// Below this many raw edges the fan-out overhead dominates; fall back
/// to the serial path.
const MIN_PARALLEL_EDGES: usize = 1 << 13;

/// Effective shard count for a given raw edge count.
fn plan_shards(raw_edges: usize, threads: usize) -> usize {
    if raw_edges < MIN_PARALLEL_EDGES {
        1
    } else {
        threads.max(1)
    }
}

/// Row-range boundaries (length `parts + 1`, monotone, `0` to
/// `weights.len()`) splitting rows into `parts` contiguous ranges of
/// roughly equal total weight.
fn balance(weights: &[u64], parts: usize) -> Vec<usize> {
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut acc = 0u64;
    let mut row = 0usize;
    for s in 1..parts {
        let target = total * s as u64 / parts as u64;
        while row < n && acc < target {
            acc += weights[row];
            row += 1;
        }
        bounds.push(row);
    }
    bounds.push(n);
    bounds
}

/// The reference serial construction (the body of the pre-PR-3
/// `GraphBuilder::build`): global sort + dedup, then two counting-sort
/// passes. [`build_parallel`] must reproduce this bit-for-bit.
pub(crate) fn serial(n: usize, mut edges: Vec<Edge>) -> Result<SocialGraph, CsrCapacityError> {
    edges.sort_unstable();
    edges.dedup();
    let m = edges.len();
    crate::builder::check_csr_capacity(m)?;

    // Friends view: edges are sorted by (fan, watched), so the target
    // column is already the concatenation of sorted rows.
    let mut friend_offsets = vec![0u32; n + 1];
    for &(a, _) in &edges {
        friend_offsets[a.index() + 1] += 1;
    }
    for i in 0..n {
        friend_offsets[i + 1] += friend_offsets[i];
    }
    let friend_targets: Vec<UserId> = edges.iter().map(|&(_, b)| b).collect();

    // Fans view: counting sort by target. Scanning edges in (a, b)
    // order writes each fan row's `a`s in ascending order, so rows
    // come out sorted without a second sort.
    let mut fan_offsets = vec![0u32; n + 1];
    for &(_, b) in &edges {
        fan_offsets[b.index() + 1] += 1;
    }
    for i in 0..n {
        fan_offsets[i + 1] += fan_offsets[i];
    }
    let mut cursor: Vec<u32> = fan_offsets[..n].to_vec();
    let mut fan_targets = vec![UserId(0); m];
    for &(a, b) in &edges {
        let slot = &mut cursor[b.index()];
        fan_targets[*slot as usize] = a;
        *slot += 1;
    }

    Ok(SocialGraph::from_csr(
        friend_offsets,
        friend_targets,
        fan_offsets,
        fan_targets,
    ))
}

/// Sharded construction from a raw edge list (duplicates allowed,
/// self-loops already dropped by `add_watch`). Bit-identical to
/// [`serial`] at any `threads`.
pub(crate) fn build_parallel(
    n: usize,
    edges: Vec<Edge>,
    threads: usize,
) -> Result<SocialGraph, CsrCapacityError> {
    let shards = plan_shards(edges.len(), threads);
    if shards <= 1 || n == 0 {
        return serial(n, edges);
    }

    // 1. Row boundaries balanced by raw per-row edge counts.
    let chunks: Vec<&[Edge]> = edges.chunks(chunk_size(edges.len(), shards)).collect();
    let hists: Vec<Vec<u32>> = par_map(&chunks, shards, |chunk| {
        let mut h = vec![0u32; n];
        for &(a, _) in *chunk {
            h[a.index()] += 1;
        }
        h
    });
    let mut row_weight = vec![0u64; n];
    for h in &hists {
        for (w, &c) in row_weight.iter_mut().zip(h) {
            *w += c as u64;
        }
    }
    drop(hists);
    let bounds = balance(&row_weight, shards);
    drop(row_weight);
    let shard_of = shard_map(&bounds, n);

    // 2. Bucket raw edges by source shard (chunk order preserved),
    //    then sort + dedup each shard independently.
    let buckets: Vec<Vec<Vec<Edge>>> = par_map(&chunks, shards, |chunk| {
        let mut out: Vec<Vec<Edge>> = vec![Vec::new(); shards];
        for &e in *chunk {
            out[shard_of[e.0.index()] as usize].push(e);
        }
        out
    });
    drop(chunks);
    drop(edges);
    let parts = transpose(buckets, shards);
    let shard_edges: Vec<Vec<Edge>> = par_map(&parts, shards, |parts| {
        let mut v: Vec<Edge> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            v.extend_from_slice(p);
        }
        v.sort_unstable();
        v.dedup();
        v
    });
    drop(parts);

    assemble(n, &shard_edges, &bounds)
}

/// Sharded construction from per-row adjacency lists that are already
/// sorted, duplicate-free and self-loop-free — the shape the sharded
/// generators produce. Skips the sort entirely: the friends view is a
/// concatenation, the fans view reuses the sharded counting sort.
pub(crate) fn from_sorted_rows(
    rows: &[Vec<UserId>],
    threads: usize,
) -> Result<SocialGraph, CsrCapacityError> {
    let n = rows.len();
    let weights: Vec<u64> = rows.iter().map(|r| r.len() as u64).collect();
    let total: usize = rows.iter().map(Vec::len).sum();
    let shards = plan_shards(total, threads).min(n.max(1));
    let bounds = balance(&weights, shards);
    let ranges: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
    let shard_edges: Vec<Vec<Edge>> = par_map(&ranges, shards, |&(lo, hi)| {
        let mut v = Vec::with_capacity(rows[lo..hi].iter().map(Vec::len).sum());
        for (a, row) in rows[lo..hi].iter().enumerate() {
            let a = UserId::from_index(lo + a);
            v.extend(row.iter().map(|&b| (a, b)));
        }
        v
    });
    assemble(n, &shard_edges, &bounds)
}

/// Row → owning shard lookup table.
fn shard_map(bounds: &[usize], n: usize) -> Vec<u16> {
    let mut map = vec![0u16; n];
    for s in 0..bounds.len() - 1 {
        // digg-lint: allow(no-truncating-cast) — shard count is worker_threads()-bounded, far below u16::MAX
        map[bounds[s]..bounds[s + 1]].fill(s as u16);
    }
    map
}

/// Regroup per-chunk buckets into per-shard part lists, preserving
/// chunk order within each shard.
fn transpose(buckets: Vec<Vec<Vec<Edge>>>, shards: usize) -> Vec<Vec<Vec<Edge>>> {
    let mut parts: Vec<Vec<Vec<Edge>>> = (0..shards).map(|_| Vec::new()).collect();
    for chunk_buckets in buckets {
        for (s, b) in chunk_buckets.into_iter().enumerate() {
            parts[s].push(b);
        }
    }
    parts
}

/// Build both CSR views from per-source-shard sorted, deduplicated
/// edge lists. `bounds` are the source-row shard boundaries.
fn assemble(
    n: usize,
    shard_edges: &[Vec<Edge>],
    bounds: &[usize],
) -> Result<SocialGraph, CsrCapacityError> {
    let shards = shard_edges.len();
    let m: usize = shard_edges.iter().map(Vec::len).sum();
    crate::builder::check_csr_capacity(m)?;

    // 3. Friends offsets: per-shard counts into disjoint regions of the
    //    offsets array (counts for row r live at index r + 1), then one
    //    serial prefix sum.
    let mut friend_offsets = vec![0u32; n + 1];
    {
        let mut tasks = Vec::with_capacity(shards);
        let mut rest: &mut [u32] = &mut friend_offsets[1..];
        for s in 0..shards {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let (region, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let edges = &shard_edges[s];
            tasks.push(move || {
                for &(a, _) in edges {
                    region[a.index() - lo] += 1;
                }
            });
        }
        par_join(tasks);
    }
    for i in 0..n {
        friend_offsets[i + 1] += friend_offsets[i];
    }

    // 4a. Friends scatter: each shard's target column is copied into
    //     its contiguous region, already in globally sorted order.
    let mut friend_targets = vec![UserId(0); m];
    {
        let mut tasks = Vec::with_capacity(shards);
        let mut rest: &mut [UserId] = &mut friend_targets;
        for edges in shard_edges {
            let (region, tail) = rest.split_at_mut(edges.len());
            rest = tail;
            tasks.push(move || {
                for (slot, &(_, b)) in region.iter_mut().zip(edges) {
                    *slot = b;
                }
            });
        }
        par_join(tasks);
    }

    // 4b. Fans offsets: per-shard target histograms merged serially.
    let fan_hists: Vec<Vec<u32>> = par_map(shard_edges, shards, |edges| {
        let mut h = vec![0u32; n];
        for &(_, b) in edges {
            h[b.index()] += 1;
        }
        h
    });
    let mut fan_counts = vec![0u32; n];
    for h in &fan_hists {
        for (c, &x) in fan_counts.iter_mut().zip(h) {
            *c += x;
        }
    }
    drop(fan_hists);
    let mut fan_offsets = vec![0u32; n + 1];
    for i in 0..n {
        fan_offsets[i + 1] = fan_offsets[i] + fan_counts[i];
    }

    // 4c. Fans scatter: bucket each source shard's edges by target
    //     shard (order preserved), then each target shard replays the
    //     serial counting sort over its own rows, visiting source
    //     shards in ascending order — the exact global (a, b) scan
    //     order, so every fan row is written in the same sequence as
    //     the serial build.
    let tbounds = balance(
        &fan_counts.iter().map(|&c| c as u64).collect::<Vec<_>>(),
        shards,
    );
    drop(fan_counts);
    let tshard_of = shard_map(&tbounds, n);
    let tbuckets: Vec<Vec<Vec<Edge>>> = par_map(shard_edges, shards, |edges| {
        let mut out: Vec<Vec<Edge>> = vec![Vec::new(); shards];
        for &e in edges {
            out[tshard_of[e.1.index()] as usize].push(e);
        }
        out
    });
    let tparts = transpose(tbuckets, shards);

    let mut fan_targets = vec![UserId(0); m];
    {
        let mut tasks = Vec::with_capacity(shards);
        let mut rest: &mut [UserId] = &mut fan_targets;
        for s in 0..shards {
            let (tlo, thi) = (tbounds[s], tbounds[s + 1]);
            let base = fan_offsets[tlo];
            let len = (fan_offsets[thi] - base) as usize;
            let (region, tail) = rest.split_at_mut(len);
            rest = tail;
            let offsets = &fan_offsets;
            let parts = &tparts[s];
            tasks.push(move || {
                let mut cursor: Vec<u32> = offsets[tlo..thi].iter().map(|&o| o - base).collect();
                for part in parts {
                    for &(a, b) in part {
                        let slot = &mut cursor[b.index() - tlo];
                        region[*slot as usize] = a;
                        *slot += 1;
                    }
                }
            });
        }
        par_join(tasks);
    }

    Ok(SocialGraph::from_csr(
        friend_offsets,
        friend_targets,
        fan_offsets,
        fan_targets,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_is_monotone_and_covers_rows() {
        let w = vec![5u64, 0, 0, 9, 1, 1, 1, 20, 0, 2];
        for parts in 1..6 {
            let b = balance(&w, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), w.len());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn balance_handles_empty_and_zero_weights() {
        assert_eq!(balance(&[], 3), vec![0, 0, 0, 0]);
        let b = balance(&[0, 0, 0], 2);
        assert_eq!(*b.last().unwrap(), 3);
    }

    #[test]
    fn shard_map_matches_bounds() {
        let map = shard_map(&[0, 2, 2, 5], 5);
        assert_eq!(map, vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn parallel_matches_serial_on_a_skewed_list() {
        // Hub-heavy: most edges target row 0, many duplicates.
        let mut edges: Vec<Edge> = Vec::new();
        for i in 1..40u32 {
            for _ in 0..3 {
                edges.push((UserId(i), UserId(0)));
                edges.push((UserId(0), UserId(i % 7 + 1)));
            }
        }
        let expect = serial(40, edges.clone()).unwrap();
        for threads in [1, 2, 3, 8] {
            assert_eq!(build_parallel(40, edges.clone(), threads).unwrap(), expect);
        }
    }

    #[test]
    fn from_sorted_rows_matches_edge_list_build() {
        let rows = vec![
            vec![UserId(1), UserId(3)],
            vec![],
            vec![UserId(0)],
            vec![UserId(0), UserId(1), UserId(2)],
        ];
        let edges: Vec<Edge> = rows
            .iter()
            .enumerate()
            .flat_map(|(a, r)| r.iter().map(move |&b| (UserId::from_index(a), b)))
            .collect();
        let expect = serial(4, edges).unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(from_sorted_rows(&rows, threads).unwrap(), expect);
        }
    }
}
