//! Fan-membership kernel: "is any of these candidates in this sorted
//! CSR row?"
//!
//! This is the innermost question of the paper's social-vote analysis
//! — a vote is *in-network* iff the voter is a fan of any prior voter
//! — asked once per vote by every sweep, so its constant factors are
//! the sweep's constant factors. The kernel exposes each strategy as a
//! standalone function over plain sorted slices (so the criterion
//! bench `membership` can race them head-to-head) plus the dispatch
//! heuristics that [`SocialGraph::is_fan_of_any`] and
//! [`SocialGraph::is_fan_of_any_with`] use to pick one. All strategies
//! return identical booleans for identical inputs; the dispatcher only
//! ever changes *time*, never the answer.
//!
//! # Measured crossover constants
//!
//! The thresholds below are set from `cargo bench -p digg-bench
//! --bench membership` on the reference box (see DESIGN.md §16 for the
//! table), not guessed. Re-run that bench when retuning.
//!
//! [`SocialGraph::is_fan_of_any`]: crate::SocialGraph::is_fan_of_any
//! [`SocialGraph::is_fan_of_any_with`]: crate::SocialGraph::is_fan_of_any_with

// digg-lint: hot-path

use crate::bitset::FanBitset;
use crate::id::UserId;

/// Sorted candidate lists shorter than this always take
/// [`binary_probe`] over [`galloping`].
///
/// Measured (bench `membership`, d = row length, c = candidates,
/// medians): binary beats galloping at every benched point with
/// c ≤ 32 — 126 ns vs 176 ns at d=128/c=16, 190 ns vs 371 ns at
/// d=1024/c=16, 564 ns vs 1014 ns at d=8192/c=32. Galloping's
/// restart-free merge only pays once the candidate walk is long enough
/// to amortise its bracketing overhead: at c = 128 it finally wins
/// (1813 ns vs 2071 ns at d=1024). 64 splits the measured regimes.
pub const GALLOP_MIN_CANDIDATES: usize = 64;

/// With enough candidates ([`GALLOP_MIN_CANDIDATES`]), the friend row
/// must still outnumber them by this factor before galloping beats
/// restarted binary searches; below it the two-pointer merge owns the
/// regime anyway.
///
/// Measured: at d = 8c galloping wins (1813 ns vs 2071 ns binary,
/// d=1024/c=128); at d = 32c it ties within noise (3355 ns vs 3245 ns,
/// d=8192/c=256) and keeps binary's asymptotics, so there is no upper
/// cutoff. 4 is the smallest factor that keeps the two-pointer handoff
/// (`2c > d`) and the gallop band adjacent with no binary gap between
/// them.
pub const GALLOP_RATIO: usize = 4;

/// Minimum unsorted-candidate count before splatting the candidates
/// into a bitset beats per-candidate binary searches.
///
/// Measured: at c = 16 the O(c) inserts never recoup — 161 ns bitset
/// vs 126 ns binary (d=128), 1125 ns vs 190 ns (d=1024). At c = 64 the
/// bitset wins its density band: 174 ns vs 277 ns at d=16/c=64, and at
/// c = 128 it is the fastest kernel outright (597 ns vs 996 ns at
/// d=128, 1677 ns vs 2071 ns at d=1024).
pub const BITSET_MIN_CANDIDATES: usize = 64;

/// With the candidate bitset built, the row scan costs O(d) L1/L2
/// probes; binary search costs O(c·log d) dependent cache misses. The
/// bitset path wins while `d <= c * BITSET_MAX_ROW_FACTOR` — the
/// density heuristic: the candidate set must be at least 1/FACTOR as
/// dense as the row.
///
/// Measured: the bitset still wins at d = 8c (1677 ns vs 2071 ns
/// binary, d=1024/c=128) and loses by d = 32c (5025 ns vs 3245 ns,
/// d=8192/c=256). 8 is the last measured factor where it never loses.
pub const BITSET_MAX_ROW_FACTOR: usize = 8;

/// Is `candidates` sorted ascending? One O(c) scan — cheaper than the
/// binary searches a sorted-merge strategy replaces, and the
/// precondition for [`two_pointer`] and [`galloping`].
#[inline]
pub fn is_sorted(candidates: &[UserId]) -> bool {
    candidates.windows(2).all(|w| w[0] <= w[1])
}

/// Per-candidate binary search over the sorted row:
/// O(c·log d). The fallback that needs no precondition on
/// `candidates` and no scratch.
#[inline]
pub fn binary_probe(friends: &[UserId], candidates: &[UserId]) -> bool {
    candidates
        .iter()
        .any(|&c| friends.binary_search(&c).is_ok())
}

/// Sorted two-pointer intersection test: O(d + c). Requires
/// `candidates` sorted ascending; best when candidates outnumber the
/// row (both sides get walked at most once).
#[inline]
pub fn two_pointer(friends: &[UserId], candidates: &[UserId]) -> bool {
    debug_assert!(is_sorted(candidates));
    let (mut i, mut j) = (0, 0);
    while i < friends.len() && j < candidates.len() {
        match friends[i].cmp(&candidates[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Galloping (exponential-search) merge: O(c·log(d / c)). Requires
/// `candidates` sorted ascending; best when the row dwarfs the
/// candidate set, because each candidate's search starts where the
/// previous one stopped instead of at the row head.
pub fn galloping(friends: &[UserId], candidates: &[UserId]) -> bool {
    debug_assert!(is_sorted(candidates));
    // Steps double until the row overshoots the candidate, then a
    // binary search settles the bracket.
    let mut lo = 0usize;
    for &c in candidates {
        let mut step = 1usize;
        let mut hi = lo;
        while hi < friends.len() && friends[hi] < c {
            lo = hi + 1;
            hi = hi.saturating_add(step).min(friends.len());
            step <<= 1;
        }
        // Everything below `lo` is < c, and `hi` (when in range)
        // satisfies friends[hi] >= c: c can only live in
        // friends[lo..=hi].
        let end = if hi < friends.len() {
            hi + 1
        } else {
            friends.len()
        };
        match friends[lo..end].binary_search(&c) {
            Ok(_) => return true,
            Err(off) => lo += off,
        }
        if lo >= friends.len() {
            return false;
        }
    }
    false
}

/// Bitset probe: splat the candidates into `scratch` (O(c) inserts
/// into a word-packed set), then scan the row testing bits (O(d), one
/// L1/L2-resident probe each). The only strategy that runs at full
/// speed on *unsorted* candidates; `scratch` is cleared on entry and
/// grown to cover every candidate id, and its contents afterwards are
/// exactly the candidate set.
pub fn bitset_probe(friends: &[UserId], candidates: &[UserId], scratch: &mut FanBitset) -> bool {
    scratch.clear();
    if let Some(max) = candidates.iter().max() {
        scratch.ensure_capacity(max.index() + 1);
    }
    for &c in candidates {
        scratch.insert(c);
    }
    friends.iter().any(|&f| scratch.contains(f))
}

/// Scratch-free dispatch over the scalar strategies — the heuristic
/// behind [`SocialGraph::is_fan_of_any`](crate::SocialGraph::is_fan_of_any).
///
/// * sorted candidates at least half the row length → [`two_pointer`]
///   (measured: wins every benched point with `2c > d`, e.g. 503 ns vs
///   996 ns binary at d=128/c=128 and 1776 ns vs 7220 ns at
///   d=1024/c=1024);
/// * sorted candidate walks long enough to amortise
///   ([`GALLOP_MIN_CANDIDATES`]) against a row at least
///   [`GALLOP_RATIO`]× longer → [`galloping`];
/// * otherwise → [`binary_probe`] (measured: the fastest scalar kernel
///   everywhere `c ≤ 32`, regardless of d/c ratio).
pub fn is_fan_of_any(friends: &[UserId], candidates: &[UserId]) -> bool {
    let sorted = candidates.len() > 1 && is_sorted(candidates);
    if sorted && 2 * candidates.len() > friends.len() {
        two_pointer(friends, candidates)
    } else if sorted
        && candidates.len() >= GALLOP_MIN_CANDIDATES
        && friends.len() >= GALLOP_RATIO * candidates.len()
    {
        galloping(friends, candidates)
    } else {
        binary_probe(friends, candidates)
    }
}

/// Dispatch with a caller-provided bitset scratch — the heuristic
/// behind
/// [`SocialGraph::is_fan_of_any_with`](crate::SocialGraph::is_fan_of_any_with).
///
/// Sorted candidates go through the scalar dispatch unchanged (the
/// merge strategies are already near-optimal there and touch no
/// scratch). Unsorted candidate sets of at least
/// [`BITSET_MIN_CANDIDATES`] take the [`bitset_probe`] when the row is
/// within [`BITSET_MAX_ROW_FACTOR`]× the candidate count — the density
/// regime where O(c + d) cheap probes beat O(c·log d) binary searches.
/// Same boolean as [`is_fan_of_any`] for every input.
pub fn is_fan_of_any_with(
    friends: &[UserId],
    candidates: &[UserId],
    scratch: &mut FanBitset,
) -> bool {
    let sorted = candidates.len() > 1 && is_sorted(candidates);
    if !sorted
        && candidates.len() >= BITSET_MIN_CANDIDATES
        && friends.len() <= candidates.len() * BITSET_MAX_ROW_FACTOR
    {
        bitset_probe(friends, candidates, scratch)
    } else if sorted && 2 * candidates.len() > friends.len() {
        two_pointer(friends, candidates)
    } else if sorted
        && candidates.len() >= GALLOP_MIN_CANDIDATES
        && friends.len() >= GALLOP_RATIO * candidates.len()
    {
        galloping(friends, candidates)
    } else {
        binary_probe(friends, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<UserId> {
        xs.iter().map(|&x| UserId(x)).collect()
    }

    /// Reference oracle: linear scan, no preconditions.
    fn oracle(friends: &[UserId], candidates: &[UserId]) -> bool {
        candidates.iter().any(|c| friends.contains(c))
    }

    #[test]
    fn strategies_agree_on_edge_cases() {
        let mut scratch = FanBitset::new(0);
        let cases: Vec<(Vec<UserId>, Vec<UserId>)> = vec![
            (ids(&[]), ids(&[])),
            (ids(&[]), ids(&[1, 2])),
            (ids(&[1, 2]), ids(&[])),
            (ids(&[5]), ids(&[5])),
            (ids(&[5]), ids(&[4])),
            (ids(&[2, 4, 6, 8]), ids(&[8])),
            (ids(&[2, 4, 6, 8]), ids(&[9, 1, 5])), // unsorted candidates
            (ids(&[2, 4, 6, 8]), ids(&[9, 1, 6])),
        ];
        for (friends, candidates) in &cases {
            let want = oracle(friends, candidates);
            assert_eq!(binary_probe(friends, candidates), want);
            assert_eq!(bitset_probe(friends, candidates, &mut scratch), want);
            assert_eq!(is_fan_of_any(friends, candidates), want);
            assert_eq!(is_fan_of_any_with(friends, candidates, &mut scratch), want);
            if is_sorted(candidates) {
                assert_eq!(two_pointer(friends, candidates), want);
                assert_eq!(galloping(friends, candidates), want);
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_random_inputs() {
        // Deterministic xorshift fuzz across the size regimes every
        // dispatch branch covers; each strategy must match the oracle.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let mut scratch = FanBitset::new(0);
        for case in 0..500u32 {
            let d = rnd(200) as usize;
            let c = rnd(100) as usize;
            let mut friends: Vec<UserId> = (0..d).map(|_| UserId(rnd(300) as u32)).collect();
            friends.sort();
            friends.dedup();
            let mut candidates: Vec<UserId> = (0..c).map(|_| UserId(rnd(300) as u32)).collect();
            if case % 2 == 0 {
                candidates.sort();
            }
            let want = oracle(&friends, &candidates);
            assert_eq!(binary_probe(&friends, &candidates), want, "case {case}");
            assert_eq!(
                bitset_probe(&friends, &candidates, &mut scratch),
                want,
                "case {case}"
            );
            assert_eq!(is_fan_of_any(&friends, &candidates), want, "case {case}");
            assert_eq!(
                is_fan_of_any_with(&friends, &candidates, &mut scratch),
                want,
                "case {case}"
            );
            if is_sorted(&candidates) {
                assert_eq!(two_pointer(&friends, &candidates), want, "case {case}");
                assert_eq!(galloping(&friends, &candidates), want, "case {case}");
            }
        }
    }

    #[test]
    fn bitset_probe_resizes_scratch_and_leaves_candidates_behind() {
        let mut scratch = FanBitset::new(1);
        let friends = ids(&[100, 900]);
        let candidates = ids(&[900, 3]);
        assert!(bitset_probe(&friends, &candidates, &mut scratch));
        assert!(scratch.capacity() >= 901);
        assert_eq!(scratch.len(), 2);
        assert!(scratch.contains(UserId(3)));
        // Reuse with a disjoint set: prior contents must not leak.
        assert!(!bitset_probe(&friends, &ids(&[50, 51, 52]), &mut scratch));
        assert!(!scratch.contains(UserId(900)));
    }
}
