//! Edge-list serialization.
//!
//! Graphs round-trip through a plain text edge list (`fan watched`
//! per line) and through serde (the adjacency representation derives
//! `Serialize`/`Deserialize`). The text format is what the dataset
//! artifacts ship.

use crate::builder::GraphBuilder;
use crate::graph::SocialGraph;
use crate::id::UserId;

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not consist of exactly two integers.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line } => {
                write!(f, "malformed edge on line {line}: expected `fan watched`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Render the graph as a text edge list, one `fan watched` pair per
/// line, ascending. Lines starting with `#` are comments.
pub fn to_edge_list(g: &SocialGraph) -> String {
    let mut out = String::with_capacity(g.edge_count() * 8 + 64);
    out.push_str(&format!("# users: {}\n", g.user_count()));
    for (a, b) in g.edges() {
        out.push_str(&format!("{} {}\n", a.0, b.0));
    }
    out
}

/// Parse a text edge list produced by [`to_edge_list`] (or any
/// whitespace-separated pair-per-line format). Comment (`#`) and blank
/// lines are skipped. The user count grows to fit the largest id; pass
/// `min_users` to force isolated trailing users.
pub fn from_edge_list(text: &str, min_users: usize) -> Result<SocialGraph, ParseError> {
    let mut b = GraphBuilder::new(min_users);
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(x), Some(y), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseError::Malformed { line: i + 1 });
        };
        let (Ok(a), Ok(c)) = (x.parse::<u32>(), y.parse::<u32>()) else {
            return Err(ParseError::Malformed { line: i + 1 });
        };
        b.add_watch(UserId(a), UserId(c));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(2));
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text, g.user_count()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let g = from_edge_list("# hello\n\n0 1\n", 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.user_count(), 2);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = from_edge_list("0 1\nnot an edge\n", 0).unwrap_err();
        assert_eq!(err, ParseError::Malformed { line: 2 });
        assert!(err.to_string().contains("line 2"));
        let err = from_edge_list("0 1 2\n", 0).unwrap_err();
        assert_eq!(err, ParseError::Malformed { line: 1 });
    }

    #[test]
    fn min_users_pads_isolated_nodes() {
        let g = from_edge_list("0 1\n", 10).unwrap();
        assert_eq!(g.user_count(), 10);
    }

    #[test]
    fn serde_roundtrip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let g2: SocialGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }
}
