//! Edge-list serialization.
//!
//! Graphs round-trip through a plain text edge list (`fan watched`
//! per line) and through serde (the adjacency representation derives
//! `Serialize`/`Deserialize`). The text format is what the dataset
//! artifacts ship. File access goes through [`load_edge_list`] /
//! [`save_edge_list`], which return a typed [`IoError`] — a missing
//! or malformed file is a value, never a panic.
//!
//! The *binary* graph serialization — the versioned, checksummed,
//! mmap-served CSR snapshot — lives in [`crate::mmap`]; its entry
//! points are re-exported here so all graph persistence is reachable
//! from one module.

use crate::builder::GraphBuilder;
use crate::graph::SocialGraph;
use crate::id::UserId;
use std::path::Path;

pub use crate::mmap::{write_graph_map, GraphMap, GraphMapError};

/// Errors from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not consist of exactly two integers.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line } => {
                write!(f, "malformed edge on line {line}: expected `fan watched`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from reading or writing edge-list files.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file was read but its contents are not an edge list.
    Parse(ParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "edge list io error: {e}"),
            IoError::Parse(e) => write!(f, "edge list parse error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

impl From<ParseError> for IoError {
    fn from(e: ParseError) -> IoError {
        IoError::Parse(e)
    }
}

/// Read a graph from an edge-list file. Both failure modes — the file
/// being unreadable and its contents being malformed — come back as a
/// typed [`IoError`].
pub fn load_edge_list(path: &Path, min_users: usize) -> Result<SocialGraph, IoError> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_edge_list(&text, min_users)?)
}

/// Write a graph to an edge-list file atomically: the text is written
/// to `<path>.tmp` and renamed into place, so a crash mid-write never
/// leaves a truncated file behind.
pub fn save_edge_list(g: &SocialGraph, path: &Path) -> Result<(), IoError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_edge_list(g))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Render the graph as a text edge list, one `fan watched` pair per
/// line, ascending. Lines starting with `#` are comments.
pub fn to_edge_list(g: &SocialGraph) -> String {
    let mut out = String::with_capacity(g.edge_count() * 8 + 64);
    out.push_str(&format!("# users: {}\n", g.user_count()));
    for (a, b) in g.edges() {
        out.push_str(&format!("{} {}\n", a.0, b.0));
    }
    out
}

/// Parse a text edge list produced by [`to_edge_list`] (or any
/// whitespace-separated pair-per-line format). Comment (`#`) and blank
/// lines are skipped. The user count grows to fit the largest id; pass
/// `min_users` to force isolated trailing users.
pub fn from_edge_list(text: &str, min_users: usize) -> Result<SocialGraph, ParseError> {
    let mut b = GraphBuilder::new(min_users);
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(x), Some(y), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseError::Malformed { line: i + 1 });
        };
        let (Ok(a), Ok(c)) = (x.parse::<u32>(), y.parse::<u32>()) else {
            return Err(ParseError::Malformed { line: i + 1 });
        };
        b.add_watch(UserId(a), UserId(c));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(0), UserId(2));
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text, g.user_count()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let g = from_edge_list("# hello\n\n0 1\n", 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.user_count(), 2);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = from_edge_list("0 1\nnot an edge\n", 0).unwrap_err();
        assert_eq!(err, ParseError::Malformed { line: 2 });
        assert!(err.to_string().contains("line 2"));
        let err = from_edge_list("0 1 2\n", 0).unwrap_err();
        assert_eq!(err, ParseError::Malformed { line: 1 });
    }

    #[test]
    fn min_users_pads_isolated_nodes() {
        let g = from_edge_list("0 1\n", 10).unwrap();
        assert_eq!(g.user_count(), 10);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let g = sample();
        let dir = std::env::temp_dir().join("social-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.edges");
        save_edge_list(&g, &path).unwrap();
        // No temp file is left behind after the rename.
        assert!(!path.with_extension("tmp").exists());
        let g2 = load_edge_list(&path, g.user_count()).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error_not_panic() {
        let err = load_edge_list(Path::new("/nonexistent/nope.edges"), 0).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn load_malformed_file_is_parse_error_not_panic() {
        let dir = std::env::temp_dir().join("social-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.edges");
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        let err = load_edge_list(&path, 0).unwrap_err();
        match err {
            IoError::Parse(p) => assert_eq!(p, ParseError::Malformed { line: 2 }),
            other => panic!("expected Parse, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serde_roundtrip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let g2: SocialGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }
}
