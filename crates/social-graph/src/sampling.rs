//! Graph observation models: snowball crawls and partial edge
//! observation.
//!
//! The paper's network was *observed*, not given: a crawl outward from
//! the Top Users list plus fan lists of every voter encountered. This
//! module models such partial observation so analyses can be tested
//! for robustness against it (ablation ABL5):
//!
//! * [`snowball`] — breadth-first crawl from seed users to a given
//!   depth, keeping every edge incident to a crawled user whose fan
//!   endpoint was discovered;
//! * [`subsample_edges`] — keep each watch edge independently with
//!   probability `p` (missed fan-list pages, deleted accounts,
//!   rate-limited requests).

use crate::builder::GraphBuilder;
use crate::graph::SocialGraph;
use crate::id::UserId;
use rand::Rng;
use std::collections::VecDeque;

/// Breadth-first snowball crawl: starting from `seeds`, repeatedly
/// fetch the fan lists of discovered users up to `depth` waves
/// (depth 0 = fan lists of the seeds only). Returns the observed
/// graph — all fan edges of every *fetched* user — over the original
/// id space, plus the list of fetched users.
pub fn snowball(graph: &SocialGraph, seeds: &[UserId], depth: u32) -> (SocialGraph, Vec<UserId>) {
    let mut fetched = vec![false; graph.user_count()];
    let mut b = GraphBuilder::new(graph.user_count());
    let mut q: VecDeque<(UserId, u32)> = VecDeque::new();
    let mut order = Vec::new();
    for &s in seeds {
        if !fetched[s.index()] {
            fetched[s.index()] = true;
            q.push_back((s, 0));
        }
    }
    while let Some((u, d)) = q.pop_front() {
        order.push(u);
        // "Fetching" u's page reveals all of u's fans.
        for &f in graph.fans(u) {
            b.add_watch(f, u);
            if d < depth && !fetched[f.index()] {
                fetched[f.index()] = true;
                q.push_back((f, d + 1));
            }
        }
    }
    (b.build(), order)
}

/// Independently keep each watch edge with probability `p` — a model
/// of incomplete fan-list scraping.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn subsample_edges<R: Rng + ?Sized>(rng: &mut R, graph: &SocialGraph, p: f64) -> SocialGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(graph.user_count());
    for (a, c) in graph.edges() {
        if rng.random::<f64>() < p {
            b.add_watch(a, c);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// fans: 0 <- {1, 2}; 1 <- {3}; 3 <- {4}.
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(5);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.add_watch(UserId(3), UserId(1));
        b.add_watch(UserId(4), UserId(3));
        b.build()
    }

    #[test]
    fn snowball_depth_zero_fetches_only_seeds() {
        let g = graph();
        let (obs, fetched) = snowball(&g, &[UserId(0)], 0);
        // Only user 0's fan list: edges 1->0 and 2->0.
        assert_eq!(obs.edge_count(), 2);
        assert!(obs.watches(UserId(1), UserId(0)));
        assert!(!obs.watches(UserId(3), UserId(1)));
        assert_eq!(fetched, vec![UserId(0)]);
    }

    #[test]
    fn snowball_expands_by_depth() {
        let g = graph();
        let (obs, fetched) = snowball(&g, &[UserId(0)], 1);
        // Wave 1 fetches users 1 and 2, revealing 3 -> 1.
        assert_eq!(obs.edge_count(), 3);
        assert!(obs.watches(UserId(3), UserId(1)));
        assert!(!obs.watches(UserId(4), UserId(3)));
        assert_eq!(fetched.len(), 3);
        let (obs, _) = snowball(&g, &[UserId(0)], 2);
        assert_eq!(obs.edge_count(), 4);
    }

    #[test]
    fn snowball_full_depth_recovers_reachable_subgraph() {
        let g = graph();
        let (obs, _) = snowball(&g, &[UserId(0)], u32::MAX);
        assert_eq!(obs, g);
    }

    #[test]
    fn snowball_duplicate_seeds_are_fetched_once() {
        let g = graph();
        let (_, fetched) = snowball(&g, &[UserId(0), UserId(0)], 0);
        assert_eq!(fetched.len(), 1);
    }

    #[test]
    fn subsample_extremes() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(subsample_edges(&mut rng, &g, 1.0), g);
        assert_eq!(subsample_edges(&mut rng, &g, 0.0).edge_count(), 0);
    }

    #[test]
    fn subsample_rate_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new(200);
        for a in 0..199u32 {
            for c in (a + 1)..200 {
                b.add_watch(UserId(a), UserId(c));
            }
        }
        let g = b.build();
        let s = subsample_edges(&mut rng, &g, 0.3);
        let frac = s.edge_count() as f64 / g.edge_count() as f64;
        assert!((frac - 0.3).abs() < 0.02, "kept {frac}");
        // Subsampled edges are a subset.
        for (a, c) in s.edges() {
            assert!(g.watches(a, c));
        }
    }
}
