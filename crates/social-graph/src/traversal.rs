//! Breadth-first traversal, reachability and components.
//!
//! The spread of interest in a story travels from a voter to that
//! voter's fans, i.e. along *reversed* watch edges. Traversals
//! therefore take a [`Direction`] so cascade-reachability questions
//! ("which users could ever learn of this story through the Friends
//! interface?") are expressed directly.

use crate::graph::SocialGraph;
use crate::id::UserId;
use std::collections::VecDeque;

/// Which adjacency to follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow watch edges: from a fan to the users it watches.
    Friends,
    /// Follow reversed watch edges: from a user to its fans. This is
    /// the direction story visibility propagates.
    Fans,
}

fn neighbours(g: &SocialGraph, u: UserId, dir: Direction) -> &[UserId] {
    match dir {
        Direction::Friends => g.friends(u),
        Direction::Fans => g.fans(u),
    }
}

/// BFS distances from `src` following `dir`; `None` for unreachable
/// users. Distance of `src` is 0.
pub fn bfs_distances(g: &SocialGraph, src: UserId, dir: Direction) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.user_count()];
    let mut q = VecDeque::new();
    dist[src.index()] = Some(0);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        // digg-lint: allow(no-lib-unwrap) — BFS invariant: a node is enqueued only after its distance is set
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in neighbours(g, u, dir) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

/// Set of users reachable from any of `seeds` following `dir`, within
/// `max_hops` (use `u32::MAX` for unbounded). Seeds are included.
pub fn reachable_within(
    g: &SocialGraph,
    seeds: &[UserId],
    dir: Direction,
    max_hops: u32,
) -> Vec<UserId> {
    let mut seen = vec![false; g.user_count()];
    let mut q = VecDeque::new();
    for &s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            q.push_back((s, 0u32));
        }
    }
    let mut out: Vec<UserId> = Vec::new();
    while let Some((u, d)) = q.pop_front() {
        out.push(u);
        if d == max_hops {
            continue;
        }
        for &v in neighbours(g, u, dir) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                q.push_back((v, d + 1));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Weakly connected components (ignoring edge direction). Returns a
/// component id per user; ids are dense starting at 0 in order of
/// discovery.
pub fn weak_components(g: &SocialGraph) -> Vec<u32> {
    let n = g.user_count();
    let mut comp: Vec<u32> = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        q.push_back(UserId::from_index(start));
        while let Some(u) = q.pop_front() {
            for &v in g.friends(u).iter().chain(g.fans(u)) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of weakly connected components.
pub fn weak_component_count(g: &SocialGraph) -> usize {
    weak_components(g)
        .into_iter()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0)
}

/// Size of the largest weakly connected component (0 for empty graph).
pub fn largest_component_size(g: &SocialGraph) -> usize {
    let comp = weak_components(g);
    let Some(max_label) = comp.iter().copied().max() else {
        return 0;
    };
    let mut sizes = vec![0usize; max_label as usize + 1];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -> 1 -> 2, and isolated 3.
    fn chain() -> SocialGraph {
        let mut b = GraphBuilder::new(4);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(1), UserId(2));
        b.build()
    }

    #[test]
    fn bfs_follows_direction() {
        let g = chain();
        let d = bfs_distances(&g, UserId(0), Direction::Friends);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
        // Fans direction: 2's fans are {1}, 1's fans are {0}.
        let d = bfs_distances(&g, UserId(2), Direction::Fans);
        assert_eq!(d, vec![Some(2), Some(1), Some(0), None]);
    }

    #[test]
    fn reachable_with_hop_limit() {
        let g = chain();
        let r = reachable_within(&g, &[UserId(0)], Direction::Friends, 1);
        assert_eq!(r, vec![UserId(0), UserId(1)]);
        let r = reachable_within(&g, &[UserId(0)], Direction::Friends, u32::MAX);
        assert_eq!(r, vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn reachable_multi_seed_dedups() {
        let g = chain();
        let r = reachable_within(&g, &[UserId(0), UserId(1)], Direction::Friends, 0);
        assert_eq!(r, vec![UserId(0), UserId(1)]);
    }

    #[test]
    fn components_ignore_direction() {
        let g = chain();
        let c = weak_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_ne!(c[0], c[3]);
        assert_eq!(weak_component_count(&g), 2);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn empty_graph_components() {
        let g = SocialGraph::empty(0);
        assert_eq!(weak_component_count(&g), 0);
        assert_eq!(largest_component_size(&g), 0);
    }
}
