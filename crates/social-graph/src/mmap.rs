//! Mmap-backed read-only CSR graph snapshot — the out-of-core backing
//! for [`FanView`] consumers.
//!
//! An in-memory [`SocialGraph`](crate::SocialGraph) at 10M users /
//! 100M edges costs ~1 GB of RAM *after* an O(E log E) build; the
//! scale experiments want to open such a graph in O(1) and let the
//! kernel page adjacency rows in and out on demand. [`GraphMap`] is
//! that: a versioned, checksummed on-disk CSR image (written once by
//! [`write_graph_map`]) mapped read-only into the address space, whose
//! sections are 64-byte aligned typed arrays served as slices with
//! zero copying or decoding.
//!
//! ## On-disk format (version 1, little-endian)
//!
//! ```text
//! magic   : 8 bytes  b"DIGGGMAP"
//! version : u32      FORMAT_VERSION
//! count   : u32      number of sections
//! table   : per section — name_len u32, name bytes,
//!           payload_off u64 (absolute, 64-byte aligned),
//!           payload_len u64, FNV-1a64 checksum u64
//! payloads: at their recorded offsets, zero padding between
//! ```
//!
//! The same magic/version/FNV-1a discipline as `digg-snapshot`
//! containers (DESIGN.md §15), with two deliberate differences for
//! mmap service: payload offsets are *absolute and 64-byte aligned*
//! (so a page-aligned mapping makes every section a validly aligned
//! `&[u64]`/`&[u32]`, and each section starts on its own cache line),
//! and the section table records offsets explicitly instead of
//! implying them by order, leaving room for future section skipping.
//!
//! Sections of version 1:
//!
//! | name             | contents                                     |
//! |------------------|----------------------------------------------|
//! | `meta`           | `user_count: u64`, `edge_count: u64`         |
//! | `friend_offsets` | `(n+1) × u64` row starts into friend targets |
//! | `friend_targets` | `m × u32` sorted friend rows concatenated    |
//! | `fan_offsets`    | `(n+1) × u64` row starts into fan targets    |
//! | `fan_targets`    | `m × u32` sorted fan rows concatenated       |
//!
//! Offsets are `u64` on disk — unlike the in-memory graph's `u32`
//! offsets, the format already accommodates `m > u32::MAX` edge
//! arrays (the `GraphBuilder::try_build` capacity ceiling does not
//! apply to the snapshot).
//!
//! ## Safety and validation
//!
//! This is the **single module in the workspace allowed to use
//! `unsafe`** (digg-lint's `no-unchecked-mmap` rule enforces that);
//! the unsafe surface is exactly: the `mmap`/`munmap` FFI pair, one
//! `from_raw_parts` giving the mapping a byte-slice identity, and the
//! layout-compatible reinterpretations `&[u8] → &[u64]` / `&[u32] →
//! &[UserId]` whose alignment and bounds are checked at open time.
//!
//! * [`GraphMap::open`] fully verifies the file: header, table,
//!   alignment, per-section checksums, and the CSR invariants
//!   (monotone offsets closing at `m`, targets in range). Corrupt
//!   input of any shape yields a typed [`GraphMapError`] — never UB,
//!   never a panic (the corruption suite in `tests/mmap_corruption.rs`
//!   byte-flips, truncates, misaligns and re-versions real files to
//!   pin that).
//! * [`GraphMap::open_trusted`] performs the structural checks only
//!   (header, table, alignment, section sizes) — O(sections), the
//!   "load 100M edges in O(1)" path for files this process just wrote
//!   or previously verified. Row lookups stay bounds-checked slice
//!   indexing, so even a corrupt trusted file can at worst produce
//!   wrong analytics or a panic — never undefined behaviour.
//!
//! A mapped file must not be mutated concurrently by another process;
//! the writer's atomic tmp + rename ensures readers only ever see
//! complete images.
#![allow(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::graph::SocialGraph;
use crate::id::UserId;
use crate::view::FanView;
use digg_snapshot::fnv1a64;

/// Container magic: the first eight bytes of every graph map.
pub const MAGIC: [u8; 8] = *b"DIGGGMAP";

/// Current graph-map format version. Bump on any incompatible layout
/// change; readers reject other versions with
/// [`GraphMapError::VersionMismatch`].
pub const FORMAT_VERSION: u32 = 1;

/// Every section payload starts at a multiple of this (one x86 cache
/// line, and a multiple of every element alignment the format uses).
pub const SECTION_ALIGN: u64 = 64;

const SEC_META: &str = "meta";
const SEC_FRIEND_OFFSETS: &str = "friend_offsets";
const SEC_FRIEND_TARGETS: &str = "friend_targets";
const SEC_FAN_OFFSETS: &str = "fan_offsets";
const SEC_FAN_TARGETS: &str = "fan_targets";

/// Typed graph-map failure. Corrupt or incompatible files must
/// surface as values, never as panics or UB — callers treat them as
/// "snapshot unusable, rebuild from the edge list".
#[derive(Debug)]
pub enum GraphMapError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The file ended before the declared layout did.
    Truncated,
    /// A section's payload does not match its recorded checksum.
    CorruptSection {
        /// Name of the failing section.
        name: String,
    },
    /// A section the reader needs is absent.
    MissingSection {
        /// Name of the absent section.
        name: String,
    },
    /// A section's payload offset is not [`SECTION_ALIGN`]-aligned, so
    /// it cannot be served as a typed slice.
    MisalignedSection {
        /// Name of the misaligned section.
        name: String,
    },
    /// The bytes decoded, but the decoded structure is invalid
    /// (inconsistent sizes, non-monotone offsets, out-of-range ids).
    Malformed(String),
    /// Filesystem failure while reading, writing, or mapping.
    Io(std::io::Error),
}

impl fmt::Display for GraphMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphMapError::BadMagic => write!(f, "not a graph map (bad magic)"),
            GraphMapError::VersionMismatch { found, expected } => {
                write!(f, "graph map format version {found}, expected {expected}")
            }
            GraphMapError::Truncated => write!(f, "graph map is truncated"),
            GraphMapError::CorruptSection { name } => {
                write!(f, "graph map section '{name}' fails its checksum")
            }
            GraphMapError::MissingSection { name } => {
                write!(f, "graph map section '{name}' is missing")
            }
            GraphMapError::MisalignedSection { name } => {
                write!(f, "graph map section '{name}' is not 64-byte aligned")
            }
            GraphMapError::Malformed(why) => write!(f, "malformed graph map: {why}"),
            GraphMapError::Io(e) => write!(f, "graph map io: {e}"),
        }
    }
}

impl std::error::Error for GraphMapError {}

impl From<std::io::Error> for GraphMapError {
    fn from(e: std::io::Error) -> GraphMapError {
        GraphMapError::Io(e)
    }
}

/// Raw mmap/munmap FFI — the only system-call bindings in the
/// workspace (no libc crate; the constants are the Linux/BSD values
/// for the read-only private mapping this module creates). Gated
/// out under Miri, which cannot model a file-backed mapping — Miri
/// runs exercise the heap backing instead (same `bytes()` contract).
#[cfg(all(unix, not(miri)))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// The bytes behind a [`GraphMap`]: a kernel mapping when available,
/// else a heap image. The heap buffer is `Vec<u64>` (not `Vec<u8>`) so
/// its base is 8-byte aligned — combined with 64-byte section offsets
/// that makes every typed reinterpretation validly aligned on both
/// backings.
enum Backing {
    #[cfg(all(unix, not(miri)))]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap {
        buf: Vec<u64>,
        len: usize,
    },
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, not(miri)))]
            // SAFETY: `ptr` is the base of a live PROT_READ mapping of
            // exactly `len` bytes, created in `map_file` and unmapped
            // only in Drop; the mapping is private, so the slice's
            // contents cannot be mutated through this process.
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap { buf, len } => {
                // SAFETY: every byte of `buf` is initialised (zeroed
                // at allocation, then overwritten by file reads), and
                // `len <= buf.len() * 8` is enforced at construction.
                let all = unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) };
                all
            }
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(unix, not(miri)))]
        if let Backing::Mmap { ptr, len } = self {
            // SAFETY: exactly one munmap per successful mmap; the
            // pointer/length pair is the one the kernel returned.
            unsafe {
                sys::munmap((*ptr).cast_mut().cast(), *len);
            }
        }
    }
}

/// A read-only CSR social graph served directly from an on-disk
/// snapshot (see the module docs for the format).
///
/// Implements [`FanView`], so every sweep engine generic over that
/// trait — `digg-core`'s incremental analytics, the batch sweeper, the
/// parallel sweep map — runs over a `GraphMap` unchanged and
/// bit-identically to the in-memory graph it was written from.
///
/// # Examples
///
/// ```
/// use social_graph::{mmap, FanView, GraphBuilder, GraphMap, UserId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_watch(UserId(1), UserId(0));
/// let g = b.build();
///
/// let dir = std::env::temp_dir().join("graphmap-doc-example");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("g.graphmap");
/// mmap::write_graph_map(&g, &path).unwrap();
///
/// let m = GraphMap::open(&path).unwrap();
/// assert_eq!(m.user_count(), 3);
/// assert_eq!(m.fans(UserId(0)), &[UserId(1)]);
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub struct GraphMap {
    backing: Backing,
    user_count: usize,
    edge_count: usize,
    /// Byte ranges of the typed sections inside `backing`, validated
    /// (bounds + alignment) at open time.
    friend_offsets: SectionRange,
    friend_targets: SectionRange,
    fan_offsets: SectionRange,
    fan_targets: SectionRange,
}

// SAFETY: the backing is immutable for the lifetime of the value (a
// private read-only mapping or an owned heap buffer) and all accessors
// hand out shared slices only, so cross-thread sharing is sound. This
// is what lets the parallel sweep map fan a &GraphMap out to worker
// threads.
unsafe impl Send for GraphMap {}
// SAFETY: see Send above — no interior mutability anywhere.
unsafe impl Sync for GraphMap {}

#[derive(Clone, Copy)]
struct SectionRange {
    off: usize,
    len: usize,
}

/// One parsed section-table entry.
struct TableEntry {
    name: String,
    off: u64,
    len: u64,
    checksum: u64,
}

/// Incremental FNV-1a64 with the same constants as
/// [`digg_snapshot::fnv1a64`] — the writer hashes sections in a
/// streaming pre-pass instead of materialising gigabyte payloads.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// Serialize `graph` into the on-disk graph-map format at `path`,
/// atomically (tmp + rename — a crash mid-write never leaves a partial
/// file where [`GraphMap::open`] will look).
///
/// Offsets are widened to `u64` on disk, so the written format has
/// headroom for edge arrays beyond the in-memory builder's `u32`
/// capacity ceiling.
pub fn write_graph_map(graph: &SocialGraph, path: &Path) -> Result<(), GraphMapError> {
    let n = graph.user_count();
    let m = graph.edge_count();
    let names = [
        SEC_META,
        SEC_FRIEND_OFFSETS,
        SEC_FRIEND_TARGETS,
        SEC_FAN_OFFSETS,
        SEC_FAN_TARGETS,
    ];
    let lens: [u64; 5] = [
        16,
        (n as u64 + 1) * 8,
        m as u64 * 4,
        (n as u64 + 1) * 8,
        m as u64 * 4,
    ];

    // Header + table are fixed-size for the five known names.
    let table_len: u64 = names
        .iter()
        .map(|s| 4 + s.len() as u64 + 8 + 8 + 8)
        .sum::<u64>();
    let mut offs = [0u64; 5];
    let mut cursor = align_up(16 + table_len, SECTION_ALIGN);
    for (i, len) in lens.iter().enumerate() {
        offs[i] = cursor;
        cursor = align_up(cursor + len, SECTION_ALIGN);
    }

    // Streaming checksum pre-pass: hash each section's byte image
    // without materialising it.
    let meta_bytes = {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&(n as u64).to_le_bytes());
        b[8..].copy_from_slice(&(m as u64).to_le_bytes());
        b
    };
    fn hash_offsets(n: usize, row_len: impl Fn(UserId) -> usize) -> u64 {
        let mut h = Fnv::new();
        let mut acc = 0u64;
        h.update(&acc.to_le_bytes());
        for u in 0..n {
            acc += row_len(UserId::from_index(u)) as u64;
            h.update(&acc.to_le_bytes());
        }
        h.0
    }
    fn hash_targets<'g>(n: usize, row: impl Fn(UserId) -> &'g [UserId]) -> u64 {
        let mut h = Fnv::new();
        for u in 0..n {
            for &t in row(UserId::from_index(u)) {
                h.update(&t.0.to_le_bytes());
            }
        }
        h.0
    }
    let sums: [u64; 5] = [
        fnv1a64(&meta_bytes),
        hash_offsets(n, |u| graph.friend_count(u)),
        hash_targets(n, |u| graph.friends(u)),
        hash_offsets(n, |u| graph.fan_count(u)),
        hash_targets(n, |u| graph.fans(u)),
    ];

    // Write pass, into a sibling tmp file then rename.
    let tmp = path.with_extension("graphmap.tmp");
    let file = File::create(&tmp)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    // digg-lint: allow(no-truncating-cast) — five fixed section names, lengths far below u32
    w.write_all(&(names.len() as u32).to_le_bytes())?;
    for i in 0..names.len() {
        // digg-lint: allow(no-truncating-cast) — five fixed section names, lengths far below u32
        w.write_all(&(names[i].len() as u32).to_le_bytes())?;
        w.write_all(names[i].as_bytes())?;
        w.write_all(&offs[i].to_le_bytes())?;
        w.write_all(&lens[i].to_le_bytes())?;
        w.write_all(&sums[i].to_le_bytes())?;
    }
    let mut written = 16 + table_len;
    let pad_to = |w: &mut std::io::BufWriter<File>, target: u64, written: &mut u64| {
        const ZEROS: [u8; 64] = [0; 64];
        while *written < target {
            let chunk = ((target - *written) as usize).min(ZEROS.len());
            w.write_all(&ZEROS[..chunk])?;
            *written += chunk as u64;
        }
        Ok::<(), std::io::Error>(())
    };

    pad_to(&mut w, offs[0], &mut written)?;
    w.write_all(&meta_bytes)?;
    written += 16;

    fn write_offsets(
        w: &mut std::io::BufWriter<File>,
        written: &mut u64,
        n: usize,
        row_len: impl Fn(UserId) -> usize,
    ) -> std::io::Result<()> {
        let mut acc = 0u64;
        w.write_all(&acc.to_le_bytes())?;
        for u in 0..n {
            acc += row_len(UserId::from_index(u)) as u64;
            w.write_all(&acc.to_le_bytes())?;
        }
        *written += (n as u64 + 1) * 8;
        Ok(())
    }
    fn write_targets<'g>(
        w: &mut std::io::BufWriter<File>,
        written: &mut u64,
        n: usize,
        m: usize,
        row: impl Fn(UserId) -> &'g [UserId],
    ) -> std::io::Result<()> {
        for u in 0..n {
            for &t in row(UserId::from_index(u)) {
                w.write_all(&t.0.to_le_bytes())?;
            }
        }
        *written += m as u64 * 4;
        Ok(())
    }

    pad_to(&mut w, offs[1], &mut written)?;
    write_offsets(&mut w, &mut written, n, |u| graph.friend_count(u))?;
    pad_to(&mut w, offs[2], &mut written)?;
    write_targets(&mut w, &mut written, n, m, |u| graph.friends(u))?;
    pad_to(&mut w, offs[3], &mut written)?;
    write_offsets(&mut w, &mut written, n, |u| graph.fan_count(u))?;
    pad_to(&mut w, offs[4], &mut written)?;
    write_targets(&mut w, &mut written, n, m, |u| graph.fans(u))?;

    w.flush()?;
    let f = w.into_inner().map_err(|e| e.into_error())?;
    // Durability barrier before the rename publishes the name.
    // Skipped under Miri, which has no stable storage to sync.
    if !cfg!(miri) {
        f.sync_all()?;
    }
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn read_u32(bytes: &[u8], off: usize) -> Result<u32, GraphMapError> {
    let end = off.checked_add(4).ok_or(GraphMapError::Truncated)?;
    let b = bytes.get(off..end).ok_or(GraphMapError::Truncated)?;
    // digg-lint: allow(no-lib-unwrap) — 4-byte slice to 4-byte array cannot fail
    Ok(u32::from_le_bytes(b.try_into().unwrap()))
}

fn read_u64(bytes: &[u8], off: usize) -> Result<u64, GraphMapError> {
    let end = off.checked_add(8).ok_or(GraphMapError::Truncated)?;
    let b = bytes.get(off..end).ok_or(GraphMapError::Truncated)?;
    // digg-lint: allow(no-lib-unwrap) — 8-byte slice to 8-byte array cannot fail
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

/// Parse the header and section table from the raw image.
fn parse_table(bytes: &[u8]) -> Result<Vec<TableEntry>, GraphMapError> {
    if bytes.len() < 16 {
        return Err(GraphMapError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(GraphMapError::BadMagic);
    }
    let version = read_u32(bytes, 8)?;
    if version != FORMAT_VERSION {
        return Err(GraphMapError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let count = read_u32(bytes, 12)? as usize;
    if count > 1024 {
        return Err(GraphMapError::Malformed(format!(
            "implausible section count {count}"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    let mut pos = 16usize;
    for _ in 0..count {
        let name_len = read_u32(bytes, pos)? as usize;
        pos += 4;
        if name_len > 256 {
            return Err(GraphMapError::Malformed(format!(
                "implausible section name length {name_len}"
            )));
        }
        let end = pos.checked_add(name_len).ok_or(GraphMapError::Truncated)?;
        let name_bytes = bytes.get(pos..end).ok_or(GraphMapError::Truncated)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| GraphMapError::Malformed("section name is not UTF-8".into()))?
            .to_string();
        pos = end;
        let off = read_u64(bytes, pos)?;
        let len = read_u64(bytes, pos + 8)?;
        let checksum = read_u64(bytes, pos + 16)?;
        pos += 24;
        entries.push(TableEntry {
            name,
            off,
            len,
            checksum,
        });
    }
    Ok(entries)
}

/// Resolve a named section to a validated byte range: present, within
/// the file, 64-byte aligned, and exactly `want_len` bytes.
fn resolve(
    entries: &[TableEntry],
    bytes: &[u8],
    name: &str,
    want_len: u64,
) -> Result<SectionRange, GraphMapError> {
    let e = entries
        .iter()
        .find(|e| e.name == name)
        .ok_or_else(|| GraphMapError::MissingSection { name: name.into() })?;
    if e.off % SECTION_ALIGN != 0 {
        return Err(GraphMapError::MisalignedSection { name: name.into() });
    }
    let end = e.off.checked_add(e.len).ok_or(GraphMapError::Truncated)?;
    if end > bytes.len() as u64 {
        return Err(GraphMapError::Truncated);
    }
    if e.len != want_len {
        return Err(GraphMapError::Malformed(format!(
            "section '{name}' is {} bytes, expected {want_len}",
            e.len
        )));
    }
    Ok(SectionRange {
        off: usize::try_from(e.off).map_err(|_| GraphMapError::Truncated)?,
        len: usize::try_from(e.len).map_err(|_| GraphMapError::Truncated)?,
    })
}

#[cfg(all(unix, not(miri)))]
fn map_file(file: &File, len: usize) -> Option<Backing> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: a fresh private read-only mapping of a file we hold
    // open; the kernel validates fd and length, and failure is
    // reported via MAP_FAILED which we turn into the heap fallback.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == sys::map_failed() || ptr.is_null() {
        None
    } else {
        Some(Backing::Mmap {
            ptr: ptr.cast_const().cast(),
            len,
        })
    }
}

/// Read the whole file into an 8-byte-aligned heap image — the
/// portable fallback when mapping is unavailable.
fn read_file(file: &mut File, len: usize) -> Result<Backing, GraphMapError> {
    let words = len.div_ceil(8);
    let mut buf = vec![0u64; words];
    {
        // SAFETY: reinterpreting the zero-initialised u64 buffer as
        // bytes for the read; u64 has no invalid bit patterns, so
        // partially overwriting it with file bytes keeps it valid.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(dst)?;
    }
    Ok(Backing::Heap { buf, len })
}

impl GraphMap {
    /// Open and **fully verify** a graph map: header, section table,
    /// alignment, every section checksum, and the CSR invariants
    /// (monotone offsets closing at the edge count, every target id in
    /// range). O(file size) in CPU but still O(1) in memory — the
    /// verification streams through the mapping.
    ///
    /// Any corruption — byte flips, truncation, resized or misaligned
    /// sections, foreign versions — comes back as a typed
    /// [`GraphMapError`]; this constructor never panics on bad input.
    pub fn open(path: &Path) -> Result<GraphMap, GraphMapError> {
        let map = GraphMap::open_trusted(path)?;
        map.verify()?;
        Ok(map)
    }

    /// Open with structural checks only (header, table, alignment,
    /// section sizes): O(sections) work regardless of graph size —
    /// the out-of-core fast path for files this process wrote or has
    /// verified before.
    ///
    /// Skipped are the per-section checksums and the CSR invariant
    /// scan, so a *corrupt* trusted file can produce wrong analytics
    /// or an index panic downstream — but never undefined behaviour:
    /// every row access is bounds-checked slice indexing.
    pub fn open_trusted(path: &Path) -> Result<GraphMap, GraphMapError> {
        if cfg!(target_endian = "big") {
            return Err(GraphMapError::Malformed(
                "graph maps are little-endian images; big-endian hosts must rebuild".into(),
            ));
        }
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| GraphMapError::Truncated)?;
        if len < 16 {
            return Err(GraphMapError::Truncated);
        }
        #[cfg(all(unix, not(miri)))]
        let backing = match map_file(&file, len) {
            Some(b) => b,
            None => read_file(&mut file, len)?,
        };
        #[cfg(any(not(unix), miri))]
        let backing = read_file(&mut file, len)?;

        let bytes = backing.bytes();
        let entries = parse_table(bytes)?;
        let meta = resolve(&entries, bytes, SEC_META, 16)?;
        let user_count = usize::try_from(read_u64(bytes, meta.off)?)
            .map_err(|_| GraphMapError::Malformed("user count exceeds address space".into()))?;
        let edge_count = usize::try_from(read_u64(bytes, meta.off + 8)?)
            .map_err(|_| GraphMapError::Malformed("edge count exceeds address space".into()))?;
        // Checked: a corrupted meta section may carry counts whose
        // byte sizes overflow u64 — that is Malformed, not a panic.
        let off_len = (user_count as u64)
            .checked_add(1)
            .and_then(|v| v.checked_mul(8))
            .ok_or_else(|| GraphMapError::Malformed("user count overflows section size".into()))?;
        let tgt_len = (edge_count as u64)
            .checked_mul(4)
            .ok_or_else(|| GraphMapError::Malformed("edge count overflows section size".into()))?;
        let friend_offsets = resolve(&entries, bytes, SEC_FRIEND_OFFSETS, off_len)?;
        let friend_targets = resolve(&entries, bytes, SEC_FRIEND_TARGETS, tgt_len)?;
        let fan_offsets = resolve(&entries, bytes, SEC_FAN_OFFSETS, off_len)?;
        let fan_targets = resolve(&entries, bytes, SEC_FAN_TARGETS, tgt_len)?;
        Ok(GraphMap {
            backing,
            user_count,
            edge_count,
            friend_offsets,
            friend_targets,
            fan_offsets,
            fan_targets,
        })
    }

    /// The full-verification tail of [`GraphMap::open`]: checksums
    /// plus CSR invariants.
    fn verify(&self) -> Result<(), GraphMapError> {
        let bytes = self.backing.bytes();
        let entries = parse_table(bytes)?;
        for e in &entries {
            let end = e.off.checked_add(e.len).ok_or(GraphMapError::Truncated)?;
            if end > bytes.len() as u64 {
                return Err(GraphMapError::Truncated);
            }
            let payload = &bytes[usize::try_from(e.off).map_err(|_| GraphMapError::Truncated)?
                ..usize::try_from(end).map_err(|_| GraphMapError::Truncated)?];
            if fnv1a64(payload) != e.checksum {
                return Err(GraphMapError::CorruptSection {
                    name: e.name.clone(),
                });
            }
        }
        let check_view = |offsets: &[u64], targets: &[UserId], what: &str| {
            if offsets.first() != Some(&0) {
                return Err(GraphMapError::Malformed(format!(
                    "{what} offsets do not start at 0"
                )));
            }
            if offsets.last() != Some(&(self.edge_count as u64)) {
                return Err(GraphMapError::Malformed(format!(
                    "{what} offsets do not close at the edge count"
                )));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(GraphMapError::Malformed(format!(
                    "{what} offsets are not monotone"
                )));
            }
            if targets.iter().any(|t| t.index() >= self.user_count) {
                return Err(GraphMapError::Malformed(format!(
                    "{what} targets reference users beyond the user count"
                )));
            }
            Ok(())
        };
        check_view(self.friend_offsets(), self.friend_target_ids(), "friend")?;
        check_view(self.fan_offsets(), self.fan_target_ids(), "fan")?;
        Ok(())
    }

    /// Number of users (nodes).
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Number of watch edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn u64_section(&self, r: SectionRange) -> &[u64] {
        let bytes = &self.backing.bytes()[r.off..r.off + r.len];
        debug_assert_eq!(bytes.as_ptr().align_offset(std::mem::align_of::<u64>()), 0);
        // SAFETY: the range was validated at open time to lie within
        // the image at a 64-byte-aligned offset with a length that is
        // a multiple of 8; the base is page-aligned (mmap) or 8-byte
        // aligned (Vec<u64> heap image), so the pointer is aligned for
        // u64 and every byte is initialised.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) }
    }

    fn id_section(&self, r: SectionRange) -> &[UserId] {
        let bytes = &self.backing.bytes()[r.off..r.off + r.len];
        debug_assert_eq!(bytes.as_ptr().align_offset(std::mem::align_of::<u32>()), 0);
        // SAFETY: as in `u64_section` (alignment and bounds validated
        // at open, length a multiple of 4), plus `UserId` is
        // repr(transparent) over u32, so `[u32]` and `[UserId]` are
        // layout-identical.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<UserId>(), bytes.len() / 4) }
    }

    fn friend_offsets(&self) -> &[u64] {
        self.u64_section(self.friend_offsets)
    }

    fn fan_offsets(&self) -> &[u64] {
        self.u64_section(self.fan_offsets)
    }

    fn friend_target_ids(&self) -> &[UserId] {
        self.id_section(self.friend_targets)
    }

    fn fan_target_ids(&self) -> &[UserId] {
        self.id_section(self.fan_targets)
    }

    #[inline]
    fn row<'a>(offsets: &[u64], targets: &'a [UserId], u: usize) -> &'a [UserId] {
        &targets[offsets[u] as usize..offsets[u + 1] as usize]
    }

    /// Users that `a` watches, sorted ascending. Same contract as
    /// [`SocialGraph::friends`](crate::SocialGraph::friends).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn friends(&self, a: UserId) -> &[UserId] {
        Self::row(self.friend_offsets(), self.friend_target_ids(), a.index())
    }

    /// Users watching `b`, sorted ascending. Same contract as
    /// [`SocialGraph::fans`](crate::SocialGraph::fans).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn fans(&self, b: UserId) -> &[UserId] {
        Self::row(self.fan_offsets(), self.fan_target_ids(), b.index())
    }

    /// Materialise the snapshot back into an in-memory
    /// [`SocialGraph`]. O(n + m) copies; exists for the bit-identity
    /// cross-checks, not for serving sweeps (that is what the map
    /// itself is for).
    ///
    /// # Errors
    ///
    /// [`GraphMapError::Malformed`] if an offset exceeds the in-memory
    /// `u32` CSR capacity (the on-disk format is u64-indexed and can
    /// hold graphs the in-memory layout cannot).
    pub fn to_social_graph(&self) -> Result<SocialGraph, GraphMapError> {
        let narrow = |offsets: &[u64]| {
            offsets
                .iter()
                .map(|&o| u32::try_from(o))
                .collect::<Result<Vec<u32>, _>>()
                .map_err(|_| {
                    GraphMapError::Malformed(
                        "edge count exceeds the in-memory u32 CSR capacity".into(),
                    )
                })
        };
        Ok(SocialGraph::from_csr(
            narrow(self.friend_offsets())?,
            self.friend_target_ids().to_vec(),
            narrow(self.fan_offsets())?,
            self.fan_target_ids().to_vec(),
        ))
    }
}

impl fmt::Debug for GraphMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphMap")
            .field("user_count", &self.user_count)
            .field("edge_count", &self.edge_count)
            .finish_non_exhaustive()
    }
}

impl FanView for GraphMap {
    #[inline]
    fn user_count(&self) -> usize {
        GraphMap::user_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        GraphMap::edge_count(self)
    }

    #[inline]
    fn friends(&self, a: UserId) -> &[UserId] {
        GraphMap::friends(self, a)
    }

    #[inline]
    fn fans(&self, b: UserId) -> &[UserId] {
        GraphMap::fans(self, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> SocialGraph {
        // Mixed degrees including isolated users and a hub.
        let mut b = GraphBuilder::new(50);
        for f in 1..20u32 {
            b.add_watch(UserId(f), UserId(0));
        }
        for (a, t) in [(3u32, 7u32), (7, 3), (44, 45), (45, 44), (10, 49)] {
            b.add_watch(UserId(a), UserId(t));
        }
        b.build()
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("graphmap-unit-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_identical_under_both_opens() {
        let g = sample_graph();
        let path = tmp_path("roundtrip.graphmap");
        write_graph_map(&g, &path).expect("write");
        for map in [
            GraphMap::open(&path).expect("verified open"),
            GraphMap::open_trusted(&path).expect("trusted open"),
        ] {
            assert_eq!(map.user_count(), g.user_count());
            assert_eq!(map.edge_count(), g.edge_count());
            for u in g.users() {
                assert_eq!(map.friends(u), g.friends(u), "friends of {u}");
                assert_eq!(map.fans(u), g.fans(u), "fans of {u}");
            }
            assert_eq!(map.to_social_graph().expect("widening fits"), g);
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = SocialGraph::empty(3);
        let path = tmp_path("empty.graphmap");
        write_graph_map(&g, &path).expect("write");
        let map = GraphMap::open(&path).expect("open");
        assert_eq!(map.user_count(), 3);
        assert_eq!(map.edge_count(), 0);
        assert!(map.friends(UserId(2)).is_empty());
        assert_eq!(map.to_social_graph().expect("trivially fits"), g);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn sections_are_cache_line_aligned_on_disk() {
        let g = sample_graph();
        let path = tmp_path("aligned.graphmap");
        write_graph_map(&g, &path).expect("write");
        let bytes = std::fs::read(&path).expect("read back");
        let entries = parse_table(&bytes).expect("table parses");
        assert_eq!(entries.len(), 5);
        for e in &entries {
            assert_eq!(e.off % SECTION_ALIGN, 0, "section '{}' misaligned", e.name);
            let payload = &bytes[e.off as usize..(e.off + e.len) as usize];
            assert_eq!(fnv1a64(payload), e.checksum, "section '{}'", e.name);
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_file_is_io_not_panic() {
        let err = GraphMap::open(&tmp_path("does-not-exist.graphmap")).expect_err("must fail");
        assert!(matches!(err, GraphMapError::Io(_)), "got {err:?}");
    }

    #[test]
    fn writer_is_atomic_no_tmp_left_behind() {
        let g = sample_graph();
        let path = tmp_path("atomic.graphmap");
        write_graph_map(&g, &path).expect("write");
        assert!(path.exists());
        assert!(!path.with_extension("graphmap.tmp").exists());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn fan_view_dispatch_matches_social_graph() {
        let g = sample_graph();
        let path = tmp_path("view.graphmap");
        write_graph_map(&g, &path).expect("write");
        let map = GraphMap::open(&path).expect("open");
        let candidates = [UserId(0), UserId(49)];
        for u in g.users() {
            assert_eq!(
                FanView::is_fan_of_any(&map, u, &candidates),
                g.is_fan_of_any(u, &candidates),
                "user {u}"
            );
        }
        std::fs::remove_file(&path).expect("cleanup");
    }
}
