//! Degree sequences and structural metrics.
//!
//! These feed two parts of the reproduction: the unnumbered
//! friends-vs-fans scatter at the end of the paper (SCATTER), and the
//! sanity checks that generated graphs are heavy-tailed (the premise
//! of the future-work epidemics experiments, ABL4).

use crate::graph::SocialGraph;
use crate::id::UserId;

/// In-degree (fan-count) sequence indexed by user.
pub fn fan_counts(g: &SocialGraph) -> Vec<u64> {
    g.users().map(|u| g.fan_count(u) as u64).collect()
}

/// Out-degree (friend-count) sequence indexed by user.
pub fn friend_counts(g: &SocialGraph) -> Vec<u64> {
    g.users().map(|u| g.friend_count(u) as u64).collect()
}

/// `(friends + 1, fans + 1)` pairs for every user — exactly the axes
/// of the paper's final figure (the +1 keeps zero-degree users on
/// log axes).
pub fn friends_fans_scatter(g: &SocialGraph) -> Vec<(f64, f64)> {
    g.users()
        .map(|u| (g.friend_count(u) as f64 + 1.0, g.fan_count(u) as f64 + 1.0))
        .collect()
}

/// Edge density: edges / (n * (n - 1)). 0 for graphs with < 2 users.
pub fn density(g: &SocialGraph) -> f64 {
    let n = g.user_count();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Reciprocity: fraction of watch edges whose reverse edge also
/// exists. Digg friendships are asymmetric, but mutual watching is
/// common among the top users; the simulator reproduces a tunable
/// reciprocity. Returns 0 for an edgeless graph.
pub fn reciprocity(g: &SocialGraph) -> f64 {
    let m = g.edge_count();
    if m == 0 {
        return 0.0;
    }
    let mutual = g.edges().filter(|&(a, b)| g.watches(b, a)).count();
    mutual as f64 / m as f64
}

/// Local clustering coefficient of `u` on the undirected projection:
/// fraction of pairs of neighbours that are themselves connected (in
/// either direction). Users with fewer than two neighbours score 0.
pub fn local_clustering(g: &SocialGraph, u: UserId) -> f64 {
    let mut nbrs: Vec<UserId> = g.friends(u).iter().chain(g.fans(u)).copied().collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.watches(nbrs[i], nbrs[j]) || g.watches(nbrs[j], nbrs[i]) {
                links += 1;
            }
        }
    }
    links as f64 * 2.0 / (k as f64 * (k as f64 - 1.0))
}

/// Mean local clustering over all users (0 for the empty graph).
pub fn average_clustering(g: &SocialGraph) -> f64 {
    let n = g.user_count();
    if n == 0 {
        return 0.0;
    }
    g.users().map(|u| local_clustering(g, u)).sum::<f64>() / n as f64
}

/// Degree assortativity (Pearson correlation of total degrees across
/// edge endpoints, on the undirected projection). Positive values mean
/// well-connected users preferentially watch each other — the
/// "top users form a core" structure the paper's scatter hints at.
/// Returns `None` for graphs with fewer than 2 edges or degenerate
/// degree variance.
pub fn degree_assortativity(g: &SocialGraph) -> Option<f64> {
    if g.edge_count() < 2 {
        return None;
    }
    let deg = |u: UserId| (g.fan_count(u) + g.friend_count(u)) as f64;
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for (a, b) in g.edges() {
        // Undirected projection: count each edge in both orientations
        // so the correlation is symmetric.
        xs.push(deg(a));
        ys.push(deg(b));
        xs.push(deg(b));
        ys.push(deg(a));
    }
    digg_stats::correlation::pearson(&xs, &ys)
}

/// Mean degree of the undirected projection (= 2m/n treating each
/// directed edge once). 0 for the empty graph.
pub fn mean_degree(g: &SocialGraph) -> f64 {
    let n = g.user_count();
    if n == 0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> SocialGraph {
        // 0 <-> 1 mutual; 2 watches 0 and 1; 3 isolated.
        let mut b = GraphBuilder::new(4);
        b.add_watch(UserId(0), UserId(1));
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(0));
        b.add_watch(UserId(2), UserId(1));
        b.build()
    }

    #[test]
    fn degree_sequences() {
        let g = sample();
        assert_eq!(fan_counts(&g), vec![2, 2, 0, 0]);
        assert_eq!(friend_counts(&g), vec![1, 1, 2, 0]);
    }

    #[test]
    fn scatter_offsets_by_one() {
        let g = sample();
        let s = friends_fans_scatter(&g);
        assert_eq!(s[3], (1.0, 1.0)); // isolated user
        assert_eq!(s[2], (3.0, 1.0));
    }

    #[test]
    fn density_and_mean_degree() {
        let g = sample();
        assert!((density(&g) - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(mean_degree(&g), 2.0);
        assert_eq!(density(&SocialGraph::empty(1)), 0.0);
        assert_eq!(mean_degree(&SocialGraph::empty(0)), 0.0);
    }

    #[test]
    fn reciprocity_counts_mutual_pairs() {
        let g = sample();
        // Edges: 0->1, 1->0 (mutual), 2->0, 2->1. Mutual edges: 2 of 4.
        assert!((reciprocity(&g) - 0.5).abs() < 1e-12);
        assert_eq!(reciprocity(&SocialGraph::empty(3)), 0.0);
    }

    #[test]
    fn assortativity_signs() {
        // Star graph: hub connected to leaves -> disassortative.
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6 {
            b.add_watch(UserId(leaf), UserId(0));
        }
        let star = b.build();
        let r = degree_assortativity(&star).unwrap();
        assert!(r < 0.0, "star should be disassortative, got {r}");

        // Two disjoint cliques of different sizes -> assortative
        // (high-degree nodes link to high-degree nodes).
        let mut b = GraphBuilder::new(7);
        for a in 0..4u32 {
            for c in 0..4u32 {
                if a != c {
                    b.add_watch(UserId(a), UserId(c));
                }
            }
        }
        b.add_watch(UserId(4), UserId(5));
        b.add_watch(UserId(5), UserId(6));
        let cliques = b.build();
        let r = degree_assortativity(&cliques).unwrap();
        assert!(r > 0.0, "cliques should be assortative, got {r}");

        // Degenerate graphs return None.
        assert!(degree_assortativity(&SocialGraph::empty(3)).is_none());
    }

    #[test]
    fn clustering_of_triangle_closure() {
        let g = sample();
        // User 2's neighbours {0, 1} are connected -> clustering 1.
        assert_eq!(local_clustering(&g, UserId(2)), 1.0);
        // User 3 has no neighbours.
        assert_eq!(local_clustering(&g, UserId(3)), 0.0);
        let avg = average_clustering(&g);
        assert!(avg > 0.0 && avg <= 1.0);
    }
}
