//! Property-based tests for the social-graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_graph::generators;
use social_graph::io;
use social_graph::metrics;
use social_graph::traversal::{self, Direction};
use social_graph::{GraphBuilder, SocialGraph, UserId};

/// Arbitrary edge lists over a small id space.
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..40, 0u32..40), 0..300)
}

fn build(edges: &[(u32, u32)]) -> SocialGraph {
    let mut b = GraphBuilder::new(0);
    for &(a, c) in edges {
        b.add_watch(UserId(a), UserId(c));
    }
    b.build()
}

proptest! {
    #[test]
    fn friends_and_fans_are_inverse_views(edges in edges_strategy()) {
        let g = build(&edges);
        // Every friend edge appears as a fan edge and vice versa.
        for a in g.users() {
            for &b in g.friends(a) {
                prop_assert!(g.fans(b).contains(&a));
            }
            for &f in g.fans(a) {
                prop_assert!(g.friends(f).contains(&a));
            }
        }
    }

    #[test]
    fn edge_count_matches_adjacency_totals(edges in edges_strategy()) {
        let g = build(&edges);
        let via_friends: usize = g.users().map(|u| g.friend_count(u)).sum();
        let via_fans: usize = g.users().map(|u| g.fan_count(u)).sum();
        prop_assert_eq!(via_friends, g.edge_count());
        prop_assert_eq!(via_fans, g.edge_count());
    }

    #[test]
    fn no_self_loops_survive(edges in edges_strategy()) {
        let g = build(&edges);
        for u in g.users() {
            prop_assert!(!g.watches(u, u));
        }
    }

    #[test]
    fn watches_agrees_with_adjacency(edges in edges_strategy()) {
        let g = build(&edges);
        for (a, b) in g.edges() {
            prop_assert!(g.watches(a, b));
        }
    }

    #[test]
    fn edge_list_roundtrip(edges in edges_strategy()) {
        let g = build(&edges);
        let text = io::to_edge_list(&g);
        let g2 = io::from_edge_list(&text, g.user_count()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn bfs_distance_zero_is_source(edges in edges_strategy(), src in 0u32..40) {
        let g = build(&edges);
        if (src as usize) < g.user_count() {
            let d = traversal::bfs_distances(&g, UserId(src), Direction::Friends);
            prop_assert_eq!(d[src as usize], Some(0));
            // Triangle-ish property: any neighbour has distance <= 1.
            for &f in g.friends(UserId(src)) {
                prop_assert!(d[f.index()] == Some(1) || f == UserId(src));
            }
        }
    }

    #[test]
    fn component_ids_are_consistent_with_edges(edges in edges_strategy()) {
        let g = build(&edges);
        let comp = traversal::weak_components(&g);
        for (a, b) in g.edges() {
            prop_assert_eq!(comp[a.index()], comp[b.index()]);
        }
    }

    #[test]
    fn largest_component_bounded_by_user_count(edges in edges_strategy()) {
        let g = build(&edges);
        let l = traversal::largest_component_size(&g);
        prop_assert!(l <= g.user_count());
        if g.user_count() > 0 {
            prop_assert!(l >= 1);
        }
    }

    #[test]
    fn reciprocity_and_density_in_unit_interval(edges in edges_strategy()) {
        let g = build(&edges);
        let r = metrics::reciprocity(&g);
        prop_assert!((0.0..=1.0).contains(&r));
        let d = metrics::density(&g);
        prop_assert!((0.0..=1.0).contains(&d));
        let c = metrics::average_clustering(&g);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn ranking_is_sorted_by_fans(edges in edges_strategy()) {
        let g = build(&edges);
        let ranked = g.users_by_fans_desc();
        prop_assert_eq!(ranked.len(), g.user_count());
        for w in ranked.windows(2) {
            prop_assert!(g.fan_count(w[0]) >= g.fan_count(w[1]));
        }
    }

    #[test]
    fn er_density_tracks_p(seed in any::<u64>(), p in 0.0..0.2f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(&mut rng, 120, p);
        let d = metrics::density(&g);
        // Loose statistical bound: density within 5 sigma of p.
        let sigma = (p * (1.0 - p) / (120.0 * 119.0)).sqrt();
        prop_assert!((d - p).abs() < 5.0 * sigma + 0.01, "density {d} vs p {p}");
    }

    #[test]
    fn pa_graph_is_weakly_connected(seed in any::<u64>(), m in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::preferential_attachment(&mut rng, 100, m, 1.0);
        prop_assert_eq!(traversal::weak_component_count(&g), 1);
    }
}
