//! Corruption fuzzing for the mmap-backed graph snapshot.
//!
//! `GraphMap::open` promises that *any* damaged file comes back as a
//! typed `GraphMapError` — never a panic, never undefined behaviour.
//! These tests manufacture damage the way `digg-snapshot`'s proptests
//! do: flip every byte, truncate at every length, misalign a section,
//! and patch the version, then assert the reader's verdict. Every
//! assertion runs in-process, so a panic (let alone UB) fails the
//! suite outright.

use social_graph::mmap::{write_graph_map, GraphMap, GraphMapError, FORMAT_VERSION};
use social_graph::{GraphBuilder, UserId};
use std::path::PathBuf;

/// A small but non-trivial graph: a hub, mutual edges, isolated users.
fn sample_bytes() -> Vec<u8> {
    let mut b = GraphBuilder::new(40);
    for f in 1..12u32 {
        b.add_watch(UserId(f), UserId(0));
    }
    for (a, t) in [(5u32, 9u32), (9, 5), (30, 31), (14, 39)] {
        b.add_watch(UserId(a), UserId(t));
    }
    let g = b.build();
    let path = tmp_path("pristine.graphmap");
    write_graph_map(&g, &path).expect("write sample");
    let bytes = std::fs::read(&path).expect("read sample back");
    std::fs::remove_file(&path).expect("cleanup");
    bytes
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphmap-corruption-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn open_patched(bytes: &[u8], name: &str) -> Result<GraphMap, GraphMapError> {
    let path = tmp_path(name);
    std::fs::write(&path, bytes).expect("write patched file");
    let out = GraphMap::open(&path);
    std::fs::remove_file(&path).expect("cleanup");
    out
}

#[test]
fn pristine_file_opens() {
    let bytes = sample_bytes();
    let map = open_patched(&bytes, "ok.graphmap").expect("pristine file must open");
    assert_eq!(map.user_count(), 40);
    assert_eq!(map.fans(UserId(0)).len(), 11);
}

/// Exhaustive natively; under Miri every iteration costs ~1000x, so
/// sample with a stride coprime to the 8-byte word and 64-byte
/// section layout — successive Miri runs of the suite still walk
/// header, table, and every section class.
const STEP: usize = if cfg!(miri) { 37 } else { 1 };

#[test]
fn every_single_byte_flip_is_detected_or_harmless() {
    let pristine = sample_bytes();
    let reference = open_patched(&pristine, "ref.graphmap").expect("pristine opens");
    for i in (0..pristine.len()).step_by(STEP) {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0xff;
        // Typed rejection is the expected outcome; getting an Err at
        // all (instead of a panic) is the property. A flip the
        // verifier accepts can only live in inter-section padding: the
        // graph served must be identical.
        if let Ok(map) = open_patched(&bytes, "flip.graphmap") {
            assert_eq!(map.user_count(), reference.user_count(), "byte {i}");
            assert_eq!(map.edge_count(), reference.edge_count(), "byte {i}");
            for u in 0..map.user_count() {
                let u = UserId::from_index(u);
                assert_eq!(map.friends(u), reference.friends(u), "byte {i}");
                assert_eq!(map.fans(u), reference.fans(u), "byte {i}");
            }
        }
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let pristine = sample_bytes();
    for cut in (0..pristine.len()).step_by(STEP) {
        let err = open_patched(&pristine[..cut], "trunc.graphmap")
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} must not open"));
        // Any typed error is acceptable; the match proves we got a
        // value, not a panic.
        match err {
            GraphMapError::BadMagic
            | GraphMapError::Truncated
            | GraphMapError::VersionMismatch { .. }
            | GraphMapError::CorruptSection { .. }
            | GraphMapError::MissingSection { .. }
            | GraphMapError::MisalignedSection { .. }
            | GraphMapError::Malformed(_)
            | GraphMapError::Io(_) => {}
        }
    }
}

#[test]
fn version_patch_is_a_version_mismatch() {
    let mut bytes = sample_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    match open_patched(&bytes, "version.graphmap") {
        Err(GraphMapError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[..8].copy_from_slice(b"NOTAGMAP");
    assert!(matches!(
        open_patched(&bytes, "magic.graphmap"),
        Err(GraphMapError::BadMagic)
    ));
}

/// Patch the first section-table entry's payload offset to `off + 1`
/// (not 64-byte aligned). The table layout: 16-byte header, then per
/// entry name_len u32 + name + off u64 + len u64 + sum u64. The first
/// entry is "meta" (name_len 4).
#[test]
fn misaligned_section_offset_is_rejected() {
    let mut bytes = sample_bytes();
    let off_pos = 16 + 4 + 4; // header + name_len + "meta"
    let off = u64::from_le_bytes(bytes[off_pos..off_pos + 8].try_into().expect("8 bytes"));
    assert_eq!(off % 64, 0, "writer must have aligned the section");
    bytes[off_pos..off_pos + 8].copy_from_slice(&(off + 1).to_le_bytes());
    assert!(matches!(
        open_patched(&bytes, "misaligned.graphmap"),
        Err(GraphMapError::MisalignedSection { ref name }) if name == "meta"
    ));
}

/// Point a section beyond the end of the file.
#[test]
fn out_of_bounds_section_is_truncated_error() {
    let mut bytes = sample_bytes();
    let off_pos = 16 + 4 + 4;
    bytes[off_pos..off_pos + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    assert!(matches!(
        open_patched(&bytes, "oob.graphmap"),
        Err(GraphMapError::Truncated)
    ));
}

/// Zero out the section count: the required sections become missing.
#[test]
fn empty_section_table_is_missing_section() {
    let mut bytes = sample_bytes();
    bytes[12..16].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        open_patched(&bytes, "nosections.graphmap"),
        Err(GraphMapError::MissingSection { .. })
    ));
}

/// Flips confined to a target array must be caught by the checksum in
/// `open`, and by the invariant scan even if the checksum were to
/// collide — probe the Malformed layer directly by rewriting a
/// payload *and* its recorded checksum.
#[test]
fn consistent_checksum_with_invalid_ids_is_malformed() {
    let pristine = sample_bytes();
    // Locate the friend_targets entry in the table.
    let mut pos = 16usize;
    let mut target_entry = None;
    let count = u32::from_le_bytes(pristine[12..16].try_into().expect("4 bytes")) as usize;
    for _ in 0..count {
        let name_len =
            u32::from_le_bytes(pristine[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let name = &pristine[pos + 4..pos + 4 + name_len];
        let fields = pos + 4 + name_len;
        if name == b"friend_targets" {
            target_entry = Some(fields);
        }
        pos = fields + 24;
    }
    let fields = target_entry.expect("friend_targets entry present");
    let off =
        u64::from_le_bytes(pristine[fields..fields + 8].try_into().expect("8 bytes")) as usize;
    let len = u64::from_le_bytes(
        pristine[fields + 8..fields + 16]
            .try_into()
            .expect("8 bytes"),
    ) as usize;
    assert!(len >= 4, "sample graph has edges");

    let mut bytes = pristine.clone();
    // An id far beyond user_count=40, then re-seal the checksum so
    // only the invariant scan can object.
    bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let sum = digg_snapshot::fnv1a64(&bytes[off..off + len]);
    bytes[fields + 16..fields + 24].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        open_patched(&bytes, "badid.graphmap"),
        Err(GraphMapError::Malformed(_))
    ));
}
