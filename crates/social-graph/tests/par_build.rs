//! Thread-invariance of the sharded CSR construction path (ISSUE 3
//! acceptance): the parallel build and the sharded generators must
//! produce graphs **bit-identical** to their 1-thread runs at the
//! thread counts `DIGG_THREADS ∈ {1, 2, 8}` would select. Thread
//! counts are passed explicitly — `des_core::par::worker_threads` is
//! the only env parser, and every fan-out here takes the count as an
//! argument.

use proptest::prelude::*;
use social_graph::generators::{configuration_model_sharded, erdos_renyi_sharded};
use social_graph::{GraphBuilder, SocialGraph, UserId};

const THREADS: [usize; 3] = [1, 2, 8];

/// Edge lists with duplicates and self-loops over a modest id space
/// (self-loops exercise the `add_watch` drop path; duplicates exercise
/// per-shard dedup).
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..50, 0u32..50), 0..400)
}

fn builder_from(edges: &[(u32, u32)]) -> GraphBuilder {
    let mut b = GraphBuilder::new(0);
    b.extend_watches(edges.iter().map(|&(a, c)| (UserId(a), UserId(c))));
    b
}

proptest! {
    #[test]
    fn parallel_build_equals_serial_build(edges in edges_strategy()) {
        let serial = builder_from(&edges).build();
        for threads in THREADS {
            let parallel = builder_from(&edges).build_parallel(threads);
            prop_assert_eq!(&parallel, &serial, "diverged at {} threads", threads);
        }
    }

    #[test]
    fn sharded_erdos_renyi_is_thread_invariant(
        seed in any::<u64>(),
        n in 0usize..120,
        p in 0.0f64..0.2,
    ) {
        let one = erdos_renyi_sharded(seed, n, p, 1);
        for threads in THREADS {
            prop_assert_eq!(
                &erdos_renyi_sharded(seed, n, p, threads),
                &one,
                "diverged at {} threads",
                threads
            );
        }
    }

    #[test]
    fn sharded_configuration_model_is_thread_invariant(
        seed in any::<u64>(),
        degs in prop::collection::vec(0usize..5, 0..80),
    ) {
        let attr: Vec<f64> = degs.iter().map(|&d| d as f64 + 0.5).collect();
        let one = configuration_model_sharded(seed, &degs, &attr, 1);
        for threads in THREADS {
            prop_assert_eq!(
                &configuration_model_sharded(seed, &degs, &attr, threads),
                &one,
                "diverged at {} threads",
                threads
            );
        }
    }
}

/// A fixed-seed run big enough to clear the parallel path's small-input
/// fallback (≥ 8192 raw edges), so multi-shard bucketing, dedup and
/// both scatters genuinely execute on every thread count.
#[test]
fn fixed_seed_large_build_is_bit_identical() {
    let mut state = 0x2008_d166u64;
    let mut next = move || {
        // splitmix-style step, good enough to scatter edges around.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let n = 5_000u32;
    let edges: Vec<(u32, u32)> = (0..60_000).map(|_| (next() % n, next() % n)).collect();
    let serial = builder_from(&edges).build();
    assert!(
        serial.edge_count() > 50_000,
        "workload too small to be meaningful"
    );
    for threads in THREADS {
        let parallel = builder_from(&edges).build_parallel(threads);
        assert_eq!(
            parallel, serial,
            "parallel build diverged at {threads} threads"
        );
    }
}

/// The sharded generators at a fixed seed, across thread counts, on
/// inputs large enough to fan out.
#[test]
fn fixed_seed_sharded_generators_are_bit_identical() {
    let er: SocialGraph = erdos_renyi_sharded(77, 2_000, 0.006, 1);
    assert!(er.edge_count() > 8_192, "ER workload too small to shard");
    for threads in THREADS {
        assert_eq!(erdos_renyi_sharded(77, 2_000, 0.006, threads), er);
    }

    let degs = vec![6usize; 2_000];
    let attr: Vec<f64> = (0..2_000).map(|i| 1.0 + (i % 13) as f64).collect();
    let cm = configuration_model_sharded(77, &degs, &attr, 1);
    assert!(cm.edge_count() > 8_192, "CM workload too small to shard");
    for threads in THREADS {
        assert_eq!(configuration_model_sharded(77, &degs, &attr, threads), cm);
    }
}
