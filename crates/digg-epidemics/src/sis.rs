//! Discrete-time SIS on a social graph.
//!
//! Like [`crate::sir`] but recovered nodes return to the susceptible
//! pool, so an above-threshold infection persists at an endemic
//! prevalence — the setting of Pastor-Satorras & Vespignani's
//! vanishing-threshold result on scale-free networks (paper refs
//! [16, 17]).

use rand::Rng;
use social_graph::{SocialGraph, UserId};

/// Result of an SIS run.
#[derive(Debug, Clone, PartialEq)]
pub struct SisOutcome {
    /// Infectious-node count after each step.
    pub prevalence: Vec<usize>,
    /// Whether the infection was still alive at the end.
    pub survived: bool,
}

impl SisOutcome {
    /// Mean prevalence (as a fraction of `n`) over the last
    /// `tail` steps — the endemic-state estimator. Returns 0 for
    /// empty runs.
    pub fn endemic_prevalence(&self, n: usize, tail: usize) -> f64 {
        if self.prevalence.is_empty() || n == 0 {
            return 0.0;
        }
        let start = self.prevalence.len().saturating_sub(tail);
        let window = &self.prevalence[start..];
        let mean: f64 = window.iter().map(|&c| c as f64).sum::<f64>() / window.len() as f64;
        mean / n as f64
    }
}

/// Run SIS for `steps` steps: each infectious node infects each
/// susceptible fan with probability `beta`, then recovers (back to
/// susceptible) with probability `gamma`.
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn run<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    steps: usize,
) -> SisOutcome {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let n = graph.user_count();
    let mut infected = vec![false; n];
    let mut current: Vec<UserId> = Vec::new();
    for &s in seeds {
        if !infected[s.index()] {
            infected[s.index()] = true;
            current.push(s);
        }
    }
    let mut prevalence = Vec::with_capacity(steps);
    for _ in 0..steps {
        if current.is_empty() {
            prevalence.push(0);
            continue;
        }
        let mut newly: Vec<UserId> = Vec::new();
        for &u in &current {
            for &f in graph.fans(u) {
                if !infected[f.index()] && rng.random::<f64>() < beta {
                    infected[f.index()] = true;
                    newly.push(f);
                }
            }
        }
        current.retain(|&u| {
            if rng.random::<f64>() < gamma {
                infected[u.index()] = false;
                false
            } else {
                true
            }
        });
        current.extend(newly);
        prevalence.push(current.len());
    }
    let survived = prevalence.last().map(|&c| c > 0).unwrap_or(false);
    SisOutcome {
        prevalence,
        survived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::erdos_renyi;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn zero_beta_dies_out() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 200, 0.05);
        let out = run(&mut r, &g, &[UserId(0)], 0.0, 0.5, 200);
        assert!(!out.survived);
        assert_eq!(out.endemic_prevalence(200, 50), 0.0);
    }

    #[test]
    fn strong_infection_persists_on_dense_graph() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 300, 0.05);
        let out = run(&mut r, &g, &[UserId(0)], 0.6, 0.2, 300);
        assert!(out.survived, "infection died unexpectedly");
        assert!(
            out.endemic_prevalence(300, 100) > 0.3,
            "prevalence {}",
            out.endemic_prevalence(300, 100)
        );
    }

    #[test]
    fn prevalence_trace_has_one_entry_per_step() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 100, 0.05);
        let out = run(&mut r, &g, &[UserId(0)], 0.3, 0.3, 123);
        assert_eq!(out.prevalence.len(), 123);
    }

    #[test]
    fn empty_seed_run_is_flat_zero() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 50, 0.05);
        let out = run(&mut r, &g, &[], 0.9, 0.1, 10);
        assert!(out.prevalence.iter().all(|&c| c == 0));
        assert!(!out.survived);
    }
}
