//! Community structure: modularity and label propagation (paper refs
//! [6, 15]: Girvan–Newman, Newman).
//!
//! Used to (a) verify that [`social_graph::generators::modular`]
//! plants detectable structure, and (b) explore whether the simulated
//! Digg fan graph exhibits the "well-defined community structure" the
//! future-work section speculates about.

use rand::Rng;
use social_graph::{SocialGraph, UserId};

/// Newman's modularity `Q` of a partition (labels per node), computed
/// on the undirected projection of the watch graph: each directed
/// edge contributes once.
///
/// `Q = Σ_c (e_c / m - (d_c / 2m)^2)` with `e_c` intra-community
/// edges, `d_c` total (projected) degree of community `c`, `m` total
/// edges. Returns 0 for an edgeless graph.
pub fn modularity(graph: &SocialGraph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), graph.user_count(), "label per node required");
    let m = graph.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    // BTreeMap, not HashMap: the final loop *sums floats in map
    // iteration order*, and float addition does not commute in
    // rounding. A HashMap here made the last bits of `Q` depend on
    // `RandomState`'s per-process seed — the one class of bug this
    // crate's determinism contract (DESIGN.md §13) exists to prevent.
    use std::collections::BTreeMap;
    let mut intra: BTreeMap<u32, f64> = BTreeMap::new();
    let mut degree: BTreeMap<u32, f64> = BTreeMap::new();
    for (a, b) in graph.edges() {
        let la = labels[a.index()];
        let lb = labels[b.index()];
        if la == lb {
            *intra.entry(la).or_insert(0.0) += 1.0;
        }
        *degree.entry(la).or_insert(0.0) += 1.0;
        *degree.entry(lb).or_insert(0.0) += 1.0;
    }
    let mut q = 0.0;
    for (c, d) in &degree {
        let e = intra.get(c).copied().unwrap_or(0.0);
        q += e / m - (d / (2.0 * m)).powi(2);
    }
    q
}

/// Asynchronous label propagation on the undirected projection.
/// Each node repeatedly adopts the most common label among its
/// neighbours (ties broken by the smallest label for determinism,
/// after a seeded shuffle of the visit order). Returns labels per
/// node, relabelled to dense ids.
pub fn label_propagation<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    max_rounds: usize,
) -> Vec<u32> {
    let n = graph.user_count();
    // Route the index→u32 conversion through the checked id helper.
    let mut labels: Vec<u32> = (0..n).map(|i| UserId::from_index(i).0).collect();
    let mut order: Vec<usize> = (0..n).collect();
    for round in 0..max_rounds {
        // Fisher-Yates with the caller's RNG.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut changed = false;
        for &u in &order {
            let uid = UserId::from_index(u);
            let mut counts: std::collections::HashMap<u32, usize> = Default::default();
            for &v in graph.friends(uid).iter().chain(graph.fans(uid)) {
                *counts.entry(labels[v.index()]).or_insert(0) += 1;
            }
            // Isolated node (no neighbours): keeps its label.
            let Some(best) = counts
                .iter()
                .max_by_key(|&(label, count)| (*count, std::cmp::Reverse(*label)))
                .map(|(&l, _)| l)
            else {
                continue;
            };
            if best != labels[u] {
                labels[u] = best;
                changed = true;
            }
        }
        if !changed && round > 0 {
            break;
        }
    }
    // Dense relabel.
    let mut map: std::collections::HashMap<u32, u32> = Default::default();
    let mut next = 0u32;
    labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Number of distinct labels.
pub fn community_count(labels: &[u32]) -> usize {
    let mut set: Vec<u32> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::{community_of, modular};
    use social_graph::GraphBuilder;

    #[test]
    fn modularity_of_perfect_partition_is_high() {
        // Two disconnected triangles (directed cycles).
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_watch(UserId(x), UserId(y));
        }
        let g = b.build();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let q = modularity(&g, &labels);
        assert!((q - 0.5).abs() < 1e-9, "q = {q}");
        // The merged partition scores 0.
        let merged = vec![0; 6];
        assert!(modularity(&g, &merged).abs() < 1e-9);
    }

    #[test]
    fn modularity_penalises_wrong_split() {
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_watch(UserId(x), UserId(y));
        }
        let g = b.build();
        let wrong = vec![0, 1, 0, 1, 0, 1];
        assert!(modularity(&g, &wrong) < 0.1);
    }

    #[test]
    fn label_propagation_recovers_planted_blocks() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 150;
        let k = 3;
        let g = modular(&mut rng, n, k, 0.3, 0.005);
        let labels = label_propagation(&mut rng, &g, 30);
        // The recovered partition should score close to the planted
        // one's modularity.
        let planted: Vec<u32> = (0..n).map(|u| community_of(u, n, k) as u32).collect();
        let q_planted = modularity(&g, &planted);
        let q_found = modularity(&g, &labels);
        assert!(
            q_found > 0.5 * q_planted,
            "found Q {q_found} vs planted {q_planted}"
        );
        let c = community_count(&labels);
        assert!((2..=10).contains(&c), "found {c} communities");
    }

    #[test]
    fn isolated_nodes_keep_their_own_label() {
        let g = GraphBuilder::new(4).build();
        let mut rng = StdRng::seed_from_u64(1);
        let labels = label_propagation(&mut rng, &g, 5);
        assert_eq!(community_count(&labels), 4);
    }

    #[test]
    fn empty_graph_modularity_zero() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(modularity(&g, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn modularity_is_bit_stable_across_evaluations() {
        // Regression: Q was summed in HashMap iteration order, so its
        // low bits depended on RandomState's per-instance seed. With
        // sorted accumulators two evaluations must agree exactly.
        let mut rng = StdRng::seed_from_u64(99);
        let g = modular(&mut rng, 120, 4, 0.25, 0.01);
        let labels: Vec<u32> = (0..120).map(|u| community_of(u, 120, 4) as u32).collect();
        let q1 = modularity(&g, &labels);
        let q2 = modularity(&g, &labels);
        assert_eq!(q1.to_bits(), q2.to_bits());
    }
}
