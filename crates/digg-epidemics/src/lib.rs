//! # digg-epidemics
//!
//! Dynamical processes on networks — the paper's §6 future-work
//! program, implemented: "it is known that power-law degree
//! distribution observed in many real-world networks can lead to
//! vanishing threshold for epidemics [17, 16] … in a sharp contrast
//! with the results for random Erdos-Renyi networks. Furthermore, the
//! presence of well-connected clusters of nodes can impact the
//! transient dynamics of various influence propagation models \[5\]."
//!
//! Three pieces:
//!
//! * [`sir`] / [`sis`] — SIR and SIS compartment models on a
//!   [`social_graph::SocialGraph`], spreading along the fan direction
//!   (the direction story visibility travels on Digg);
//! * [`threshold`] — epidemic-threshold sweeps comparing scale-free
//!   and Erdős–Rényi substrates against the mean-field prediction
//!   `λ_c = ⟨k⟩ / ⟨k²⟩` (Pastor-Satorras & Vespignani);
//! * [`cascade_model`] — deterministic-threshold ("complex
//!   contagion") cascades and their transient dynamics on modular
//!   networks (Galstyan & Cohen);
//! * [`des`] — event-driven ports of the SIR/SIS and cascade models
//!   onto the `des-core` kernel: same outcome types, work
//!   proportional to what happens instead of `nodes × steps`;
//! * [`community`] — modularity scoring and label-propagation
//!   community detection (Girvan–Newman / Newman refs [6, 15]) used to
//!   verify planted structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade_model;
pub mod community;
pub mod des;
pub mod sir;
pub mod sis;
pub mod threshold;
