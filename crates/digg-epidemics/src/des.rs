//! Event-driven contagion on the `des-core` kernel.
//!
//! The step-loop models in [`crate::sir`], [`crate::sis`], and
//! [`crate::cascade_model`] scan every infectious node (or, for
//! cascades, every node) on every step. Here the same processes run as
//! events on a [`des_core::EventQueue`], so a step costs work
//! proportional to what actually happens in it:
//!
//! - **SIR** ([`sir`] / [`sir_with`]): a node infected at step `k`
//!   stays infectious for `R ~ Geometric(gamma)` steps. Each out-edge
//!   draws its first Bernoulli-success time `G ~ Geometric(beta)` and
//!   schedules a single transmission attempt at `k + G` if it lands
//!   inside the infectious window — in SIR a target never returns to
//!   the susceptible pool, so later successes on the same edge can
//!   never matter.
//! - **SIS** ([`sis`]): as SIR, but recovery returns nodes to the
//!   susceptible pool, so each infection episode carries its own
//!   streams and attempts renew: after each attempt the edge draws the
//!   next geometric gap until the episode ends. Attempts at a step are
//!   processed before recoveries at the same step, mirroring the step
//!   loop's transmit-then-recover order.
//! - **Threshold cascades** ([`cascade`]): deterministic frontier
//!   propagation. When a node activates at step `t`, each watcher gets
//!   a source-count increment event at `t + 1`; a node activates when
//!   its incremented count first crosses `phi` — bit-identical to the
//!   full-scan model, which this module's tests assert.
//!
//! The stochastic kernels draw from per-entity [`StreamRng`] streams
//! keyed by `(seed, salt, node/edge ids, episode)`: the values an edge
//! consumes depend only on its identity, never on how events from
//! other parts of the graph interleave. The geometric-gap construction
//! is distributionally identical to the step loops' per-step Bernoulli
//! coins (a geometric renewal process *is* the success-time process of
//! i.i.d. Bernoulli trials; skipping trials against non-susceptible
//! targets is the same thinning both versions apply), so the
//! event-driven kernels reproduce the step loops in law, though not
//! draw-for-draw.

use crate::cascade_model::CascadeOutcome;
use crate::sir::{SirOutcome, Spread, State};
use crate::sis::SisOutcome;
use des_core::{EventQueue, StreamRng};
use rand::Rng;
use social_graph::{SocialGraph, UserId};

// Stream-key salts.
const SALT_SIR_RECOVER: u64 = 1;
const SALT_SIR_TRANSMIT: u64 = 2;
const SALT_SIS_RECOVER: u64 = 3;
const SALT_SIS_TRANSMIT: u64 = 4;

// Intra-step event order: transmission attempts before recoveries,
// matching the step loops.
const CLASS_ATTEMPT: u8 = 0;
const CLASS_RECOVER: u8 = 1;

/// First success time of i.i.d. Bernoulli(`p`) trials, on `{1, 2, …}`:
/// `None` when `p <= 0` (never succeeds) or the draw lands beyond any
/// usable horizon.
fn geometric(rng: &mut StreamRng, p: f64) -> Option<u64> {
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(1);
    }
    let u: f64 = rng.random();
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if g >= u64::MAX as f64 {
        return None;
    }
    Some(1 + g as u64)
}

// ----------------------------------------------------------------- SIR

/// Event-driven SIR from the given seeds, spreading to fans only.
/// Deterministic in `seed`; equivalent in distribution to
/// [`crate::sir::run`].
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn sir(
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    max_steps: usize,
    seed: u64,
) -> SirOutcome {
    sir_with(graph, seeds, beta, gamma, max_steps, Spread::Fans, seed)
}

/// Event-driven SIR with an explicit [`Spread`] mode.
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn sir_with(
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    max_steps: usize,
    spread: Spread,
    seed: u64,
) -> SirOutcome {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let n = graph.user_count();
    let root = StreamRng::root(seed);
    let max_steps = max_steps as u64;
    let mut state = vec![State::Susceptible; n];
    let mut events: EventQueue<UserId> = EventQueue::new();
    let mut incidence = vec![0usize; max_steps as usize];
    let mut total = 0usize;
    // Last step on which any node is still infectious (clamped to the
    // horizon): the step loop runs exactly this many steps.
    let mut last_active = 0u64;

    // Infect `u` at `step`: fix its infectious window from its
    // recovery stream and schedule one attempt per out-edge at the
    // edge's first Bernoulli-success time inside the window.
    let mut infect = |u: UserId,
                      step: u64,
                      state: &mut Vec<State>,
                      events: &mut EventQueue<UserId>,
                      incidence: &mut Vec<usize>| {
        state[u.index()] = State::Infectious;
        total += 1;
        if step > 0 {
            incidence[step as usize - 1] += 1;
        }
        let mut rec = root.derive(SALT_SIR_RECOVER).derive(u.index() as u64);
        let window_end = match geometric(&mut rec, gamma) {
            Some(r) => step.saturating_add(r),
            None => u64::MAX, // gamma == 0: infectious forever
        };
        last_active = last_active.max(window_end.min(max_steps));
        let try_edge = |channel: u64, f: UserId, events: &mut EventQueue<UserId>| {
            let mut tx = root
                .derive(SALT_SIR_TRANSMIT)
                .derive(channel)
                .derive(u.index() as u64)
                .derive(f.index() as u64);
            if let Some(g) = geometric(&mut tx, beta) {
                let t = step.saturating_add(g);
                if t <= window_end && t <= max_steps {
                    events.schedule(t, CLASS_ATTEMPT, f);
                }
            }
        };
        for &f in graph.fans(u) {
            try_edge(0, f, events);
        }
        if spread == Spread::Undirected {
            for &f in graph.friends(u) {
                try_edge(1, f, events);
            }
        }
    };

    for &s in seeds {
        if state[s.index()] == State::Susceptible {
            infect(s, 0, &mut state, &mut events, &mut incidence);
        }
    }
    while let Some(e) = events.pop() {
        let f = e.payload;
        if state[f.index()] == State::Susceptible {
            infect(f, e.time, &mut state, &mut events, &mut incidence);
        }
    }
    let duration = last_active as usize;
    incidence.truncate(duration);
    SirOutcome {
        total_infected: total,
        duration,
        incidence,
    }
}

// ----------------------------------------------------------------- SIS

/// SIS event payloads: a transmission attempt carries its episode's
/// edge stream so the renewal chain continues where it left off.
enum SisEv {
    Attempt {
        target: UserId,
        rng: StreamRng,
        window_end: u64,
    },
    Recover(UserId),
}

/// Event-driven SIS for `steps` steps. Deterministic in `seed`;
/// equivalent in distribution to [`crate::sis::run`].
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn sis(
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    steps: usize,
    seed: u64,
) -> SisOutcome {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let n = graph.user_count();
    let horizon = steps as u64;
    let mut infected = vec![false; n];
    let mut episodes = vec![0u64; n];
    let mut events: EventQueue<SisEv> = EventQueue::new();
    let mut cur = 0usize;

    // Start a new infection episode for `u` at `step`.
    let infect = |u: UserId,
                  step: u64,
                  infected: &mut Vec<bool>,
                  episodes: &mut Vec<u64>,
                  events: &mut EventQueue<SisEv>,
                  cur: &mut usize| {
        infected[u.index()] = true;
        *cur += 1;
        let episode = episodes[u.index()];
        episodes[u.index()] += 1;
        let mut rec = StreamRng::keyed(seed, &[SALT_SIS_RECOVER, u.index() as u64, episode]);
        let window_end = match geometric(&mut rec, gamma) {
            Some(r) => {
                let end = step.saturating_add(r);
                if end <= horizon {
                    events.schedule(end, CLASS_RECOVER, SisEv::Recover(u));
                }
                end.min(horizon)
            }
            None => horizon, // gamma == 0: never recovers
        };
        for &f in graph.fans(u) {
            let mut tx = StreamRng::keyed(
                seed,
                &[
                    SALT_SIS_TRANSMIT,
                    u.index() as u64,
                    f.index() as u64,
                    episode,
                ],
            );
            if let Some(g) = geometric(&mut tx, beta) {
                let t = step.saturating_add(g);
                if t <= window_end {
                    events.schedule(
                        t,
                        CLASS_ATTEMPT,
                        SisEv::Attempt {
                            target: f,
                            rng: tx,
                            window_end,
                        },
                    );
                }
            }
        }
    };

    for &s in seeds {
        if !infected[s.index()] {
            infect(s, 0, &mut infected, &mut episodes, &mut events, &mut cur);
        }
    }

    let mut prevalence = vec![0usize; steps];
    let mut recorded = 0usize; // steps whose prevalence entry is final
    while let Some(e) = events.pop() {
        let t = e.time;
        match e.payload {
            SisEv::Attempt {
                target,
                mut rng,
                window_end,
            } => {
                if !infected[target.index()] {
                    infect(
                        target,
                        t,
                        &mut infected,
                        &mut episodes,
                        &mut events,
                        &mut cur,
                    );
                }
                // Renew: the edge keeps attempting until its episode
                // window closes.
                if let Some(g) = geometric(&mut rng, beta) {
                    let next = t.saturating_add(g);
                    if next <= window_end {
                        events.schedule(
                            next,
                            CLASS_ATTEMPT,
                            SisEv::Attempt {
                                target,
                                rng,
                                window_end,
                            },
                        );
                    }
                }
            }
            SisEv::Recover(u) => {
                infected[u.index()] = false;
                cur -= 1;
            }
        }
        // Once every event at step `t` has drained, prevalence through
        // step `t` is final.
        if events.peek_time().map(|nt| nt > t).unwrap_or(true) {
            while (recorded as u64) < t.min(horizon) {
                prevalence[recorded] = cur;
                recorded += 1;
            }
        }
    }
    // Quiet tail: the count no longer changes.
    while recorded < steps {
        prevalence[recorded] = cur;
        recorded += 1;
    }
    let survived = prevalence.last().map(|&c| c > 0).unwrap_or(false);
    SisOutcome {
        prevalence,
        survived,
    }
}

// ------------------------------------------------------------ cascades

/// Event-driven threshold cascade: bit-identical outcomes to
/// [`crate::cascade_model::run`], but work scales with activations and
/// frontier edges instead of `nodes x steps`.
///
/// # Panics
///
/// Panics if `phi` is outside `[0, 1]`.
pub fn cascade(
    graph: &SocialGraph,
    seeds: &[UserId],
    phi: f64,
    max_steps: usize,
) -> CascadeOutcome {
    assert!((0.0..=1.0).contains(&phi), "phi must be a fraction");
    let n = graph.user_count();
    let max_steps = max_steps as u64;
    let mut activated_at: Vec<Option<u32>> = vec![None; n];
    for &s in seeds {
        activated_at[s.index()] = Some(0);
    }

    if phi == 0.0 {
        // Degenerate threshold: every node with at least one source
        // activates on the first step, sources active or not (the scan
        // model's `0 / k >= 0` always holds).
        if max_steps >= 1 {
            for (u, slot) in activated_at.iter_mut().enumerate() {
                if slot.is_none() && !graph.friends(UserId::from_index(u)).is_empty() {
                    *slot = Some(1);
                }
            }
        }
    } else {
        // An activation at step t raises each watcher's active-source
        // count at step t + 1 (synchronous update, one event per edge).
        let mut count = vec![0usize; n];
        let mut events: EventQueue<UserId> = EventQueue::new();
        for (u, slot) in activated_at.iter().enumerate() {
            if *slot == Some(0) && max_steps >= 1 {
                for &f in graph.fans(UserId::from_index(u)) {
                    events.schedule(1, 0, f);
                }
            }
        }
        while let Some(e) = events.pop() {
            let w = e.payload;
            count[w.index()] += 1;
            if activated_at[w.index()].is_some() {
                continue;
            }
            let sources = graph.friends(w).len();
            if count[w.index()] as f64 / sources as f64 >= phi {
                // digg-lint: allow(no-truncating-cast) — e.time < max_steps: u32 by the schedule guard below
                activated_at[w.index()] = Some(e.time as u32);
                if e.time < max_steps {
                    for &f in graph.fans(w) {
                        events.schedule(e.time + 1, 0, f);
                    }
                }
            }
        }
    }

    // Reconstruct the growth curve: cumulative active count after each
    // productive step (threshold dynamics are monotone, so productive
    // steps are a prefix).
    let mut newly_per_step: std::collections::BTreeMap<u32, usize> = Default::default();
    let mut cum = 0usize;
    for a in activated_at.iter().flatten() {
        if *a == 0 {
            cum += 1;
        } else {
            *newly_per_step.entry(*a).or_default() += 1;
        }
    }
    let mut growth = Vec::with_capacity(newly_per_step.len());
    for (_, k) in newly_per_step {
        cum += k;
        growth.push(cum);
    }
    CascadeOutcome {
        activated_at,
        growth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cascade_model, sir as step_sir, sis as step_sis};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::{erdos_renyi, modular};
    use social_graph::GraphBuilder;

    fn chain(len: u32) -> SocialGraph {
        let mut b = GraphBuilder::new(len as usize);
        for i in 1..len {
            b.add_watch(UserId(i), UserId(i - 1));
        }
        b.build()
    }

    // ------------------------------------------------------------- SIR

    #[test]
    fn sir_zero_beta_never_spreads() {
        let mut r = StdRng::seed_from_u64(17);
        let g = erdos_renyi(&mut r, 200, 0.05);
        let out = sir(&g, &[UserId(0)], 0.0, 0.5, 100, 9);
        assert_eq!(out.total_infected, 1);
    }

    #[test]
    fn sir_full_beta_floods_a_connected_chain() {
        let g = chain(3);
        let out = sir(&g, &[UserId(0)], 1.0, 1.0, 100, 4);
        assert_eq!(out.total_infected, 3);
        assert_eq!(out.duration, 3);
        // One hop per step, then the last node's idle infectious step.
        assert_eq!(out.incidence, vec![1, 1, 0]);
    }

    #[test]
    fn sir_is_deterministic_per_seed_and_varies_across_seeds() {
        let mut r = StdRng::seed_from_u64(3);
        let g = erdos_renyi(&mut r, 300, 0.03);
        let a = sir(&g, &[UserId(0)], 0.4, 0.4, 500, 7);
        let b = sir(&g, &[UserId(0)], 0.4, 0.4, 500, 7);
        assert_eq!(a, b);
        let sizes: std::collections::HashSet<usize> = (0..8)
            .map(|s| sir(&g, &[UserId(0)], 0.4, 0.4, 500, s).total_infected)
            .collect();
        assert!(sizes.len() > 1, "all seeds identical: {sizes:?}");
    }

    #[test]
    fn sir_incidence_accounts_for_every_nonseed_infection() {
        let mut r = StdRng::seed_from_u64(11);
        let g = erdos_renyi(&mut r, 250, 0.04);
        let out = sir(&g, &[UserId(0), UserId(1)], 0.6, 0.3, 1000, 21);
        let from_curve: usize = out.incidence.iter().sum();
        assert_eq!(out.total_infected, 2 + from_curve);
        assert!(out.incidence.len() == out.duration);
        assert!(out.attack_rate(250) > 0.5);
    }

    #[test]
    fn sir_matches_step_model_in_distribution() {
        // Same process, different drivers: mean attack rates over a
        // bundle of runs must agree. Loose bounds — this is a
        // statistical check, not an exactness one.
        let mut r = StdRng::seed_from_u64(100);
        let g = erdos_renyi(&mut r, 200, 0.04);
        let runs = 40;
        let step_mean: f64 = (0..runs)
            .map(|i| {
                let mut rr = StdRng::seed_from_u64(1000 + i);
                step_sir::run(&mut rr, &g, &[UserId(0)], 0.5, 0.4, 500).attack_rate(200)
            })
            .sum::<f64>()
            / runs as f64;
        let des_mean: f64 = (0..runs)
            .map(|i| sir(&g, &[UserId(0)], 0.5, 0.4, 500, 2000 + i).attack_rate(200))
            .sum::<f64>()
            / runs as f64;
        assert!(
            (step_mean - des_mean).abs() < 0.12,
            "step {step_mean} vs des {des_mean}"
        );
    }

    #[test]
    fn sir_undirected_reaches_at_least_as_far_as_fans() {
        let g = chain(4);
        // Seed the middle: fan-direction spread only reaches forward,
        // the undirected projection also reaches back.
        let fans = sir_with(&g, &[UserId(2)], 1.0, 1.0, 50, Spread::Fans, 1);
        let undirected = sir_with(&g, &[UserId(2)], 1.0, 1.0, 50, Spread::Undirected, 1);
        assert_eq!(fans.total_infected, 2); // 2 -> 3
        assert_eq!(undirected.total_infected, 4); // both directions
    }

    #[test]
    fn sir_empty_seeds_do_nothing() {
        let mut r = StdRng::seed_from_u64(2);
        let g = erdos_renyi(&mut r, 50, 0.05);
        let out = sir(&g, &[], 0.5, 0.5, 100, 3);
        assert_eq!(out.total_infected, 0);
        assert_eq!(out.duration, 0);
        assert!(out.incidence.is_empty());
        let out = sir(&g, &[UserId(1), UserId(1)], 0.0, 1.0, 100, 3);
        assert_eq!(out.total_infected, 1);
    }

    // ------------------------------------------------------------- SIS

    #[test]
    fn sis_zero_beta_dies_out() {
        let mut r = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut r, 200, 0.05);
        let out = sis(&g, &[UserId(0)], 0.0, 0.5, 200, 8);
        assert!(!out.survived);
        assert_eq!(out.endemic_prevalence(200, 50), 0.0);
    }

    #[test]
    fn sis_strong_infection_persists_on_dense_graph() {
        let mut r = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut r, 300, 0.05);
        let out = sis(&g, &[UserId(0)], 0.6, 0.2, 300, 8);
        assert!(out.survived, "infection died unexpectedly");
        assert!(
            out.endemic_prevalence(300, 100) > 0.3,
            "prevalence {}",
            out.endemic_prevalence(300, 100)
        );
    }

    #[test]
    fn sis_prevalence_trace_has_one_entry_per_step() {
        let mut r = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut r, 100, 0.05);
        let out = sis(&g, &[UserId(0)], 0.3, 0.3, 123, 2);
        assert_eq!(out.prevalence.len(), 123);
    }

    #[test]
    fn sis_empty_seed_run_is_flat_zero() {
        let mut r = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut r, 50, 0.05);
        let out = sis(&g, &[], 0.9, 0.1, 10, 1);
        assert!(out.prevalence.iter().all(|&c| c == 0));
        assert!(!out.survived);
    }

    #[test]
    fn sis_matches_step_model_in_distribution() {
        let mut r = StdRng::seed_from_u64(50);
        let g = erdos_renyi(&mut r, 150, 0.06);
        let runs = 30;
        let step_mean: f64 = (0..runs)
            .map(|i| {
                let mut rr = StdRng::seed_from_u64(3000 + i);
                step_sis::run(&mut rr, &g, &[UserId(0)], 0.5, 0.3, 200).endemic_prevalence(150, 50)
            })
            .sum::<f64>()
            / runs as f64;
        let des_mean: f64 = (0..runs)
            .map(|i| sis(&g, &[UserId(0)], 0.5, 0.3, 200, 4000 + i).endemic_prevalence(150, 50))
            .sum::<f64>()
            / runs as f64;
        assert!(
            (step_mean - des_mean).abs() < 0.12,
            "step {step_mean} vs des {des_mean}"
        );
    }

    // -------------------------------------------------------- cascades

    fn assert_cascades_equal(g: &SocialGraph, seeds: &[UserId], phi: f64, max_steps: usize) {
        let step = cascade_model::run(g, seeds, phi, max_steps);
        let des = cascade(g, seeds, phi, max_steps);
        assert_eq!(step, des, "phi={phi} seeds={seeds:?}");
    }

    #[test]
    fn cascade_matches_step_model_on_small_structures() {
        let line = chain(5);
        assert_cascades_equal(&line, &[UserId(0)], 0.5, 100);
        assert_cascades_equal(&line, &[UserId(0)], 0.0, 100);
        assert_cascades_equal(&line, &[UserId(0)], 1.0, 100);
        assert_cascades_equal(&line, &[], 0.3, 100);
        assert_cascades_equal(&line, &[UserId(4)], 0.5, 100);
        assert_cascades_equal(&line, &[UserId(0)], 0.5, 2); // horizon cut

        // Node 3 watches 0, 1, 2; phi = 1 needs all three sources.
        let mut b = GraphBuilder::new(4);
        for s in 0..3u32 {
            b.add_watch(UserId(3), UserId(s));
        }
        let g = b.build();
        assert_cascades_equal(&g, &[UserId(0)], 1.0, 10);
        assert_cascades_equal(&g, &[UserId(0), UserId(1), UserId(2)], 1.0, 10);

        // No edges at all.
        let empty = GraphBuilder::new(3).build();
        assert_cascades_equal(&empty, &[UserId(0)], 0.1, 10);
        assert_cascades_equal(&empty, &[UserId(0)], 0.0, 10);
    }

    #[test]
    fn cascade_matches_step_model_on_random_modular_graphs() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 120;
            let g = modular(&mut rng, n, 2, 0.25, 0.01);
            let blocks = cascade_model::block_members(n, 2);
            let seeds: Vec<UserId> = blocks[0][..8].to_vec();
            for phi in [0.0, 0.1, 0.25, 0.5, 0.9] {
                assert_cascades_equal(&g, &seeds, phi, 200);
            }
            assert_cascades_equal(&g, &seeds, 0.25, 3); // horizon cut
        }
    }

    #[test]
    fn cascade_growth_is_cumulative_and_monotone() {
        let g = chain(5);
        let out = cascade(&g, &[UserId(0)], 0.5, 100);
        assert_eq!(out.growth, vec![2, 3, 4, 5]);
        assert_eq!(out.activated_at[4], Some(4));
        assert_eq!(out.total_active(), 5);
    }
}
