//! Discrete-time SIR on a social graph.
//!
//! Infection travels from a user to its **fans** (the direction story
//! visibility travels on Digg): each time step, every infectious user
//! independently infects each susceptible fan with probability `beta`,
//! then recovers with probability `gamma`.

use rand::Rng;
use social_graph::{SocialGraph, UserId};

/// Compartment of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Never infected.
    Susceptible,
    /// Currently infectious.
    Infectious,
    /// Recovered (immune).
    Recovered,
}

/// Result of one SIR run.
#[derive(Debug, Clone, PartialEq)]
pub struct SirOutcome {
    /// Users ever infected (final outbreak size), including seeds.
    pub total_infected: usize,
    /// Steps until no infectious users remained.
    pub duration: usize,
    /// New infections per step (epidemic curve).
    pub incidence: Vec<usize>,
}

impl SirOutcome {
    /// Outbreak size as a fraction of the population.
    pub fn attack_rate(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.total_infected as f64 / n as f64
    }
}

/// Which contacts transmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spread {
    /// Along reversed watch edges only: a user infects its fans (how
    /// story visibility actually travels on Digg).
    Fans,
    /// Along the undirected projection (fans and friends) — the
    /// classical epidemics-on-networks setting of refs [16, 17].
    Undirected,
}

/// Run SIR from the given seeds, spreading to fans only.
///
/// # Examples
///
/// ```
/// use digg_epidemics::sir;
/// use social_graph::{generators, UserId};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = generators::erdos_renyi(&mut rng, 200, 0.05);
/// let out = sir::run(&mut rng, &g, &[UserId(0)], 0.5, 0.5, 1000);
/// assert!(out.total_infected >= 1);
/// assert!(out.attack_rate(200) <= 1.0);
/// ```
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn run<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    max_steps: usize,
) -> SirOutcome {
    run_with(rng, graph, seeds, beta, gamma, max_steps, Spread::Fans)
}

/// Run SIR with an explicit [`Spread`] mode.
///
/// # Panics
///
/// Panics if `beta` or `gamma` is outside `[0, 1]`.
pub fn run_with<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    seeds: &[UserId],
    beta: f64,
    gamma: f64,
    max_steps: usize,
    spread: Spread,
) -> SirOutcome {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be a probability");
    let n = graph.user_count();
    let mut state = vec![State::Susceptible; n];
    let mut infectious: Vec<UserId> = Vec::new();
    for &s in seeds {
        if state[s.index()] == State::Susceptible {
            state[s.index()] = State::Infectious;
            infectious.push(s);
        }
    }
    let mut total = infectious.len();
    let mut incidence = Vec::new();
    let mut steps = 0usize;
    while !infectious.is_empty() && steps < max_steps {
        steps += 1;
        let mut newly: Vec<UserId> = Vec::new();
        let try_infect =
            |f: UserId, state: &mut Vec<State>, newly: &mut Vec<UserId>, rng: &mut R| {
                if state[f.index()] == State::Susceptible && rng.random::<f64>() < beta {
                    state[f.index()] = State::Infectious;
                    newly.push(f);
                }
            };
        for &u in &infectious {
            for &f in graph.fans(u) {
                try_infect(f, &mut state, &mut newly, rng);
            }
            if spread == Spread::Undirected {
                for &f in graph.friends(u) {
                    try_infect(f, &mut state, &mut newly, rng);
                }
            }
        }
        // Recoveries happen after transmission within the step.
        infectious.retain(|&u| {
            if rng.random::<f64>() < gamma {
                state[u.index()] = State::Recovered;
                false
            } else {
                true
            }
        });
        total += newly.len();
        incidence.push(newly.len());
        infectious.extend(newly);
    }
    SirOutcome {
        total_infected: total,
        duration: steps,
        incidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::erdos_renyi;
    use social_graph::GraphBuilder;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn zero_beta_never_spreads() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 200, 0.05);
        let out = run(&mut r, &g, &[UserId(0)], 0.0, 0.5, 100);
        assert_eq!(out.total_infected, 1);
    }

    #[test]
    fn full_beta_floods_a_connected_chain() {
        // 0 -> 1 -> 2 in the fan direction (1 is a fan of 0 etc.).
        let mut b = GraphBuilder::new(3);
        b.add_watch(UserId(1), UserId(0));
        b.add_watch(UserId(2), UserId(1));
        let g = b.build();
        let mut r = rng();
        let out = run(&mut r, &g, &[UserId(0)], 1.0, 1.0, 100);
        assert_eq!(out.total_infected, 3);
        // One hop per step: infections at steps 1 and 2.
        assert_eq!(&out.incidence[..2], &[1, 1]);
    }

    #[test]
    fn gamma_one_forces_single_generation() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 300, 0.02);
        let out = run(&mut r, &g, &[UserId(0)], 1.0, 1.0, 100);
        // Everyone infected is reachable within `duration` hops; with
        // gamma=1 each node transmits exactly once.
        assert!(out.duration <= 100);
        assert!(out.total_infected >= 1);
    }

    #[test]
    fn high_beta_on_dense_graph_reaches_most_nodes() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 300, 0.03);
        let out = run(&mut r, &g, &[UserId(0)], 0.9, 0.3, 1000);
        assert!(
            out.attack_rate(300) > 0.5,
            "attack rate {}",
            out.attack_rate(300)
        );
    }

    #[test]
    fn duplicate_and_empty_seeds() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 50, 0.05);
        let out = run(&mut r, &g, &[], 0.5, 0.5, 100);
        assert_eq!(out.total_infected, 0);
        assert_eq!(out.duration, 0);
        let out = run(&mut r, &g, &[UserId(1), UserId(1)], 0.0, 1.0, 100);
        assert_eq!(out.total_infected, 1);
    }

    #[test]
    fn attack_rate_handles_zero_population() {
        let out = SirOutcome {
            total_infected: 0,
            duration: 0,
            incidence: vec![],
        };
        assert_eq!(out.attack_rate(0), 0.0);
    }
}
