//! Threshold ("complex contagion") cascades on modular networks
//! (paper ref \[5\]: Galstyan & Cohen, *Cascading dynamics in modular
//! networks*).
//!
//! Each node activates, irreversibly, once at least a fraction `phi`
//! of its in-neighbours (the users it watches — its information
//! sources) are active. Unlike SIR, activation requires *reinforced*
//! exposure, so community structure matters: a cascade saturates its
//! home community quickly and then either stalls at the boundary or
//! breaks out after a delay — the transient the paper's future-work
//! section points at.

use social_graph::{SocialGraph, UserId};

/// Result of one threshold-cascade run.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeOutcome {
    /// Activation step per node (`None` = never activated; seeds are
    /// step 0).
    pub activated_at: Vec<Option<u32>>,
    /// Active-node count after each step.
    pub growth: Vec<usize>,
}

impl CascadeOutcome {
    /// Total activated nodes.
    pub fn total_active(&self) -> usize {
        self.activated_at.iter().filter(|a| a.is_some()).count()
    }

    /// First step at which any node in `members` activated (`None` =
    /// the set was never invaded).
    pub fn invasion_time(&self, members: &[UserId]) -> Option<u32> {
        members
            .iter()
            .filter_map(|&u| self.activated_at[u.index()])
            .min()
    }

    /// Fraction of `members` active at the end.
    pub fn saturation(&self, members: &[UserId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        members
            .iter()
            .filter(|&&u| self.activated_at[u.index()].is_some())
            .count() as f64
            / members.len() as f64
    }
}

/// Run the deterministic threshold cascade to quiescence (or
/// `max_steps`). A node with no watched users never self-activates.
///
/// # Panics
///
/// Panics if `phi` is outside `[0, 1]`.
pub fn run(graph: &SocialGraph, seeds: &[UserId], phi: f64, max_steps: usize) -> CascadeOutcome {
    assert!((0.0..=1.0).contains(&phi), "phi must be a fraction");
    let n = graph.user_count();
    let mut activated_at: Vec<Option<u32>> = vec![None; n];
    for &s in seeds {
        activated_at[s.index()] = Some(0);
    }
    let mut growth = Vec::new();
    let mut step = 0u32;
    loop {
        if step as usize >= max_steps {
            break;
        }
        step += 1;
        let mut newly: Vec<usize> = Vec::new();
        for u in 0..n {
            if activated_at[u].is_some() {
                continue;
            }
            let sources = graph.friends(UserId::from_index(u));
            if sources.is_empty() {
                continue;
            }
            let active = sources
                .iter()
                .filter(|s| activated_at[s.index()].is_some())
                .count();
            if active as f64 / sources.len() as f64 >= phi {
                newly.push(u);
            }
        }
        if newly.is_empty() {
            break;
        }
        for u in newly {
            activated_at[u] = Some(step);
        }
        growth.push(activated_at.iter().filter(|a| a.is_some()).count());
    }
    CascadeOutcome {
        activated_at,
        growth,
    }
}

/// Community membership lists under the equal-block layout of
/// [`social_graph::generators::modular`].
pub fn block_members(n: usize, communities: usize) -> Vec<Vec<UserId>> {
    let mut out = vec![Vec::new(); communities];
    for u in 0..n {
        let c = social_graph::generators::community_of(u, n, communities);
        out[c].push(UserId::from_index(u));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::modular;
    use social_graph::GraphBuilder;

    #[test]
    fn seeds_activate_everything_on_a_line_with_low_phi() {
        // 1 watches 0, 2 watches 1, ... so activation flows along ids.
        let mut b = GraphBuilder::new(5);
        for i in 1..5u32 {
            b.add_watch(UserId(i), UserId(i - 1));
        }
        let g = b.build();
        let out = run(&g, &[UserId(0)], 0.5, 100);
        assert_eq!(out.total_active(), 5);
        // One per step.
        assert_eq!(out.activated_at[4], Some(4));
        assert_eq!(out.growth, vec![2, 3, 4, 5]);
    }

    #[test]
    fn high_phi_blocks_multi_source_nodes() {
        // Node 3 watches 0, 1, 2; with phi = 1 it needs all three.
        let mut b = GraphBuilder::new(4);
        for s in 0..3u32 {
            b.add_watch(UserId(3), UserId(s));
        }
        let g = b.build();
        let partial = run(&g, &[UserId(0)], 1.0, 10);
        assert_eq!(partial.total_active(), 1);
        let full = run(&g, &[UserId(0), UserId(1), UserId(2)], 1.0, 10);
        assert_eq!(full.total_active(), 4);
        assert_eq!(full.activated_at[3], Some(1));
    }

    #[test]
    fn modular_network_delays_cross_community_invasion() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 120;
        let k = 2;
        let g = modular(&mut rng, n, k, 0.25, 0.01);
        let blocks = block_members(n, k);
        // Seed a clump inside community 0.
        let seeds: Vec<UserId> = blocks[0][..8].to_vec();
        let out = run(&g, &seeds, 0.25, 200);
        let sat_home = out.saturation(&blocks[0]);
        assert!(sat_home > 0.8, "home saturation {sat_home}");
        // If the cascade ever reaches community 1, it does so strictly
        // later than it reached community 0.
        if let Some(t1) = out.invasion_time(&blocks[1]) {
            let t0 = out.invasion_time(&blocks[0]).unwrap();
            assert!(t1 > t0, "t1={t1} t0={t0}");
        }
    }

    #[test]
    fn sourceless_nodes_never_activate() {
        let g = GraphBuilder::new(3).build(); // no edges at all
        let out = run(&g, &[UserId(0)], 0.1, 10);
        assert_eq!(out.total_active(), 1);
        assert_eq!(out.activated_at[1], None);
    }

    #[test]
    fn block_members_partition_users() {
        let blocks = block_members(10, 3);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(blocks.len(), 3);
    }
}
