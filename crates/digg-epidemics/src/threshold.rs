//! Epidemic-threshold sweeps (paper refs [16, 17]).
//!
//! Mean-field theory for SIR/SIS on an uncorrelated network puts the
//! epidemic threshold at `λ_c = ⟨k⟩ / ⟨k²⟩` (in the effective
//! transmissibility `λ = β/γ` normalised per contact). For an
//! Erdős–Rényi graph `⟨k²⟩ ≈ ⟨k⟩² + ⟨k⟩`, giving a finite threshold;
//! for a scale-free graph with exponent ≤ 3, `⟨k²⟩` diverges with
//! size and the threshold vanishes — hub users (Digg's top users) keep
//! marginal contagions alive. The ABL4 bench sweeps β and locates the
//! empirical threshold on both substrates.

use crate::sir;
use rand::Rng;
use social_graph::metrics::fan_counts;
use social_graph::{SocialGraph, UserId};

/// Mean-field threshold estimate `⟨k⟩ / ⟨k²⟩` over the undirected
/// (total) degree distribution, matching the [`sweep`]'s undirected
/// spread. Returns `None` for an edgeless graph.
pub fn mean_field_threshold(graph: &SocialGraph) -> Option<f64> {
    let fans = fan_counts(graph);
    let ks: Vec<u64> = graph
        .users()
        .zip(fans)
        .map(|(u, f)| f + graph.friend_count(u) as u64)
        .collect();
    let n = ks.len() as f64;
    if n == 0.0 {
        return None;
    }
    let k1: f64 = ks.iter().map(|&k| k as f64).sum::<f64>() / n;
    let k2: f64 = ks.iter().map(|&k| (k * k) as f64).sum::<f64>() / n;
    if k2 == 0.0 {
        return None;
    }
    Some(k1 / k2)
}

/// One point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Per-contact transmission probability.
    pub beta: f64,
    /// Mean attack rate over the trials.
    pub mean_attack_rate: f64,
    /// Fraction of trials ending in a macroscopic outbreak
    /// (attack rate above the outbreak cutoff).
    pub outbreak_fraction: f64,
}

/// Sweep `beta` over SIR runs with random single seeds, spreading on
/// the undirected projection (the classical setting; a directed
/// fan-only sweep would be dominated by the seeds' fan counts rather
/// than the degree distribution).
///
/// `outbreak_cutoff` is the attack-rate fraction above which a run
/// counts as a macroscopic outbreak (e.g. 0.05).
pub fn sweep<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &SocialGraph,
    betas: &[f64],
    gamma: f64,
    trials: usize,
    outbreak_cutoff: f64,
) -> Vec<SweepPoint> {
    let n = graph.user_count();
    betas
        .iter()
        .map(|&beta| {
            let mut rates = Vec::with_capacity(trials);
            for _ in 0..trials {
                let seed = UserId::from_index(rng.random_range(0..n));
                let out = sir::run_with(
                    rng,
                    graph,
                    &[seed],
                    beta,
                    gamma,
                    10 * n.max(100),
                    sir::Spread::Undirected,
                );
                rates.push(out.attack_rate(n));
            }
            let mean = rates.iter().sum::<f64>() / trials.max(1) as f64;
            let outbreaks = rates.iter().filter(|&&r| r > outbreak_cutoff).count() as f64
                / trials.max(1) as f64;
            SweepPoint {
                beta,
                mean_attack_rate: mean,
                outbreak_fraction: outbreaks,
            }
        })
        .collect()
}

/// The smallest swept `beta` whose mean attack rate exceeds
/// `min_attack` — an empirical threshold locator. On heterogeneous
/// graphs most single-seed runs die even above threshold (the seed is
/// usually a low-degree node), so the mean attack rate is the robust
/// signal, not the fraction of macroscopic outbreaks. `None` if no
/// swept point qualifies.
pub fn empirical_threshold(points: &[SweepPoint], min_attack: f64) -> Option<f64> {
    points
        .iter()
        .find(|p| p.mean_attack_rate > min_attack)
        .map(|p| p.beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use social_graph::generators::{erdos_renyi, preferential_attachment};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn mean_field_threshold_on_regularish_graph() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 1000, 0.01);
        // Undirected degree <k> ~ 20, <k^2> ~ 420 -> lambda_c ~ 0.048.
        let t = mean_field_threshold(&g).unwrap();
        assert!((0.03..0.07).contains(&t), "threshold {t}");
    }

    #[test]
    fn scale_free_threshold_is_lower() {
        let mut r = rng();
        let er = erdos_renyi(&mut r, 2000, 3.0 / 2000.0);
        let sf = preferential_attachment(&mut r, 2000, 3, 1.0);
        // Same mean degree (~3) but the heavy tail blows up <k^2>.
        let t_er = mean_field_threshold(&er).unwrap();
        let t_sf = mean_field_threshold(&sf).unwrap();
        assert!(
            t_sf < t_er / 2.0,
            "scale-free {t_sf} vs ER {t_er}: no vanishing-threshold signature"
        );
    }

    #[test]
    fn edgeless_graph_has_no_threshold() {
        let g = SocialGraph::empty(10);
        assert_eq!(mean_field_threshold(&g), None);
    }

    #[test]
    fn sweep_attack_rates_increase_with_beta() {
        let mut r = rng();
        let g = erdos_renyi(&mut r, 400, 0.02);
        let pts = sweep(&mut r, &g, &[0.01, 0.5], 0.5, 10, 0.05);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].mean_attack_rate > pts[0].mean_attack_rate);
        assert!(pts[1].outbreak_fraction >= pts[0].outbreak_fraction);
    }

    #[test]
    fn empirical_threshold_locates_transition() {
        let pts = vec![
            SweepPoint {
                beta: 0.01,
                mean_attack_rate: 0.001,
                outbreak_fraction: 0.0,
            },
            SweepPoint {
                beta: 0.1,
                mean_attack_rate: 0.4,
                outbreak_fraction: 0.9,
            },
        ];
        assert_eq!(empirical_threshold(&pts, 0.05), Some(0.1));
        assert_eq!(empirical_threshold(&pts[..1], 0.05), None);
    }
}
