//! Simulation observability counters.
//!
//! Used by calibration tests (does the run reproduce the paper's
//! in-text statistics?) and by the ablation benches.

use digg_snapshot::{ByteReader, ByteWriter, Codec, SnapshotError};
use serde::{Deserialize, Serialize};

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Stories submitted.
    pub submissions: u64,
    /// Stories promoted to the front page.
    pub promotions: u64,
    /// Stories expired from the queue unpromoted.
    pub expirations: u64,
    /// Votes cast through the Friends interface.
    pub votes_friends: u64,
    /// Votes cast from front-page browsing.
    pub votes_frontpage: u64,
    /// Votes cast from upcoming-queue browsing.
    pub votes_upcoming: u64,
    /// Votes cast through external discovery.
    pub votes_external: u64,
    /// Exposures scheduled into the Friends interface.
    pub exposures_scheduled: u64,
    /// Exposures that fired (fan actually looked).
    pub exposures_fired: u64,
    /// Minutes simulated.
    pub minutes: u64,
}

impl SimMetrics {
    /// Total votes across channels (excluding submitters' implicit
    /// votes, which are counted as submissions).
    pub fn total_votes(&self) -> u64 {
        self.votes_friends + self.votes_frontpage + self.votes_upcoming + self.votes_external
    }

    /// Fraction of votes that came through the Friends interface.
    pub fn social_vote_fraction(&self) -> f64 {
        let t = self.total_votes();
        if t == 0 {
            return 0.0;
        }
        self.votes_friends as f64 / t as f64
    }

    /// Submissions per simulated day.
    pub fn submissions_per_day(&self) -> f64 {
        if self.minutes == 0 {
            return 0.0;
        }
        self.submissions as f64 * 1440.0 / self.minutes as f64
    }

    /// Promotions per simulated day.
    pub fn promotions_per_day(&self) -> f64 {
        if self.minutes == 0 {
            return 0.0;
        }
        self.promotions as f64 * 1440.0 / self.minutes as f64
    }
}

impl Codec for SimMetrics {
    fn encode(&self, out: &mut ByteWriter) {
        for v in [
            self.submissions,
            self.promotions,
            self.expirations,
            self.votes_friends,
            self.votes_frontpage,
            self.votes_upcoming,
            self.votes_external,
            self.exposures_scheduled,
            self.exposures_fired,
            self.minutes,
        ] {
            out.put_u64(v);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<SimMetrics, SnapshotError> {
        Ok(SimMetrics {
            submissions: r.get_u64()?,
            promotions: r.get_u64()?,
            expirations: r.get_u64()?,
            votes_friends: r.get_u64()?,
            votes_frontpage: r.get_u64()?,
            votes_upcoming: r.get_u64()?,
            votes_external: r.get_u64()?,
            exposures_scheduled: r.get_u64()?,
            exposures_fired: r.get_u64()?,
            minutes: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let m = SimMetrics {
            votes_friends: 30,
            votes_frontpage: 50,
            votes_upcoming: 10,
            votes_external: 10,
            ..Default::default()
        };
        assert_eq!(m.total_votes(), 100);
        assert!((m.social_vote_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_minutes() {
        let m = SimMetrics::default();
        assert_eq!(m.submissions_per_day(), 0.0);
        assert_eq!(m.promotions_per_day(), 0.0);
        assert_eq!(m.social_vote_fraction(), 0.0);
    }

    #[test]
    fn per_day_scaling() {
        let m = SimMetrics {
            submissions: 100,
            promotions: 10,
            minutes: 720, // half a day
            ..Default::default()
        };
        assert_eq!(m.submissions_per_day(), 200.0);
        assert_eq!(m.promotions_per_day(), 20.0);
    }
}
